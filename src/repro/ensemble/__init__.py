"""Deep ensembles: aggregation modules and the ensemble container."""

from repro.ensemble.aggregation import (
    Aggregator,
    MajorityVote,
    Stacking,
    WeightedAverage,
)
from repro.ensemble.ensemble import DeepEnsemble

__all__ = [
    "Aggregator",
    "MajorityVote",
    "WeightedAverage",
    "Stacking",
    "DeepEnsemble",
]
