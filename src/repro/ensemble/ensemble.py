"""The deep ensemble container (Section III-A)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ensemble.aggregation import Aggregator
from repro.models.base import BaseModel


class DeepEnsemble:
    """Multiple base models plus an aggregation module.

    The ensemble's full output is the reference "ground truth" of every
    efficiency experiment in the paper: Schemble aims to match it while
    executing fewer base models.
    """

    def __init__(
        self,
        models: Sequence[BaseModel],
        aggregator: Aggregator,
        task: str,
    ):
        if not models:
            raise ValueError("ensemble needs at least one base model")
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names: {names}")
        self.models: List[BaseModel] = list(models)
        self.aggregator = aggregator
        self.task = task

    @property
    def size(self) -> int:
        return len(self.models)

    @property
    def model_names(self) -> List[str]:
        return [m.name for m in self.models]

    def member_outputs(self, features: np.ndarray) -> List[np.ndarray]:
        """Run every base model on ``features``."""
        return [model.predict(features) for model in self.models]

    def aggregate(
        self, member_outputs: Sequence[Optional[np.ndarray]]
    ) -> np.ndarray:
        """Aggregate member outputs (``None`` marks an unexecuted model)."""
        return self.aggregator.aggregate(member_outputs)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Full-ensemble output (executes every base model)."""
        return self.aggregate(self.member_outputs(features))

    def predict_subset(
        self, features: np.ndarray, subset: Sequence[int]
    ) -> np.ndarray:
        """Output using only the base models indexed by ``subset``."""
        chosen = set(int(i) for i in subset)
        if not chosen:
            raise ValueError("subset must contain at least one model index")
        if not chosen.issubset(range(self.size)):
            raise ValueError(
                f"subset {sorted(chosen)} out of range for {self.size} models"
            )
        outputs: List[Optional[np.ndarray]] = []
        for index, model in enumerate(self.models):
            outputs.append(model.predict(features) if index in chosen else None)
        return self.aggregate(outputs)

    def labels_from_output(self, output: np.ndarray) -> np.ndarray:
        """Convert aggregated output into task labels.

        Classification outputs become argmax labels; regression outputs
        pass through. Used everywhere the ensemble's output serves as
        ground truth.
        """
        output = np.asarray(output)
        if self.task == "classification":
            return output.argmax(axis=1)
        return output

    def total_latency(self) -> float:
        """Latency of a synchronous full-ensemble execution: the paper
        notes it is (slightly more than) the slowest base model."""
        return max(model.latency for model in self.models)

    def total_memory(self) -> float:
        """Memory to deploy every base model once."""
        return sum(model.memory for model in self.models)
