"""Aggregation modules combining base-model outputs (Sections III, VII).

Every aggregator accepts a list of per-model output arrays where an
entry may be ``None`` for models the scheduler did not execute; each
aggregator implements the corresponding missing-value strategy from
Section VII (vote exclusion, weight renormalisation, KNN filling for
stacking).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.filling.knn import KNNFiller


def _validate_members(
    member_outputs: Sequence[Optional[np.ndarray]],
) -> List[Optional[np.ndarray]]:
    outputs = list(member_outputs)
    if not outputs:
        raise ValueError("need at least one member output slot")
    present = [o for o in outputs if o is not None]
    if not present:
        raise ValueError("at least one member output must be present")
    shapes = {np.asarray(o).shape for o in present}
    if len(shapes) != 1:
        raise ValueError(f"present member outputs disagree on shape: {shapes}")
    return [None if o is None else np.asarray(o, dtype=float) for o in outputs]


class Aggregator:
    """Combines a list of ``(n, k)`` member outputs into one ``(n, k)``."""

    def aggregate(
        self, member_outputs: Sequence[Optional[np.ndarray]]
    ) -> np.ndarray:
        """Combine member outputs; ``None`` marks an unexecuted model."""
        raise NotImplementedError


class WeightedAverage(Aggregator):
    """Weighted averaging; missing members get weight 0 and the rest are
    renormalised (Section VII, "(Weighted) Averaging")."""

    def __init__(self, weights: Optional[Sequence[float]] = None):
        self.weights = None if weights is None else np.asarray(weights, dtype=float)
        if self.weights is not None and np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")

    def aggregate(
        self, member_outputs: Sequence[Optional[np.ndarray]]
    ) -> np.ndarray:
        """Weighted mean of present members (weights renormalised)."""
        outputs = _validate_members(member_outputs)
        m = len(outputs)
        weights = (
            np.ones(m) if self.weights is None else self.weights.copy()
        )
        if weights.shape[0] != m:
            raise ValueError(
                f"got {m} member slots but {weights.shape[0]} weights"
            )
        weights = np.array(
            [w if o is not None else 0.0 for w, o in zip(weights, outputs)]
        )
        total = weights.sum()
        if total <= 0:
            raise ValueError("all present members have zero weight")
        weights = weights / total
        combined = None
        for weight, output in zip(weights, outputs):
            if output is None or weight == 0.0:
                continue
            term = weight * output
            combined = term if combined is None else combined + term
        return combined


class MajorityVote(Aggregator):
    """(Weighted) voting over predicted classes; missing members simply
    do not vote (Section VII, "(Weighted) Voting").

    The output is a probability-like matrix: the vote share per class,
    with ties broken by the mean probability of the voting members so the
    result stays deterministic.
    """

    def __init__(self, weights: Optional[Sequence[float]] = None):
        self.weights = None if weights is None else np.asarray(weights, dtype=float)

    def aggregate(
        self, member_outputs: Sequence[Optional[np.ndarray]]
    ) -> np.ndarray:
        """Vote shares per class over the present members."""
        outputs = _validate_members(member_outputs)
        m = len(outputs)
        weights = np.ones(m) if self.weights is None else self.weights.copy()
        if weights.shape[0] != m:
            raise ValueError(
                f"got {m} member slots but {weights.shape[0]} weights"
            )
        present = [
            (w, o) for w, o in zip(weights, outputs) if o is not None and w > 0
        ]
        n, k = present[0][1].shape
        votes = np.zeros((n, k))
        mean_probs = np.zeros((n, k))
        total_weight = 0.0
        for weight, output in present:
            winners = output.argmax(axis=1)
            votes[np.arange(n), winners] += weight
            mean_probs += weight * output
            total_weight += weight
        votes /= total_weight
        mean_probs /= total_weight
        # Tiny probability-based tie-break keeps argmax deterministic
        # without changing the vote ordering.
        return votes + 1e-6 * mean_probs


class Stacking(Aggregator):
    """A trained meta-model over concatenated member outputs.

    Any predictor with ``fit``/``predict_proba`` (classification) or
    ``fit``/``predict`` (regression) works as the meta-model; the repo's
    :class:`repro.trees.GradientBoostingClassifier` plays the role of the
    paper's XGBoost aggregator. Missing member outputs are imputed by a
    :class:`KNNFiller` fit on historical full inference results.

    This is also the substrate of degraded-mode serving: when fault
    injection leaves a query with only a subset of its planned tasks
    executed, the profiler's quality tables — built with this aggregator
    over every partial subset — already score the answer the filler +
    meta-model would produce, so a degraded answer earns its (positive)
    subset quality instead of the 0 a dropped query scores. At least one
    member output must be present; the filler refuses an all-missing
    record (see :meth:`KNNFiller.fill`).
    """

    def __init__(self, meta_model, task: str = "classification", knn_k: int = 10):
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        self.meta_model = meta_model
        self.task = task
        self.filler = KNNFiller(k=knn_k)
        self._fitted = False

    @staticmethod
    def _concat(member_outputs: Sequence[np.ndarray]) -> np.ndarray:
        return np.concatenate([np.asarray(o, dtype=float) for o in member_outputs], axis=1)

    def fit(
        self, member_outputs: Sequence[np.ndarray], labels: np.ndarray
    ) -> "Stacking":
        """Train the meta-model on *full* member outputs and fit the KNN
        filler's history from the same records."""
        outputs = [np.asarray(o, dtype=float) for o in member_outputs]
        if any(o is None for o in member_outputs):
            raise ValueError("stacking must be fit on full member outputs")
        self.meta_model.fit(self._concat(outputs), np.asarray(labels))
        self.filler.fit(np.stack(outputs, axis=1))
        self._fitted = True
        return self

    def aggregate(
        self, member_outputs: Sequence[Optional[np.ndarray]]
    ) -> np.ndarray:
        """Meta-model output; missing members are KNN-filled first."""
        if not self._fitted:
            raise RuntimeError("Stacking.aggregate called before fit")
        outputs = _validate_members(member_outputs)
        mask = np.array([o is not None for o in outputs])
        template = next(o for o in outputs if o is not None)
        n, dim = template.shape

        if mask.all():
            full = np.stack(outputs, axis=1)
        else:
            partials = np.zeros((n, len(outputs), dim))
            for j, output in enumerate(outputs):
                if output is not None:
                    partials[:, j, :] = output
            masks = np.tile(mask, (n, 1))
            full = self.filler.fill_batch(partials, masks)

        flat = full.reshape(n, -1)
        if self.task == "classification":
            return self.meta_model.predict_proba(flat)
        predicted = np.asarray(self.meta_model.predict(flat), dtype=float)
        if predicted.ndim == 1:
            predicted = predicted[:, None]
        return predicted
