"""Runtime fault injection driven by a :class:`FaultPlan`.

The injector is the mutable per-run counterpart of the frozen plan:
it owns the fault RNG and answers the three questions the event loop
asks at task start — how long will this execution take, does it fail,
and when is this worker down. Draws are consumed in event order, and
the discrete-event loop is itself deterministic, so a (plan, workload,
config) triple always yields the same run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.faults.plan import DowntimeWindow, FaultPlan


class FaultInjector:
    """Per-run fault source; construct one per ``EnsembleServer.run``."""

    def __init__(self, plan: FaultPlan, n_workers: int):
        self.plan = plan
        self.n_workers = int(n_workers)
        self._rng = np.random.default_rng(plan.seed)
        self._windows: Dict[int, Tuple[DowntimeWindow, ...]] = {
            wid: plan.windows_for(wid) for wid in range(self.n_workers)
        }
        for window in plan.downtime:
            if window.worker >= self.n_workers:
                raise ValueError(
                    f"downtime window references worker {window.worker}, "
                    f"server deploys {self.n_workers}"
                )

    # ------------------------------------------------------------------
    # Per-task draws (consumed in event order)
    # ------------------------------------------------------------------

    def service_time(self, worker: int, base_latency: float) -> float:
        """Actual execution time of one task on ``worker``."""
        plan = self.plan
        time = float(base_latency)
        if plan.latency_jitter > 0.0:
            # Median-1 lognormal: jitter skews slow, never negative.
            time *= float(np.exp(
                plan.latency_jitter * self._rng.standard_normal()
            ))
        if plan.straggler_prob > 0.0 and (
            self._rng.random() < plan.straggler_prob
        ):
            time *= plan.straggler_factor
        return time

    def task_fails(self, worker: int) -> bool:
        """Whether this execution fails transiently (decided at start)."""
        rate = self.plan.task_failure_rate
        return rate > 0.0 and self._rng.random() < rate

    # ------------------------------------------------------------------
    # Downtime queries (pure functions of the plan)
    # ------------------------------------------------------------------

    def windows_for(self, worker: int) -> Tuple[DowntimeWindow, ...]:
        """The worker's crash windows, sorted by start."""
        return self._windows.get(worker, ())

    def downtime_at(self, worker: int, now: float) -> Optional[DowntimeWindow]:
        """The window covering ``now`` for this worker, if any."""
        for window in self._windows.get(worker, ()):
            if window.start <= now < window.end:
                return window
            if window.start > now:
                break
        return None

    def total_downtime(self, worker: int, horizon: float) -> float:
        """Seconds of downtime within ``[0, horizon]`` (report metric)."""
        total = 0.0
        for window in self._windows.get(worker, ()):
            total += max(0.0, min(window.end, horizon) - window.start)
        return total
