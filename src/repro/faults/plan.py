"""Deterministic fault plans for the serving simulator.

The paper's serving model (Section V) assumes perfectly reliable
workers whose availability is exactly predictable. A production
ensemble server sees the opposite: latency jitter, stragglers,
transient task failures and workers that crash and come back. A
:class:`FaultPlan` describes that behaviour as data — a frozen,
seedable specification the server turns into a
:class:`~repro.faults.injector.FaultInjector` at run start — so a
faulty run is exactly reproducible: the same plan and the same
workload always produce the same failures, the same retries and the
same degraded answers (the CI determinism check relies on this).

A default-constructed plan is *null*: it injects nothing, and the
server bypasses the fault machinery entirely, keeping the reliable
path byte-identical to the fault-free event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class DowntimeWindow:
    """One crash/recover interval of one worker.

    The worker is unavailable during ``[start, end)``: a task executing
    at ``start`` is killed, queued tasks are revoked for failover, and
    the worker accepts work again at ``end``.
    """

    worker: int
    start: float
    end: float

    def __post_init__(self):
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"end {self.end} must be after start {self.start}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Seedable description of every fault the server should inject.

    Attributes:
        seed: Root seed of the per-run fault RNG. Two runs with the same
            plan, workload and server config are identical event for
            event.
        latency_jitter: Sigma of the lognormal multiplier applied to
            every task's service time (0 disables jitter; the multiplier
            has median 1, so jitter skews slow — the empirical shape of
            inference tail latency).
        straggler_prob: Probability a task becomes a straggler.
        straggler_factor: Service-time multiplier for stragglers (must
            be >= 1).
        task_failure_rate: Probability a task fails transiently: the
            worker is occupied for the full service time but produces no
            output (lost result, OOM, poisoned input...).
        downtime: Explicit per-worker crash windows. Use
            :meth:`with_random_crashes` to generate these from a rate.
    """

    seed: int = 0
    latency_jitter: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    task_failure_rate: float = 0.0
    downtime: Tuple[DowntimeWindow, ...] = field(default_factory=tuple)

    def __post_init__(self):
        check_positive("latency_jitter", self.latency_jitter, allow_zero=True)
        check_in_range("straggler_prob", self.straggler_prob, 0.0, 1.0)
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        check_in_range(
            "task_failure_rate", self.task_failure_rate, 0.0, 1.0
        )
        object.__setattr__(self, "downtime", tuple(self.downtime))
        for window in self.downtime:
            if not isinstance(window, DowntimeWindow):
                raise TypeError(
                    f"downtime entries must be DowntimeWindow, got "
                    f"{type(window).__name__}"
                )

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.latency_jitter == 0.0
            and self.straggler_prob == 0.0
            and self.task_failure_rate == 0.0
            and not self.downtime
        )

    def windows_for(self, worker: int) -> Tuple[DowntimeWindow, ...]:
        """This worker's crash windows, sorted by start time."""
        return tuple(sorted(
            (w for w in self.downtime if w.worker == worker),
            key=lambda w: w.start,
        ))

    def with_random_crashes(
        self,
        n_workers: int,
        duration: float,
        crash_rate: float,
        mean_downtime: float,
        seed: int = 0,
    ) -> "FaultPlan":
        """A copy of this plan with Poisson crash windows added.

        Each worker crashes as a Poisson process of ``crash_rate``
        events per second over ``[0, duration]``; each outage lasts an
        exponential time with mean ``mean_downtime``. Overlapping
        windows are merged. The generation is a pure function of the
        arguments and ``seed``.
        """
        check_positive("duration", duration)
        check_positive("crash_rate", crash_rate, allow_zero=True)
        check_positive("mean_downtime", mean_downtime)
        rng = np.random.default_rng(seed)
        windows = list(self.downtime)
        for worker in range(n_workers):
            t = 0.0
            last_end = 0.0
            while True:
                t += float(rng.exponential(1.0 / crash_rate)) if crash_rate else np.inf
                if t >= duration:
                    break
                start = max(t, last_end)
                end = start + float(rng.exponential(mean_downtime))
                windows.append(DowntimeWindow(worker, start, end))
                last_end = end
                t = max(t, end)
        from dataclasses import replace

        return replace(self, downtime=tuple(windows))


def crash_windows(
    workers: Sequence[int], starts: Sequence[float], ends: Sequence[float]
) -> Tuple[DowntimeWindow, ...]:
    """Convenience constructor for explicit downtime tuples."""
    if not (len(workers) == len(starts) == len(ends)):
        raise ValueError("workers, starts and ends must share length")
    return tuple(
        DowntimeWindow(int(w), float(s), float(e))
        for w, s, e in zip(workers, starts, ends)
    )
