"""Fault injection and degraded-mode serving support.

A :class:`FaultPlan` is a frozen, seedable description of worker
misbehaviour (latency jitter, stragglers, transient task failures and
crash/recover windows); the serving simulator turns it into a
:class:`FaultInjector` at run start and reacts with timeouts, bounded
retries, failover re-planning and degraded answers. See DESIGN.md,
"Fault model & degraded mode".
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import DowntimeWindow, FaultPlan, crash_windows

__all__ = [
    "DowntimeWindow",
    "FaultPlan",
    "FaultInjector",
    "crash_windows",
]
