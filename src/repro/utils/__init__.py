"""Shared utilities: RNG handling, validation, small math helpers."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_probabilities,
    check_positive,
    check_in_range,
    check_matrix,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_probabilities",
    "check_positive",
    "check_in_range",
    "check_matrix",
]
