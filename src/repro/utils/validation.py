"""Argument validation helpers shared across the library.

These raise early with precise messages instead of letting numpy
broadcasting errors surface deep inside a simulation run.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Validate that ``value`` is positive (or non-negative)."""
    value = float(value)
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValueError(f"{name} must be in {bounds}, got {value}")
    return value


def check_matrix(name: str, array: np.ndarray, ndim: int = 2) -> np.ndarray:
    """Validate dimensionality and finiteness of a numeric array."""
    array = np.asarray(array, dtype=float)
    if array.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array


def check_probabilities(name: str, probs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Validate that ``probs`` are non-negative and sum to one along ``axis``."""
    probs = np.asarray(probs, dtype=float)
    if np.any(probs < -1e-9):
        raise ValueError(f"{name} contains negative probabilities")
    totals = probs.sum(axis=axis)
    if not np.allclose(totals, 1.0, atol=1e-6):
        raise ValueError(
            f"{name} rows must sum to 1 (max deviation "
            f"{np.max(np.abs(totals - 1.0)):.3g})"
        )
    return probs
