"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy) or an existing :class:`numpy.random.Generator`.
Centralising the conversion keeps experiments reproducible end to end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing a generator returns it unchanged so that callers can thread a
    single stream through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent generators from one seed.

    Used when several models must be trained with *different but
    reproducible* randomness (e.g. the seed-variance study of Fig. 5).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(child) for child in root.spawn(count)]
