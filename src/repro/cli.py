"""Command-line entry point: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro table1 [--preset small|default] [--seed N]
    python -m repro sweep --task text_matching [--preset small]
    python -m repro day --task text_matching
    python -m repro schedulers --task text_matching
    python -m repro budget --task vehicle_counting
    python -m repro trace --task text_matching [--policy schemble]
    python -m repro faults --task text_matching [--rates 0,0.05,0.15,0.3]
    python -m repro explain QUERY_ID --decisions traces/..._decisions.jsonl
    python -m repro slo --spans traces/..._spans.jsonl [--slo-target 0.05]
    python -m repro profile --task text_matching [--spans traces/..._spans.jsonl]
    python -m repro diff traces/base_profile.json traces/new_profile.json
    python -m repro fleet --task text_matching [--shards 4] [--router score_aware]
    python -m repro control --task text_matching [--shards 4] [--interval 1.0]
    python -m repro distill --task text_matching [--decisions traces/..._decisions.jsonl]
    python -m repro top --mode control [--once] [--serve-metrics PORT]
    python -m repro incident traces/..._incident_00.json

Each command builds the task setup (training the models on first use),
runs the corresponding experiment and prints its table. The commands are
thin wrappers over :mod:`repro.experiments`, useful for exploring
configurations without writing a script. ``trace`` additionally runs an
observed serving run and writes the span stream (JSONL), a Chrome
``trace_event`` timeline (open in chrome://tracing or Perfetto) and a
plain-text run report to ``--out``; its ``--failure-rate`` / ``--jitter``
/ ``--crash-rate`` flags inject a :class:`~repro.faults.FaultPlan` so the
fault lifecycle (task_failed/retry/worker_down/degraded_answer spans)
shows up in the timeline and report. ``faults`` sweeps transient failure
rates and compares graceful degradation against drop-on-failure.

``trace`` also writes per-query scheduler decision records
(``*_decisions.jsonl``) and a Prometheus text scrape of the run's
metrics (``*_metrics.prom``); with ``--slo-target`` it attaches an
online :class:`~repro.obs.slo.SLOMonitor` so burn rates and overload
episodes appear in the report. ``explain`` pretty-prints the decision
records of one query id; ``slo`` replays a recorded span stream through
the monitor offline.

``profile`` runs a profiled serving run (or attributes an existing span
dump with ``--spans``) and prints the per-query latency attribution:
phase breakdown, DP step-phase wall clock, and the top-K blame report
with critical-path chains; it writes a ``*_profile.json`` artifact.
``diff`` compares two such artifacts (or raw span dumps) and flags
phase-level regressions with noise-floored thresholds, exiting 1 when
any are found — the CI regression gate.

Serving-side behaviour for ``trace``/``faults`` is described by a single
:class:`~repro.serving.config.ServerConfig` inside a
:class:`~repro.experiments.runner.RunSpec` — commands build one spec
instead of plumbing individual ``allow_rejection``/``max_buffer`` knobs.

``fleet`` serves one day trace on a multi-replica fleet
(:mod:`repro.fleet`): a comparison table of every routing policy
against an equal-capacity single server, and (with ``--out``) a traced
run whose merged and per-shard span streams feed ``profile``/``slo``
offline.

``control`` closes the loop (:mod:`repro.control`): the same day trace
served by a static fleet and by an identically-provisioned fleet under
the SLO-driven controller (replica scaling, admission tightening,
degraded-quality mode), side by side, plus the controller's action
counts. With ``--out`` it writes the controlled run's merged span
stream, metrics scrape and the byte-stable controller action log.

``distill`` trains the learned fast-path scheduler
(:mod:`repro.scheduling.policy_fast`): it replays a DP-scheduled run
(or reads an existing ``*_decisions.jsonl``), extracts per-query
feature rows from the decision log
(:mod:`repro.scheduling.distill`), fits the imitation policy and the
regret estimator, and writes a frozen ``PolicyModel`` JSON artifact.
``trace``/``fleet``/``control`` then accept ``--scheduler learned
--policy-model ARTIFACT [--regret-threshold T]`` to serve with the
distilled policy, falling back to the exact DP on instances whose
predicted regret exceeds the threshold (``--regret-threshold 0``
reproduces the DP run bit-exactly).

``trace`` and ``control`` take ``--live`` to attach the live telemetry
plane (:mod:`repro.obs.live`): streaming snapshots at ``--cadence``
simulated seconds, the always-on flight recorder, and breach-triggered
incident bundles, all written next to the other artifacts.
``--serve-metrics PORT`` additionally exposes ``/metrics`` (Prometheus
text) and ``/snapshot`` (JSON) over HTTP on a daemon thread while the
run executes (``--serve-hold`` keeps the endpoint up after the run so
scripts can scrape a finished run). ``top`` is the live console: it
runs a workload (``--mode trace|fleet|control``) in a worker thread
and repaints per-source rates, quantiles and the incident tally;
``--once`` runs to completion and prints a single frame (CI-friendly).
``incident`` is the post-mortem: it pretty-prints a frozen incident
bundle and re-derives the full latency profile from the bundle's
flight-recorder spans.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.overall import average_over_deadlines, run_deadline_sweep
from repro.experiments.offline_budget import run_offline_budget
from repro.experiments.scheduler_ablation import run_scheduler_ablation
from repro.experiments.setups import TASKS, build_setup
from repro.experiments.trace_segments import run_day_trace
from repro.metrics.tables import format_table

COMMANDS = (
    "list", "table1", "sweep", "day", "schedulers", "budget", "trace",
    "faults", "explain", "slo", "profile", "diff", "fleet", "control",
    "distill", "top", "incident",
)

TRACE_POLICIES = (
    "original", "static", "des", "gating", "schemble_ea", "schemble"
)


def _add_common(parser: argparse.ArgumentParser, default_task: bool = True):
    if default_task:
        parser.add_argument(
            "--task", choices=TASKS, default="text_matching",
            help="application to run (default: text_matching)",
        )
    parser.add_argument(
        "--preset", choices=("small", "default"), default="small",
        help="experiment scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="simulated trace length in seconds",
    )


def _add_fault_args(parser: argparse.ArgumentParser):
    """Fault-injection knobs shared by ``trace`` and ``faults``."""
    parser.add_argument(
        "--jitter", type=float, default=0.0,
        help="lognormal sigma on worker service times (default: 0)",
    )
    parser.add_argument(
        "--straggler-prob", type=float, default=0.0,
        help="probability a task runs straggler-slow (default: 0)",
    )
    parser.add_argument(
        "--crash-rate", type=float, default=0.0,
        help="worker crashes per worker-second (default: 0)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-task timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="retry budget per task (default: 2)",
    )


def _add_scheduler_args(parser: argparse.ArgumentParser):
    """Scheduler-override knobs shared by ``trace``/``fleet``/``control``."""
    parser.add_argument(
        "--scheduler", choices=("dp", "learned"), default=None,
        help="override the buffered policy's scheduler: 'dp' forces a "
        "fresh exact DP, 'learned' serves the distilled fast-path "
        "policy with a DP fallback (default: keep the setup's own)",
    )
    parser.add_argument(
        "--policy-model", default=None,
        help="PolicyModel artifact written by `python -m repro "
        "distill` (required with --scheduler learned)",
    )
    parser.add_argument(
        "--regret-threshold", type=float, default=0.5,
        help="estimated utility gap above which the learned scheduler "
        "falls back to exact DP; 0 falls back everywhere and is "
        "bit-identical to --scheduler dp (default: 0.5)",
    )


def _add_live_args(parser: argparse.ArgumentParser, opt_in: bool = True):
    """Live telemetry knobs shared by ``trace``/``control``/``top``."""
    if opt_in:
        parser.add_argument(
            "--live", action="store_true",
            help="attach the live telemetry plane: streaming "
            "snapshots, flight recorder and incident bundles "
            "(written next to the other artifacts)",
        )
    parser.add_argument(
        "--cadence", type=float, default=1.0,
        help="simulated seconds between telemetry snapshots "
        "(default: 1.0)",
    )
    parser.add_argument(
        "--serve-metrics", type=int, default=None, metavar="PORT",
        help="expose /metrics (Prometheus) and /snapshot (JSON) over "
        "HTTP on this port while the run executes (0 = ephemeral; "
        "implies --live)",
    )
    parser.add_argument(
        "--serve-hold", type=float, default=0.0,
        help="wall-clock seconds to keep the --serve-metrics endpoint "
        "up after the run finishes (default: 0)",
    )


def _add_slo_args(parser: argparse.ArgumentParser):
    """SLO monitoring knobs shared by ``trace``, ``faults`` and ``slo``."""
    parser.add_argument(
        "--slo-target", type=float, default=None,
        help="deadline-miss error budget (fraction, e.g. 0.05); "
        "enables online SLO monitoring",
    )
    parser.add_argument(
        "--slo-window", type=float, default=10.0,
        help="alert window in simulated seconds (default: 10)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The `python -m repro` argument parser (one subcommand per family)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Schemble (ICDE 2023) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available tasks and commands")

    table1 = sub.add_parser(
        "table1", help="Table I: all baselines x all tasks"
    )
    _add_common(table1, default_task=False)

    sweep = sub.add_parser(
        "sweep", help="Figs. 6-8: accuracy/DMR vs deadline for one task"
    )
    _add_common(sweep)

    day = sub.add_parser(
        "day", help="Figs. 9/14: one-day bursty trace, per-segment metrics"
    )
    _add_common(day)

    schedulers = sub.add_parser(
        "schedulers", help="Fig. 12: greedy orders vs DP quantisation steps"
    )
    _add_common(schedulers)

    budget = sub.add_parser(
        "budget", help="Fig. 16: offline accuracy under runtime budgets"
    )
    _add_common(budget)

    trace = sub.add_parser(
        "trace",
        help="traced serving run: spans (JSONL), Perfetto timeline, report",
    )
    _add_common(trace)
    trace.add_argument(
        "--policy", choices=TRACE_POLICIES, default="schemble",
        help="serving policy to trace (default: schemble)",
    )
    trace.add_argument(
        "--out", default="traces",
        help="output directory for span/timeline/report files",
    )
    _add_scheduler_args(trace)
    _add_fault_args(trace)
    trace.add_argument(
        "--failure-rate", type=float, default=0.0,
        help="transient per-task failure probability (default: 0)",
    )
    trace.add_argument(
        "--no-degraded", action="store_true",
        help="drop partially-failed queries instead of answering "
        "from the executed subset",
    )
    trace.add_argument(
        "--fault-seed", type=int, default=17,
        help="seed of the fault plan RNG (default: 17)",
    )
    _add_slo_args(trace)
    _add_live_args(trace)

    faults = sub.add_parser(
        "faults",
        help="resilience sweep: degraded-mode vs drop-on-failure "
        "accuracy across task-failure rates",
    )
    _add_common(faults)
    faults.add_argument(
        "--policy", choices=TRACE_POLICIES, default="schemble",
        help="serving policy to stress (default: schemble)",
    )
    faults.add_argument(
        "--rates", default="0,0.05,0.15,0.3",
        help="comma-separated task-failure rates to sweep",
    )
    _add_fault_args(faults)
    _add_slo_args(faults)

    explain = sub.add_parser(
        "explain",
        help="pretty-print the scheduler decision records of one query",
    )
    explain.add_argument(
        "query_id", type=int, help="query id to explain",
    )
    explain.add_argument(
        "--decisions", required=True,
        help="decision JSONL written by `trace` (*_decisions.jsonl)",
    )

    slo = sub.add_parser(
        "slo",
        help="replay a recorded span stream through the SLO monitor",
    )
    slo.add_argument(
        "--spans", required=True,
        help="span JSONL written by `trace` (*_spans.jsonl)",
    )
    _add_slo_args(slo)
    slo.add_argument(
        "--min-events", type=int, default=20,
        help="events required in the alert window before the detector "
        "may fire (default: 20)",
    )

    profile = sub.add_parser(
        "profile",
        help="per-query latency attribution, critical paths and the "
        "blame report (live profiled run, or offline from a span dump)",
    )
    _add_common(profile)
    profile.add_argument(
        "--policy", choices=TRACE_POLICIES, default="schemble",
        help="serving policy to profile (default: schemble)",
    )
    profile.add_argument(
        "--spans", default=None,
        help="attribute an existing span JSONL offline instead of "
        "running a fresh profiled serving run",
    )
    profile.add_argument(
        "--out", default="traces",
        help="output directory for the span dump and profile artifact",
    )
    profile.add_argument(
        "--top", type=int, default=5,
        help="blame report entries (default: 5)",
    )
    _add_fault_args(profile)
    profile.add_argument(
        "--failure-rate", type=float, default=0.0,
        help="transient per-task failure probability (default: 0)",
    )
    profile.add_argument(
        "--fault-seed", type=int, default=17,
        help="seed of the fault plan RNG (default: 17)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="multi-replica fleet serving: compare routing policies "
        "against one equal-capacity single server on a day trace",
    )
    _add_common(fleet)
    fleet.add_argument(
        "--policy", choices=TRACE_POLICIES, default="schemble",
        help="serving policy every shard runs (default: schemble)",
    )
    fleet.add_argument(
        "--shards", type=int, default=4,
        help="number of server shards (default: 4)",
    )
    fleet.add_argument(
        "--router", choices=("hash", "power_of_two", "score_aware"),
        default="score_aware",
        help="router for the traced run written to --out "
        "(the comparison table always covers all three; "
        "default: score_aware)",
    )
    fleet.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission capacity per shard, in queries (default: 64)",
    )
    _add_scheduler_args(fleet)
    fleet.add_argument(
        "--out", default=None,
        help="when set, also run the --router fleet traced and write "
        "the merged and per-shard span streams (JSONL) plus a "
        "Prometheus metrics scrape to this directory — inputs for "
        "`python -m repro profile|slo --spans ...`",
    )

    control = sub.add_parser(
        "control",
        help="SLO-driven control loop: static fleet vs controlled "
        "fleet (replica scaling, admission tightening, degradation) "
        "on a day trace",
    )
    _add_common(control)
    control.add_argument(
        "--policy", choices=TRACE_POLICIES, default="schemble",
        help="serving policy every shard runs (default: schemble)",
    )
    control.add_argument(
        "--shards", type=int, default=4,
        help="number of server shards (default: 4)",
    )
    control.add_argument(
        "--router", choices=("hash", "power_of_two", "score_aware"),
        default="power_of_two",
        help="front-end router both fleets use (default: power_of_two)",
    )
    control.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission capacity per shard, in queries (default: 64)",
    )
    control.add_argument(
        "--interval", type=float, default=1.0,
        help="controller decision period in simulated seconds "
        "(default: 1.0)",
    )
    control.add_argument(
        "--warmup", type=float, default=2.0,
        help="replica-set provisioning latency in simulated seconds "
        "(default: 2.0)",
    )
    control.add_argument(
        "--max-extra", type=int, default=4,
        help="cap on extra replica sets the controller may hold "
        "(default: 4)",
    )
    _add_scheduler_args(control)
    _add_live_args(control)
    control.add_argument(
        "--out", default=None,
        help="when set, write the controlled run's merged span stream "
        "(JSONL), Prometheus metrics scrape and controller action "
        "log (JSONL, byte-stable across same-seed reruns) to this "
        "directory",
    )

    distill = sub.add_parser(
        "distill",
        help="train the learned fast-path scheduler from a DP-scheduled "
        "run's decision log and write the PolicyModel artifact",
    )
    _add_common(distill)
    distill.add_argument(
        "--policy", choices=TRACE_POLICIES, default="schemble",
        help="buffered policy whose DP decisions to imitate "
        "(default: schemble)",
    )
    distill.add_argument(
        "--decisions", default=None,
        help="existing decision JSONL written by `trace` "
        "(*_decisions.jsonl); omitted, a fresh DP-scheduled run is "
        "replayed to generate one",
    )
    distill.add_argument(
        "--out", default="artifacts",
        help="output directory for the PolicyModel artifact "
        "(default: artifacts)",
    )
    distill.add_argument(
        "--model", choices=("auto", "gbdt", "mlp"), default="auto",
        help="imitation model family; auto picks by validation "
        "exact-mask accuracy (default: auto)",
    )
    distill.add_argument(
        "--val-fraction", type=float, default=0.25,
        help="fraction of scheduling rounds held out for model "
        "selection (default: 0.25)",
    )

    top = sub.add_parser(
        "top",
        help="live console: run a workload and watch per-source "
        "rates, quantiles and incidents from the telemetry plane",
    )
    _add_common(top)
    top.add_argument(
        "--mode", choices=("trace", "fleet", "control"), default="trace",
        help="workload to watch: one traced server, a static fleet, "
        "or the controlled fleet (default: trace)",
    )
    top.add_argument(
        "--policy", choices=TRACE_POLICIES, default="schemble",
        help="serving policy to run (default: schemble)",
    )
    top.add_argument(
        "--shards", type=int, default=4,
        help="fleet size for --mode fleet/control (default: 4)",
    )
    top.add_argument(
        "--router", choices=("hash", "power_of_two", "score_aware"),
        default="power_of_two",
        help="front-end router for --mode fleet/control "
        "(default: power_of_two)",
    )
    top.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission capacity per shard (default: 64)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="controller decision period for --mode control "
        "(default: 1.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="run to completion and print one final frame instead of "
        "repainting live (CI-friendly)",
    )
    top.add_argument(
        "--refresh", type=float, default=0.5,
        help="wall-clock seconds between live repaints (default: 0.5)",
    )
    top.add_argument(
        "--out", default=None,
        help="when set, write the snapshot stream (JSONL) and every "
        "incident bundle to this directory",
    )
    _add_live_args(top, opt_in=False)

    incident = sub.add_parser(
        "incident",
        help="post-mortem of one frozen incident bundle: trigger, "
        "ring window, blame, and the profile re-derived from the "
        "bundle's spans",
    )
    incident.add_argument(
        "bundle",
        help="incident bundle JSON written by a --live run "
        "(*_incident_NN.json)",
    )
    incident.add_argument(
        "--top", type=int, default=5,
        help="blame entries in the re-derived profile (default: 5)",
    )
    incident.add_argument(
        "--explain", action="store_true",
        help="also pretty-print any decision records embedded for the "
        "blamed queries",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two runs' profile artifacts (or span dumps) and "
        "flag phase-level regressions; exit 1 when any are found",
    )
    diff.add_argument(
        "base", help="baseline profile artifact (*_profile.json) or "
        "span JSONL",
    )
    diff.add_argument(
        "new", help="candidate profile artifact or span JSONL",
    )
    diff.add_argument(
        "--sim-rel", type=float, default=0.05,
        help="relative threshold for simulated-time metrics "
        "(deterministic per seed; default: 0.05)",
    )
    diff.add_argument(
        "--wall-ratio", type=float, default=1.6,
        help="blow-up ratio a wall-clock metric must exceed "
        "(default: 1.6)",
    )
    diff.add_argument(
        "--wall-floor", type=float, default=1e-3,
        help="absolute seconds a wall-clock metric must additionally "
        "grow by (noise floor; default: 1e-3)",
    )
    return parser


def _cmd_list() -> str:
    lines = ["tasks:"]
    lines += [f"  {task}" for task in TASKS]
    lines.append("commands:")
    lines += [f"  {command}" for command in COMMANDS]
    return "\n".join(lines)


def _cmd_table1(args) -> str:
    rows = []
    for task in TASKS:
        setup = build_setup(task, args.preset, seed=args.seed)
        sweep = run_deadline_sweep(
            setup, duration=args.duration, seed=args.seed + 5
        )
        averaged = average_over_deadlines(sweep)
        for name, stats in averaged.items():
            rows.append(
                [task, name, 100 * stats["accuracy"], 100 * stats["dmr"]]
            )
    return format_table(
        ["task", "method", "accuracy %", "DMR %"],
        rows,
        title="Table I (reproduced)",
    )


def _cmd_sweep(args) -> str:
    setup = build_setup(args.task, args.preset, seed=args.seed)
    sweep = run_deadline_sweep(setup, duration=args.duration, seed=args.seed + 5)
    rows = []
    for name, series in sweep["methods"].items():
        rows.append(
            [name]
            + [f"{a:.3f}/{d:.3f}" for a, d in zip(series["accuracy"], series["dmr"])]
        )
    return format_table(
        ["method (acc/dmr)"] + [f"dl={dl}" for dl in sweep["deadlines"]],
        rows,
        title=f"deadline sweep — {args.task}",
    )


def _cmd_day(args) -> str:
    setup = build_setup(args.task, args.preset, seed=args.seed)
    out = run_day_trace(
        setup,
        baselines=("original", "static", "gating", "schemble"),
        deadline=min(setup.deadline_grid),
        duration=max(args.duration, 120.0),
        seed=args.seed + 5,
    )
    rows = [
        [name, out[name]["overall_accuracy"], out[name]["overall_dmr"]]
        for name in out
    ]
    return format_table(
        ["method", "accuracy", "DMR"],
        rows,
        title=f"one-day trace — {args.task}",
    )


def _cmd_schedulers(args) -> str:
    setup = build_setup(args.task, args.preset, seed=args.seed)
    out = run_scheduler_ablation(
        setup,
        deadlines=[setup.deadline_grid[0], setup.deadline_grid[-1]],
        duration=min(args.duration, 12.0),
        seed=args.seed + 5,
    )
    rows = []
    for name, series in out["methods"].items():
        rows.append(
            [name]
            + [f"{a:.3f}/{d:.3f}" for a, d in zip(series["accuracy"], series["dmr"])]
        )
    return format_table(
        ["scheduler (acc/dmr)"] + [f"dl={dl}" for dl in out["deadlines"]],
        rows,
        title=f"scheduler ablation — {args.task}",
    )


def _fault_plan(args, n_workers: int, duration: float):
    """Build the FaultPlan the ``trace`` fault flags describe (or None)."""
    from repro.faults import FaultPlan

    plan = FaultPlan(
        seed=args.fault_seed,
        latency_jitter=args.jitter,
        straggler_prob=args.straggler_prob,
        task_failure_rate=args.failure_rate,
    )
    if args.crash_rate > 0:
        plan = plan.with_random_crashes(
            n_workers=n_workers,
            duration=duration,
            crash_rate=args.crash_rate,
            mean_downtime=2.0,
            seed=args.fault_seed + 1,
        )
    return None if plan.is_null else plan


def _slo_monitor(args):
    """Build the SLOMonitor ``--slo-target`` asks for (or None)."""
    if getattr(args, "slo_target", None) is None:
        return None
    from repro.obs import SLOConfig, SLOMonitor

    window = args.slo_window
    return SLOMonitor(SLOConfig(
        miss_target=args.slo_target,
        windows=(window, 10.0 * window, 60.0 * window),
        alert_window=window,
        min_events=getattr(args, "min_events", 20),
    ))


def _live_plane(args, source: str = "server"):
    """The LiveTelemetry plane the live flags ask for (or None).

    ``--serve-metrics`` implies ``--live``: an endpoint without the
    plane could only serve final metrics, never snapshots.
    """
    wants = getattr(args, "live", False) or args.serve_metrics is not None
    if not wants:
        return None
    from repro.obs import LiveConfig, LiveTelemetry

    return LiveTelemetry(LiveConfig(cadence=args.cadence), source=source)


def _start_metrics_server(args, tracer):
    """Start the --serve-metrics endpoint (or return None)."""
    if args.serve_metrics is None:
        return None
    from repro.obs import MetricsServer

    server = MetricsServer(tracer, port=args.serve_metrics).start()
    # Announce before the run so scripts can scrape mid-run.
    print(
        f"serving /metrics and /snapshot at {server.url}",
        file=sys.stderr, flush=True,
    )
    return server


def _stop_metrics_server(server, hold: float) -> None:
    """Optionally hold the endpoint open, then shut it down."""
    if server is None:
        return
    if hold > 0:
        import time

        time.sleep(hold)
    server.stop()


def _live_footer(live, written) -> List[str]:
    """Footer lines for a run that carried a live plane."""
    lines = [f"wrote {path}" for path in written]
    lines.append(
        f"live telemetry: {len(live.snapshots)} snapshots, "
        f"{len(live.incidents)} incident bundle"
        f"{'s' if len(live.incidents) != 1 else ''}"
        + (f" ({live.suppressed} suppressed)" if live.suppressed else "")
    )
    for bundle in live.incidents:
        trigger = bundle["trigger"]
        lines.append(
            f"  incident #{bundle['seq']}: {trigger['kind']} "
            f"@ t={trigger['time']:.2f}s — inspect with "
            f"`python -m repro incident {written[1 + bundle['seq']]}`"
            if len(written) > 1 + bundle["seq"]
            else f"  incident #{bundle['seq']}: {trigger['kind']} "
            f"@ t={trigger['time']:.2f}s"
        )
    return lines


def _cmd_trace(args) -> str:
    from repro.experiments.runner import RunSpec, run_spec
    from repro.obs import (
        DecisionLog,
        RecordingTracer,
        render_report,
        write_chrome_trace,
        write_prometheus,
        write_spans_jsonl,
    )
    from repro.serving.config import ServerConfig

    setup = build_setup(args.task, args.preset, seed=args.seed)
    workers = setup.workers_for(args.policy)
    n_workers = len(workers) if workers is not None else setup.n_models
    plan = _fault_plan(
        args, n_workers=n_workers,
        duration=args.duration,
    )
    spec = RunSpec(
        policy=args.policy,
        config=ServerConfig(
            faults=plan,
            task_timeout=args.timeout,
            max_retries=args.retries,
            degraded_answers=not args.no_degraded,
        ),
        duration=args.duration,
        seed=args.seed + 5,
        scheduler=args.scheduler,
        policy_model=args.policy_model,
        regret_threshold=args.regret_threshold,
    )
    live = _live_plane(args)
    tracer = RecordingTracer(slo=_slo_monitor(args), live=live)
    explain_log = DecisionLog()
    if live is not None:
        # Bundles then embed the blamed queries' decision records.
        live.attach_decisions(explain_log)
    metrics_server = _start_metrics_server(args, tracer)
    result = run_spec(setup, spec, tracer=tracer, explain=explain_log)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{args.task}_{args.policy}"
    spans_path = write_spans_jsonl(tracer.spans, out_dir / f"{stem}_spans.jsonl")
    timeline_path = write_chrome_trace(
        tracer.spans, out_dir / f"{stem}_timeline.json"
    )
    decisions_path = explain_log.write_jsonl(
        out_dir / f"{stem}_decisions.jsonl"
    )
    prom_path = write_prometheus(
        tracer.metrics, out_dir / f"{stem}_metrics.prom"
    )
    report = render_report(result, tracer, duration=args.duration)
    report_path = out_dir / f"{stem}_report.txt"
    report_path.write_text(report + "\n")

    footer_lines = [
        "",
        f"wrote {spans_path}",
        f"wrote {timeline_path}  (open in chrome://tracing or "
        "https://ui.perfetto.dev)",
        f"wrote {decisions_path}  (inspect with `python -m repro explain "
        f"QUERY_ID --decisions {decisions_path}`)",
        f"wrote {prom_path}",
        f"wrote {report_path}",
    ]
    if args.scheduler == "learned":
        fallbacks = tracer.metrics.counter("sched.fallbacks").value
        invocations = tracer.metrics.counter("scheduler.invocations").value
        rate = fallbacks / invocations if invocations else 0.0
        footer_lines.append(
            f"learned scheduler: {int(fallbacks)} DP fallbacks over "
            f"{int(invocations)} invocations "
            f"({100 * rate:.1f}% fallback rate, threshold "
            f"{args.regret_threshold:g})"
        )
    if live is not None:
        footer_lines.extend(
            _live_footer(live, live.write_artifacts(out_dir, stem))
        )
    _stop_metrics_server(metrics_server, args.serve_hold)
    return report + "\n".join(footer_lines)


def _cmd_faults(args) -> str:
    from repro.experiments.resilience import run_resilience_sweep

    setup = build_setup(args.task, args.preset, seed=args.seed)
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    out = run_resilience_sweep(
        setup,
        failure_rates=rates,
        policy=args.policy,
        duration=args.duration,
        max_retries=args.retries,
        latency_jitter=args.jitter,
        straggler_prob=args.straggler_prob,
        task_timeout=args.timeout,
        crash_rate=args.crash_rate,
        seed=args.seed + 5,
    )
    rows = []
    for mode in ("degraded", "drop"):
        series = out["modes"][mode]
        rows.append(
            [mode]
            + [
                f"{a:.3f}/{d:.3f}"
                for a, d in zip(series["accuracy"], series["dmr"])
            ]
        )
    degraded_pct = [
        f"{100 * v:.1f}%" for v in out["modes"]["degraded"]["degraded_rate"]
    ]
    retries = [f"{int(v)}" for v in out["modes"]["degraded"]["retries"]]
    rows.append(["degraded answers"] + degraded_pct)
    rows.append(["retries"] + retries)
    if args.slo_target is not None:
        for mode in ("degraded", "drop"):
            rows.append(
                [f"slo burn ({mode})"]
                + [
                    f"{d / args.slo_target:.2f}x"
                    + (" BREACH" if d >= args.slo_target else "")
                    for d in out["modes"][mode]["dmr"]
                ]
            )
    return format_table(
        ["mode (acc/dmr)"] + [f"fail={r}" for r in out["failure_rates"]],
        rows,
        title=(
            f"resilience sweep — {args.task} / {out['policy']} "
            "(degraded-mode vs drop-on-failure)"
        ),
    )


def _cmd_explain(args) -> str:
    from repro.obs import DecisionLog, format_decision

    path = Path(args.decisions)
    if not path.exists():
        raise SystemExit(f"no decision log at {path}")
    log = DecisionLog.read_jsonl(path)
    records = log.for_query(args.query_id)
    if not records:
        raise SystemExit(
            f"query {args.query_id} has no decision records in {path} "
            f"({len(log)} records total)"
        )
    n_models = max(
        (mask.bit_length()
         for r in records
         for mask in [r.chosen_mask, *r.candidate_masks]),
        default=0,
    )
    blocks = [format_decision(r, n_models=n_models) for r in records]
    if len(blocks) > 1:
        blocks.insert(0, f"{len(blocks)} planning rounds for query "
                         f"{args.query_id} (last one stuck):")
    return "\n\n".join(blocks)


def _cmd_slo(args) -> str:
    from repro.obs import SLOConfig, read_spans_jsonl, render_slo, replay_spans

    path = Path(args.spans)
    if not path.exists():
        raise SystemExit(f"no span dump at {path}")
    window = args.slo_window
    config = SLOConfig(
        miss_target=(
            args.slo_target if args.slo_target is not None else 0.05
        ),
        windows=(window, 10.0 * window, 60.0 * window),
        alert_window=window,
        min_events=args.min_events,
    )
    spans = read_spans_jsonl(path)
    monitor = replay_spans(spans, config)
    header = (
        f"slo replay — {path} ({len(spans)} spans, "
        f"{monitor.events} resolved queries)"
    )
    return header + "\n" + render_slo(monitor)


def _cmd_profile(args) -> str:
    from repro.obs import (
        LatencyAttributor,
        render_profile,
        write_profile_json,
    )

    if args.spans is not None:
        spans_path = Path(args.spans)
        if not spans_path.exists():
            raise SystemExit(f"no span dump at {spans_path}")
        attributor = LatencyAttributor.from_jsonl(spans_path)
        stem = spans_path.name
        for suffix in ("_spans.jsonl", ".jsonl"):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
                break
        artifact_path = spans_path.parent / f"{stem}_profile.json"
        written = [artifact_path]
    else:
        from repro.experiments.runner import RunSpec, run_spec
        from repro.obs import RecordingTracer, write_spans_jsonl
        from repro.serving.config import ServerConfig

        setup = build_setup(args.task, args.preset, seed=args.seed)
        workers = setup.workers_for(args.policy)
        n_workers = len(workers) if workers is not None else setup.n_models
        plan = _fault_plan(args, n_workers=n_workers, duration=args.duration)
        spec = RunSpec(
            policy=args.policy,
            config=ServerConfig(
                faults=plan,
                task_timeout=args.timeout,
                max_retries=args.retries,
            ),
            duration=args.duration,
            seed=args.seed + 5,
        )
        tracer = RecordingTracer(profile=True)
        run_spec(setup, spec, tracer=tracer)

        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        stem = f"{args.task}_{args.policy}"
        spans_path = write_spans_jsonl(
            tracer.spans, out_dir / f"{stem}_spans.jsonl"
        )
        attributor = LatencyAttributor.from_tracer(tracer)
        artifact_path = out_dir / f"{stem}_profile.json"
        written = [spans_path, artifact_path]

    write_profile_json(attributor.to_artifact(), artifact_path)
    report = render_profile(attributor, top_k=args.top)
    footer = "\n".join([""] + [f"wrote {path}" for path in written] + [
        f"diff against another run with `python -m repro diff "
        f"{artifact_path} OTHER_profile.json`",
    ])
    return report + footer


def _load_profile_artifact(path: Path):
    """A profile artifact from either an artifact JSON or a span dump."""
    from repro.obs import LatencyAttributor, read_profile_json

    if not path.exists():
        raise SystemExit(f"no profile artifact or span dump at {path}")
    try:
        return read_profile_json(path)
    except ValueError:
        # Not an artifact — attribute the span stream on the fly.
        return LatencyAttributor.from_jsonl(path).to_artifact()


def _cmd_diff(args):
    from repro.obs import diff_profiles

    base = _load_profile_artifact(Path(args.base))
    new = _load_profile_artifact(Path(args.new))
    diff = diff_profiles(
        base, new,
        sim_rel=args.sim_rel,
        wall_ratio=args.wall_ratio,
        wall_floor=args.wall_floor,
    )
    header = f"profile diff — base={args.base}  new={args.new}"
    return header + "\n" + diff.render(), 0 if diff.ok else 1


def _cmd_fleet(args) -> str:
    from repro.experiments.fleet import run_fleet_comparison
    from repro.experiments.runner import (
        RunSpec,
        make_workload,
        resolve_policy,
        run_spec,
    )
    from repro.experiments.trace_segments import make_day_trace
    from repro.fleet import FleetConfig
    from repro.serving.config import ServerConfig

    setup = build_setup(args.task, args.preset, seed=args.seed)
    trace = make_day_trace(setup, duration=args.duration, seed=args.seed + 5)
    workload = make_workload(
        setup, trace,
        deadline=min(setup.deadline_grid),
        seed=args.seed + 6,
    )
    sched_spec = RunSpec(
        policy=args.policy,
        scheduler=args.scheduler,
        policy_model=args.policy_model,
        regret_threshold=args.regret_threshold,
    )
    comparison = run_fleet_comparison(
        setup.latencies,
        resolve_policy(setup, sched_spec),
        workload,
        setup.quality,
        n_shards=args.shards,
        queue_limit=args.queue_limit,
        workers=setup.workers_for(args.policy),
        seed=args.seed,
    )
    rows = [
        [
            name,
            f"{row['accuracy']:.3f}",
            f"{row['dmr']:.3f}",
            f"{1e3 * row['p99']:.1f}" if row["p99"] == row["p99"] else "-",
            f"{100 * row['shed_rate']:.1f}%",
            f"{int(row['scheduler_invocations'])}",
        ]
        for name, row in comparison.items()
    ]
    table = format_table(
        ["serving", "accuracy", "DMR", "p99 ms", "shed", "sched calls"],
        rows,
        title=(
            f"fleet comparison — {args.task} / {args.policy} "
            f"({args.shards} shards vs 1x{args.shards} capacity)"
        ),
    )
    if args.out is None:
        return table

    from repro.obs import RecordingTracer, write_prometheus, write_spans_jsonl

    spec = sched_spec.replace(
        config=FleetConfig.uniform(
            args.shards,
            ServerConfig(),
            router=args.router,
            queue_limit=args.queue_limit,
            seed=args.seed,
        ),
        duration=args.duration,
        seed=args.seed + 5,
    )
    tracer = RecordingTracer(slo=_slo_monitor(args))
    result = run_spec(setup, spec, trace=trace, tracer=tracer)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{args.task}_fleet_{args.router}"
    written = [
        write_spans_jsonl(tracer.spans, out_dir / f"{stem}_spans.jsonl"),
        write_prometheus(tracer.metrics, out_dir / f"{stem}_metrics.prom"),
    ]
    for shard, spans in enumerate(result.shard_spans):
        written.append(write_spans_jsonl(
            spans, out_dir / f"{stem}_shard{shard}_spans.jsonl"
        ))
    footer = "\n".join(
        ["", f"traced {args.router}: shed {result.n_shed} of "
             f"{len(result.assignments)} queries"]
        + [f"wrote {path}" for path in written]
        + [f"inspect with `python -m repro profile --spans "
           f"{written[0]}` or `python -m repro slo --spans {written[0]}`"]
    )
    return table + footer


def _cmd_control(args) -> str:
    from repro.experiments.control import (
        default_control_config,
        run_control_comparison,
    )
    from repro.experiments.runner import RunSpec, make_workload, resolve_policy
    from repro.experiments.trace_segments import make_day_trace
    from repro.obs import RecordingTracer, write_prometheus, write_spans_jsonl

    setup = build_setup(args.task, args.preset, seed=args.seed)
    trace = make_day_trace(setup, duration=args.duration, seed=args.seed + 5)
    workload = make_workload(
        setup, trace,
        deadline=min(setup.deadline_grid),
        seed=args.seed + 6,
    )
    serving_policy = resolve_policy(setup, RunSpec(
        policy=args.policy,
        scheduler=args.scheduler,
        policy_model=args.policy_model,
        regret_threshold=args.regret_threshold,
    ))
    control = default_control_config(
        interval=args.interval,
        warmup=args.warmup,
        max_extra_replicas=args.max_extra,
        seed=args.seed,
    )
    live = _live_plane(args, source="fleet")
    tracer = (
        RecordingTracer(live=live)
        if args.out is not None or live is not None
        else None
    )
    metrics_server = _start_metrics_server(args, tracer)
    rows_by_name, controlled = run_control_comparison(
        setup.latencies,
        serving_policy,
        workload,
        setup.quality,
        n_shards=args.shards,
        queue_limit=args.queue_limit,
        router=args.router,
        control=control,
        workers=setup.workers_for(args.policy),
        seed=args.seed,
        tracer=tracer,
    )
    rows = [
        [
            name,
            f"{row['accuracy']:.3f}",
            f"{row['dmr']:.3f}",
            f"{1e3 * row['p99']:.1f}" if row["p99"] == row["p99"] else "-",
            f"{100 * row['shed_rate']:.1f}%",
            f"{100 * row['degraded_rate']:.1f}%",
        ]
        for name, row in rows_by_name.items()
    ]
    counts = controlled.control_log.counts()
    actions = ", ".join(
        f"{kind} x{count}" for kind, count in sorted(counts.items())
    ) or "none"
    episodes = controlled.monitor.episodes
    table = format_table(
        ["serving", "accuracy", "DMR", "p99 ms", "shed", "degraded"],
        rows,
        title=(
            f"control loop — {args.task} / {args.policy} "
            f"({args.shards} shards, interval {args.interval:g}s)"
        ),
    )
    footer_lines = [
        "",
        f"controller actions: {actions}",
        f"overload episodes: {len(episodes)}",
    ]
    if args.out is None:
        if live is not None:
            footer_lines.extend(_live_footer(live, []))
        _stop_metrics_server(metrics_server, args.serve_hold)
        return table + "\n".join(footer_lines)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{args.task}_control"
    log_path = out_dir / f"{stem}_log.jsonl"
    log_text = controlled.control_log.dumps()
    log_path.write_text(log_text + "\n" if log_text else "")
    written = [
        write_spans_jsonl(tracer.spans, out_dir / f"{stem}_spans.jsonl"),
        write_prometheus(tracer.metrics, out_dir / f"{stem}_metrics.prom"),
        log_path,
    ]
    footer_lines += [f"wrote {path}" for path in written]
    footer_lines.append(
        f"inspect with `python -m repro slo --spans {written[0]}`"
    )
    if live is not None:
        footer_lines.extend(
            _live_footer(live, live.write_artifacts(out_dir, stem))
        )
    _stop_metrics_server(metrics_server, args.serve_hold)
    return table + "\n".join(footer_lines)


def _cmd_distill(args) -> str:
    from repro.obs import DecisionLog
    from repro.scheduling.distill import distill_policy

    setup = build_setup(args.task, args.preset, seed=args.seed)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    if args.decisions is not None:
        path = Path(args.decisions)
        if not path.exists():
            raise SystemExit(f"no decision log at {path}")
        log = DecisionLog.read_jsonl(path)
    else:
        # Replay a DP-scheduled run to generate the oracle decisions;
        # same seed offset as `trace`, so the log matches what
        # `python -m repro trace --scheduler dp` would have written.
        from repro.experiments.runner import RunSpec, run_spec

        spec = RunSpec(
            policy=args.policy,
            duration=args.duration,
            seed=args.seed + 5,
            scheduler="dp",
        )
        log = DecisionLog()
        run_spec(setup, spec, explain=log)
        decisions_path = out_dir / (
            f"{args.task}_{args.policy}_decisions.jsonl"
        )
        log.write_jsonl(decisions_path)
        written.append(decisions_path)

    policy_model = distill_policy(
        log,
        setup.latencies,
        setup.schemble.utilities,
        model=args.model,
        val_fraction=args.val_fraction,
        seed=args.seed,
    )
    artifact_path = out_dir / f"policy_{args.task}.json"
    policy_model.save(artifact_path)
    written.append(artifact_path)

    meta = policy_model.metadata
    rows = [
        ["kind", meta["chosen"]],
        ["training rounds / rows", f"{meta['rounds']} / {meta['rows']}"],
        ["val rounds / rows",
         f"{meta['val_rounds']} / {meta['val_rows']}"],
    ]
    for kind, acc in meta["val_accuracy"].items():
        rows.append([f"val exact-mask acc ({kind})", f"{acc:.4f}"])
    rows += [
        ["mean regret (train)", f"{meta['mean_regret']:.4f}"],
        ["max regret (train)", f"{meta['max_regret']:.4f}"],
        ["regret estimator MAE", f"{meta['regret_mae']:.4f}"],
    ]
    table = format_table(
        ["", ""],
        rows,
        title=f"distilled policy — {args.task} / {args.policy}",
    )
    footer = "\n".join(
        [""]
        + [f"wrote {path}" for path in written]
        + [
            f"serve with `python -m repro trace --task {args.task} "
            f"--scheduler learned --policy-model {artifact_path}`",
        ]
    )
    return table + footer


def _cmd_top(args) -> str:
    import threading

    from repro.experiments.runner import RunSpec, run_spec
    from repro.obs import (
        LiveConfig,
        LiveTelemetry,
        RecordingTracer,
        render_top,
    )

    setup = build_setup(args.task, args.preset, seed=args.seed)
    live_config = LiveConfig(cadence=args.cadence)
    fleet = None
    if args.mode == "trace":
        live = LiveTelemetry(live_config)
        tracer = RecordingTracer(live=live)
        spec = RunSpec(
            policy=args.policy, duration=args.duration, seed=args.seed + 5
        )

        def runner():
            return run_spec(setup, spec, tracer=tracer)

    else:
        from repro.experiments.runner import make_workload, resolve_policy
        from repro.experiments.trace_segments import make_day_trace
        from repro.fleet import FleetConfig, FleetServer
        from repro.serving.config import ServerConfig

        trace = make_day_trace(
            setup, duration=args.duration, seed=args.seed + 5
        )
        workload = make_workload(
            setup, trace,
            deadline=min(setup.deadline_grid),
            seed=args.seed + 6,
        )
        control = None
        if args.mode == "control":
            from repro.experiments.control import default_control_config

            control = default_control_config(
                interval=args.interval, seed=args.seed
            )
        config = FleetConfig.uniform(
            args.shards,
            ServerConfig(),
            router=args.router,
            queue_limit=args.queue_limit,
            seed=args.seed,
            control=control,
        )
        live = LiveTelemetry(live_config, source="fleet")
        tracer = RecordingTracer(live=live)
        fleet = FleetServer(
            setup.latencies,
            resolve_policy(setup, RunSpec(policy=args.policy)),
            config,
            workers=setup.workers_for(args.policy),
            tracer=tracer,
        )

        def runner():
            return fleet.run(workload)

    def current_lives():
        """The planes to show: the run's own plus any shard planes."""
        if fleet is not None and fleet.shard_lives:
            return [live] + list(fleet.shard_lives)
        return [live]

    metrics_server = _start_metrics_server(args, tracer)
    box = {}

    def work():
        try:
            box["result"] = runner()
        except BaseException as exc:  # surfaced on the main thread
            box["error"] = exc

    if args.once:
        work()
    else:
        thread = threading.Thread(target=work, daemon=True)
        thread.start()
        try:
            while thread.is_alive():
                frame = render_top(current_lives())
                # Clear screen + home, then repaint.
                print("\x1b[2J\x1b[H" + frame, flush=True)
                thread.join(max(args.refresh, 0.05))
        except KeyboardInterrupt:
            pass
    if "error" in box:
        _stop_metrics_server(metrics_server, 0.0)
        raise box["error"]

    footer_lines: List[str] = []
    if args.out is not None:
        written: List[Path] = []
        for plane in current_lives():
            written.extend(plane.write_artifacts(
                args.out, f"{args.task}_top_{plane.source}"
            ))
        footer_lines = [""] + [f"wrote {path}" for path in written]
    _stop_metrics_server(metrics_server, args.serve_hold)
    return render_top(current_lives()) + "\n".join(footer_lines)


def _cmd_incident(args) -> str:
    from repro.obs import (
        DecisionRecord,
        LatencyAttributor,
        Span,
        format_decision,
        read_incident_json,
        render_incident,
        render_profile,
    )

    path = Path(args.bundle)
    if not path.exists():
        raise SystemExit(f"no incident bundle at {path}")
    try:
        bundle = read_incident_json(path)
    except ValueError as exc:
        raise SystemExit(str(exc))

    spans = []
    for payload in bundle.get("spans", []):
        payload = dict(payload)
        kind = payload.pop("kind")
        time = float(payload.pop("time"))
        query_id = int(payload.pop("query_id", -1))
        spans.append(Span(kind, time, query_id, payload))
    attributor = LatencyAttributor()
    attributor.attribute(spans)

    parts = [
        f"incident post-mortem — {path}",
        render_incident(bundle),
        "profile re-derived from the bundle's flight-recorder window:",
        render_profile(attributor, top_k=args.top),
    ]
    if args.explain and bundle.get("decisions"):
        for qid in sorted(bundle["decisions"], key=int):
            for state in bundle["decisions"][qid]:
                parts.append(format_decision(DecisionRecord.from_dict(state)))
    return "\n\n".join(parts)


def _cmd_budget(args) -> str:
    setup = build_setup(args.task, args.preset, seed=args.seed)
    out = run_offline_budget(setup, seed=args.seed + 5)
    rows = [
        [name] + [f"{v:.3f}" for v in series]
        for name, series in out["methods"].items()
    ]
    return format_table(
        ["method"] + [f"{1e3*b:.0f}ms" for b in out["budgets"]],
        rows,
        title=f"offline budgets — {args.task}",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": lambda: _cmd_list(),
        "table1": lambda: _cmd_table1(args),
        "sweep": lambda: _cmd_sweep(args),
        "day": lambda: _cmd_day(args),
        "schedulers": lambda: _cmd_schedulers(args),
        "budget": lambda: _cmd_budget(args),
        "trace": lambda: _cmd_trace(args),
        "faults": lambda: _cmd_faults(args),
        "explain": lambda: _cmd_explain(args),
        "slo": lambda: _cmd_slo(args),
        "profile": lambda: _cmd_profile(args),
        "diff": lambda: _cmd_diff(args),
        "fleet": lambda: _cmd_fleet(args),
        "control": lambda: _cmd_control(args),
        "distill": lambda: _cmd_distill(args),
        "top": lambda: _cmd_top(args),
        "incident": lambda: _cmd_incident(args),
    }
    out = handlers[args.command]()
    # Handlers return either text or (text, exit_code) — `diff` uses
    # the exit code as its CI regression gate.
    if isinstance(out, tuple):
        text, code = out
    else:
        text, code = out, 0
    print(text)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
