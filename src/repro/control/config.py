"""Control-plane configuration: a frozen, validated bundle of knobs.

``ControlConfig`` follows the PR-2/PR-7 construction pattern one more
level up: frozen dataclass, all validation in ``__post_init__``,
copy-on-write via :meth:`ControlConfig.replace`. It rides on
:class:`~repro.fleet.config.FleetConfig` (``control=``) and therefore
threads through :class:`~repro.experiments.runner.RunSpec` and the
CLI (``python -m repro control``) without any new plumbing::

    fleet = FleetConfig.uniform(4, ServerConfig(),
                                control=ControlConfig(warmup=2.0))
    result = FleetServer.from_config(latencies, policy, fleet).run(wl)
    result.control_log.dumps()   # byte-identical across same-seed runs

The knobs split into three actuation groups the controller drives off
the live :class:`~repro.obs.slo.SLOMonitor` signal:

* **capacity** — ``warmup``/``max_extra_replicas``/``scale_up_burn``/
  ``scale_down_burn``/``cooldown``: replica sets added (serving after
  ``warmup`` seconds) while the alert-window burn rate is at or above
  ``scale_up_burn``, retired once it falls to ``scale_down_burn``;
* **admission** — ``tighten_factor``/``min_queue_limit``: the fleet
  ``queue_limit`` is multiplied by ``tighten_factor`` while a breach
  episode is open (shedding earlier protects served latency);
* **quality** — ``degrade_on_breach``/``cheap_mask``: every dispatched
  plan is clamped to the cheap subset while an episode is open, and
  full quality is restored on ``slo_recovered``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.slo import SLOConfig
from repro.utils.validation import check_positive

__all__ = ["ControlConfig"]


@dataclass(frozen=True)
class ControlConfig:
    """Every knob of the SLO-driven control loop.

    Attributes:
        interval: Controller decision period in simulated seconds; the
            fleet admits/advances in epochs of this length and the
            controller ticks once per epoch boundary.
        warmup: Provisioning latency: a replica set added at ``t``
            starts serving at ``t + warmup`` (its workers exist but
            are busy "warming" until then).
        max_extra_replicas: Fleet-wide cap on extra replica sets the
            controller may hold at once (0 disables scaling).
        scale_up_burn: Alert-window burn rate at or above which the
            controller adds capacity (subject to ``cooldown`` and the
            detector's ``min_events`` evidence guard).
        scale_down_burn: Burn rate at or below which — outside a breach
            episode — the newest replica set is retired.
        cooldown: Minimum simulated seconds between scaling actions,
            so warming capacity gets a chance to land before the
            controller piles on more.
        degrade_on_breach: Flip the fleet into cheap-subset mode while
            a breach episode is open (restored on recovery).
        cheap_mask: Ensemble subset (bitmask over base models) plans
            are clamped to in degraded mode; ``None`` means the single
            fastest model.
        tighten_factor: Multiplier applied to the fleet ``queue_limit``
            while an episode is open (1.0 disables admission
            tightening).
        min_queue_limit: Floor under the tightened queue limit.
        slo: The :class:`~repro.obs.slo.SLOConfig` the control plane's
            monitor runs with (alert window, burn thresholds,
            hysteresis).
        seed: Seeds the deterministic shard rotation scale-ups target;
            a fixed (trace, seed) pair replays to a byte-identical
            action log.
    """

    interval: float = 1.0
    warmup: float = 2.0
    max_extra_replicas: int = 4
    scale_up_burn: float = 1.0
    scale_down_burn: float = 0.25
    cooldown: float = 10.0
    degrade_on_breach: bool = True
    cheap_mask: Optional[int] = None
    tighten_factor: float = 0.5
    min_queue_limit: int = 1
    slo: SLOConfig = field(default_factory=SLOConfig)
    seed: int = 0

    def __post_init__(self):
        check_positive("interval", self.interval)
        if self.warmup < 0.0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.max_extra_replicas < 0:
            raise ValueError(
                f"max_extra_replicas must be >= 0, got "
                f"{self.max_extra_replicas}"
            )
        check_positive("scale_up_burn", self.scale_up_burn)
        if self.scale_down_burn < 0.0:
            raise ValueError(
                f"scale_down_burn must be >= 0, got {self.scale_down_burn}"
            )
        if self.scale_down_burn > self.scale_up_burn:
            raise ValueError(
                "scale_down_burn must be <= scale_up_burn (hysteresis)"
            )
        if self.cooldown < 0.0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.cheap_mask is not None and self.cheap_mask < 1:
            raise ValueError(
                f"cheap_mask must be a non-empty model bitmask, got "
                f"{self.cheap_mask}"
            )
        if not 0.0 < self.tighten_factor <= 1.0:
            raise ValueError(
                f"tighten_factor must be in (0, 1], got "
                f"{self.tighten_factor}"
            )
        if self.min_queue_limit < 1:
            raise ValueError(
                f"min_queue_limit must be >= 1, got {self.min_queue_limit}"
            )
        if not isinstance(self.slo, SLOConfig):
            raise TypeError(
                f"slo must be an SLOConfig, got {type(self.slo).__name__}"
            )

    def replace(self, **changes) -> "ControlConfig":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def tightened_limit(self, queue_limit: int) -> int:
        """The admission limit in effect while an episode is open."""
        return max(
            self.min_queue_limit, int(queue_limit * self.tighten_factor)
        )
