"""The deterministic decision core of the SLO control loop.

:class:`Controller` is a pure state machine over the live
:class:`~repro.obs.slo.SLOMonitor` signal: each :meth:`Controller.tick`
polls the monitor (closing episodes that went stale over an idle gap),
reads the alert-window burn rate, and returns the list of
:class:`ControlAction` decisions for this instant. It never touches
servers itself — the fleet applies the actions — so decisions are unit
testable and replay byte-identically: no RNG, no wall clock, and the
only ordering inputs are the seeded shard rotation and the monitor's
event-ordered state.

Two signals drive two different actuation speeds:

* the **episode** (hysteresis built into the monitor's
  breach/recover thresholds) gates the reversible, instant knobs —
  quality degradation and admission tightening flip exactly once per
  episode, so a burn rate hovering between ``recover_burn`` and
  ``breach_burn`` cannot flap them;
* the **burn rate** itself drives capacity, rate-limited by
  ``cooldown`` so warming replicas land before more are added, and
  guarded by the monitor's ``min_events`` so a near-empty window
  never triggers provisioning.

Scale-ups target shards by seeded rotation; scale-downs retire in
LIFO order, so capacity unwinds exactly as it was built.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.control.config import ControlConfig
from repro.obs import spans as sp
from repro.obs.slo import SLOMonitor

__all__ = ["ControlAction", "ControlLog", "Controller"]


@dataclass(frozen=True)
class ControlAction:
    """One controller decision.

    Attributes:
        time: Simulated time of the decision (an epoch boundary).
        kind: One of the control span kinds (``scale_up`` /
            ``scale_down`` / ``degrade`` / ``restore`` /
            ``admission_change``).
        shard: Target shard for scaling actions, ``-1`` for
            fleet-wide actions.
        level: Extra replica sets active after the action (scaling) or
            0 (others).
        burn: Alert-window burn rate that triggered the decision.
        queue_limit: Admission limit in effect after an
            ``admission_change``; 0 otherwise.
    """

    time: float
    kind: str
    shard: int = -1
    level: int = 0
    burn: float = 0.0
    queue_limit: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind,
            "shard": self.shard,
            "level": self.level,
            "burn": self.burn,
            "queue_limit": self.queue_limit,
        }


class ControlLog:
    """Ordered record of every action a controller took in one run.

    The canonical serialization (:meth:`dumps`) is the determinism
    contract: same trace + same seed ⇒ byte-identical output (asserted
    by ``benchmarks/bench_control_loop.py``).
    """

    def __init__(self):
        self.actions: List[ControlAction] = []

    def append(self, action: ControlAction) -> None:
        self.actions.append(action)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[ControlAction]:
        return iter(self.actions)

    def counts(self) -> Dict[str, int]:
        """Actions per kind (for reports and quick assertions)."""
        out: Dict[str, int] = {}
        for action in self.actions:
            out[action.kind] = out.get(action.kind, 0) + 1
        return out

    def slice(self, start: float, end: float) -> List[Dict[str, object]]:
        """Actions with ``start <= time <= end`` as serialized dicts —
        the control-log window an incident bundle embeds."""
        return [
            action.to_dict()
            for action in self.actions
            if start <= action.time <= end
        ]

    def dumps(self) -> str:
        """Canonical JSON-lines serialization (sorted keys, repr
        floats) — byte-comparable across runs."""
        return "\n".join(
            json.dumps(action.to_dict(), sort_keys=True)
            for action in self.actions
        )


class Controller:
    """Turns monitor state into scale/degrade/admission decisions.

    Args:
        config: Frozen :class:`~repro.control.config.ControlConfig`.
        monitor: The live :class:`~repro.obs.slo.SLOMonitor` fed from
            the fleet's merged outcome stream; the controller polls it
            each tick and reads its episode list and alert window.
        n_shards: Fleet size (scale-up rotation modulus).
    """

    def __init__(
        self, config: ControlConfig, monitor: SLOMonitor, n_shards: int
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.config = config
        self.monitor = monitor
        self.n_shards = n_shards
        self.log = ControlLog()
        self.degraded = False
        self.tightened = False
        self._rotation = config.seed % n_shards
        self._extra: List[int] = []  # shards holding extra sets (LIFO)
        self._last_scale: Optional[float] = None

    @property
    def level(self) -> int:
        """Extra replica sets currently active."""
        return len(self._extra)

    @property
    def settled(self) -> bool:
        """True when every actuation has been unwound (full quality,
        baseline capacity, default admission) — the fleet drain loop
        runs extra epochs until the controller settles or times out."""
        return not (self.degraded or self.tightened or self._extra)

    def tick(self, now: float) -> List[ControlAction]:
        """One decision round at epoch boundary ``now``."""
        config = self.config
        monitor = self.monitor
        monitor.poll(now)
        burn = monitor.alert_burn(now)
        episode = monitor.episodes[-1] if monitor.episodes else None
        breached = episode is not None and episode.open
        actions: List[ControlAction] = []

        # Episode-gated knobs: exactly one flip per episode edge.
        if breached:
            if config.degrade_on_breach and not self.degraded:
                self.degraded = True
                actions.append(
                    ControlAction(now, sp.DEGRADE_MODE, burn=burn)
                )
            if config.tighten_factor < 1.0 and not self.tightened:
                self.tightened = True
                actions.append(ControlAction(
                    now, sp.ADMISSION_CHANGE, burn=burn, queue_limit=-1,
                ))
        else:
            if self.degraded:
                self.degraded = False
                actions.append(ControlAction(now, sp.RESTORE, burn=burn))
            if self.tightened:
                self.tightened = False
                actions.append(ControlAction(
                    now, sp.ADMISSION_CHANGE, burn=burn, queue_limit=0,
                ))

        # Burn-driven capacity, cooldown-limited. Scale-ups need the
        # detector's evidence floor (a near-empty window proves
        # nothing); scale-downs don't (an empty window after a drain
        # is exactly when capacity should unwind).
        cooled = (
            self._last_scale is None
            or now - self._last_scale >= config.cooldown
        )
        if (
            cooled
            and burn >= config.scale_up_burn
            and len(self._extra) < config.max_extra_replicas
            and monitor.alert_events(now) >= monitor.config.min_events
        ):
            shard = self._rotation % self.n_shards
            self._rotation += 1
            self._extra.append(shard)
            self._last_scale = now
            actions.append(ControlAction(
                now, sp.SCALE_UP, shard=shard,
                level=len(self._extra), burn=burn,
            ))
        elif (
            cooled
            and not breached
            and burn <= config.scale_down_burn
            and self._extra
        ):
            shard = self._extra.pop()
            self._last_scale = now
            actions.append(ControlAction(
                now, sp.SCALE_DOWN, shard=shard,
                level=len(self._extra), burn=burn,
            ))

        for action in actions:
            self.log.append(action)
        return actions
