"""SLO-driven control plane: close the loop from signal to actuation.

PR 4 gave the repo an online :class:`~repro.obs.slo.SLOMonitor`
(burn-rate windows + hysteresis overload episodes); PR 7 gave it a
multi-shard fleet. This package makes the fleet *act* on the signal,
mid-run: scale replica sets up/down with warm-up latency, tighten and
relax admission, and trade ensemble quality for capacity during a
breach episode — all seeded-deterministic, so a fixed (trace, seed)
replays to a byte-identical action log.

    signal      SLOMonitor burn rates / breach episodes
      |          (fed from the fleet's merged outcome stream)
    decision    Controller.tick() -> [ControlAction]
      |          (pure state machine: hysteresis + cooldowns)
    actuation   FleetServer applies each action:
                  scale_up/scale_down -> EnsembleServer replica hooks
                  degrade/restore     -> cheap-subset plan clamping
                  admission_change    -> fleet queue_limit

Enable it by putting a :class:`ControlConfig` on the fleet::

    FleetConfig.uniform(4, ServerConfig(), control=ControlConfig())
"""

from repro.control.config import ControlConfig
from repro.control.controller import ControlAction, Controller, ControlLog

__all__ = ["ControlConfig", "ControlAction", "Controller", "ControlLog"]
