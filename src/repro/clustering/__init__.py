"""Clustering substrate (k-means) used by dynamic ensemble selection.

Renamed from ``repro.cluster`` so the serving-fleet namespace
(:mod:`repro.fleet`) is unambiguous: this package is the DES
clustering substrate, not a serving cluster. ``repro.cluster`` still
works as a deprecation shim re-exporting :class:`KMeans`.
"""

from repro.clustering.kmeans import KMeans

__all__ = ["KMeans"]
