"""Lloyd's k-means with k-means++ initialisation.

DES algorithms (Section III-B of the paper) partition the input space
into regions and estimate per-region model competences; this is the
clustering step of that pipeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_rng


class KMeans:
    """k-means clustering with deterministic seeding."""

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: SeedLike = None,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self._rng = as_rng(seed)
        self.centers_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: int = 0

    def _init_centers(self, x: np.ndarray) -> np.ndarray:
        """k-means++ seeding: spread initial centers proportionally to
        squared distance from the chosen set."""
        n = x.shape[0]
        centers = np.empty((self.n_clusters, x.shape[1]))
        first = self._rng.integers(n)
        centers[0] = x[first]
        closest_sq = ((x - centers[0]) ** 2).sum(axis=1)
        for k in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                centers[k:] = x[self._rng.integers(n, size=self.n_clusters - k)]
                break
            probs = closest_sq / total
            pick = self._rng.choice(n, p=probs)
            centers[k] = x[pick]
            closest_sq = np.minimum(
                closest_sq, ((x - centers[k]) ** 2).sum(axis=1)
            )
        return centers

    def fit(self, x: np.ndarray) -> "KMeans":
        """Run Lloyd iterations until the centers move less than tol."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-d, got shape {x.shape}")
        if x.shape[0] < self.n_clusters:
            raise ValueError(
                f"need at least {self.n_clusters} samples, got {x.shape[0]}"
            )
        centers = self._init_centers(x)
        for iteration in range(self.max_iter):
            labels = self._assign(x, centers)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = x[labels == k]
                if members.shape[0]:
                    new_centers[k] = members.mean(axis=0)
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            self.n_iter_ = iteration + 1
            if shift < self.tol:
                break
        self.centers_ = centers
        labels = self._assign(x, centers)
        self.inertia_ = float(
            ((x - centers[labels]) ** 2).sum()
        )
        return self

    @staticmethod
    def _assign(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(distances, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Nearest-center assignment for new points."""
        if self.centers_ is None:
            raise RuntimeError("predict called before fit")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        return self._assign(x, self.centers_)
