"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def he_init(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """He-normal initialisation, suited to ReLU-family activations."""
    rng = as_rng(rng)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def xavier_init(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Xavier/Glorot-uniform initialisation, suited to tanh/sigmoid."""
    rng = as_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))
