"""Stateless activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import sigmoid
from repro.nn.layers import Layer


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self):
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if training:
            self._input = x
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output * (self._input > 0.0)


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if training:
            self._input = x
        return np.where(x > 0.0, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward(training=True)")
        slope = np.where(self._input > 0.0, 1.0, self.negative_slope)
        return grad_output * slope


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self):
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(np.asarray(x, dtype=float))
        if training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Layer):
    """Logistic sigmoid."""

    def __init__(self):
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = sigmoid(x)
        if training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output * self._output * (1.0 - self._output)


class Identity(Layer):
    """Pass-through layer (useful as a configurable head activation)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
