"""A compact, from-scratch neural-network library on numpy.

This is the substrate standing in for PyTorch/TensorFlow in the paper's
pipeline: base models, the discrepancy-score predictor (Section V-C) and
the gating baseline are all built from these pieces.

The design is deliberately small and explicit: layers implement
``forward``/``backward`` with cached activations, losses pair a scalar
forward with the gradient w.r.t. the network output, and optimizers
update ``Parameter`` objects in place.
"""

from repro.nn.initializers import he_init, xavier_init
from repro.nn.layers import Dense, Dropout, Layer, Parameter
from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.losses import (
    Loss,
    MeanSquaredError,
    SigmoidBinaryCrossEntropy,
    SoftmaxCrossEntropy,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.network import Sequential
from repro.nn.models import MLPClassifier, MLPRegressor, MultiHeadMLP
from repro.nn.functional import log_softmax, one_hot, sigmoid, softmax

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "SigmoidBinaryCrossEntropy",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "MLPClassifier",
    "MLPRegressor",
    "MultiHeadMLP",
    "softmax",
    "log_softmax",
    "sigmoid",
    "one_hot",
    "he_init",
    "xavier_init",
]
