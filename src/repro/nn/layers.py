"""Trainable layers with explicit forward/backward passes."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.initializers import he_init, xavier_init
from repro.utils.rng import SeedLike, as_rng


class Parameter:
    """A trainable tensor plus its accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def size(self) -> int:
        return int(self.value.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for all layers.

    Subclasses cache whatever they need in ``forward`` and consume the
    cache in ``backward``. ``backward`` must return the gradient with
    respect to the layer input.
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        init: str = "he",
        rng: SeedLike = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"Dense dimensions must be positive, got "
                f"({in_features}, {out_features})"
            )
        if init == "he":
            weight = he_init(in_features, out_features, rng)
        elif init == "xavier":
            weight = xavier_init(in_features, out_features, rng)
        else:
            raise ValueError(f"unknown init scheme {init!r}")
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias")
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"Dense expects 2-d input, got shape {x.shape}")
        if x.shape[1] != self.weight.value.shape[0]:
            raise ValueError(
                f"Dense expects input width {self.weight.value.shape[0]}, "
                f"got {x.shape[1]}"
            )
        if training:
            self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward(training=True)")
        self.weight.grad += self._input.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: SeedLike = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = as_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return np.asarray(x, dtype=float)
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
