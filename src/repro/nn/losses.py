"""Loss functions pairing a scalar forward pass with its gradient."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import log_softmax, one_hot, sigmoid, softmax


class Loss:
    """Base class: ``forward`` returns the mean loss, ``backward`` the
    gradient with respect to the network output passed to ``forward``."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)


class SoftmaxCrossEntropy(Loss):
    """Cross entropy over logits with a fused softmax for stability.

    ``target`` may be integer class labels or a (soft) probability matrix;
    soft targets are what Section V-C needs, where the ensemble's output
    distribution plays the role of the label.
    """

    def __init__(self):
        self._probs: Optional[np.ndarray] = None
        self._target: Optional[np.ndarray] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        logits = np.asarray(prediction, dtype=float)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-d, got shape {logits.shape}")
        target = np.asarray(target)
        if target.ndim == 1:
            target = one_hot(target, logits.shape[1])
        if target.shape != logits.shape:
            raise ValueError(
                f"target shape {target.shape} does not match logits "
                f"shape {logits.shape}"
            )
        self._probs = softmax(logits)
        self._target = target
        log_probs = log_softmax(logits)
        return float(-(target * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._target is None:
            raise RuntimeError("backward called before forward")
        return (self._probs - self._target) / self._probs.shape[0]


class MeanSquaredError(Loss):
    """Mean squared error for regression heads."""

    def __init__(self):
        self._diff: Optional[np.ndarray] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=float)
        target = np.asarray(target, dtype=float).reshape(prediction.shape)
        self._diff = prediction - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class SigmoidBinaryCrossEntropy(Loss):
    """Binary cross entropy over a single logit column."""

    def __init__(self):
        self._probs: Optional[np.ndarray] = None
        self._target: Optional[np.ndarray] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        logits = np.asarray(prediction, dtype=float)
        target = np.asarray(target, dtype=float).reshape(logits.shape)
        self._probs = sigmoid(logits)
        self._target = target
        # log(1+exp(-|z|)) formulation avoids overflow for large |logits|.
        stable = np.maximum(logits, 0.0) - logits * target
        stable += np.log1p(np.exp(-np.abs(logits)))
        return float(stable.mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._target is None:
            raise RuntimeError("backward called before forward")
        return (self._probs - self._target) / self._probs.size
