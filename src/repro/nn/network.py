"""Sequential container composing layers into a network."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.layers import Layer, Parameter


class Sequential(Layer):
    """A straight-line composition of layers.

    The container itself is a :class:`Layer`, so sequentials nest — the
    multi-head predictor uses one sequential as a shared trunk and one
    per head.
    """

    def __init__(self, layers: Iterable[Layer] = ()):
        self.layers: List[Layer] = list(layers)
        for layer in self.layers:
            if not isinstance(layer, Layer):
                raise TypeError(f"expected Layer, got {type(layer).__name__}")

    def add(self, layer: Layer) -> "Sequential":
        if not isinstance(layer, Layer):
            raise TypeError(f"expected Layer, got {type(layer).__name__}")
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def state_dict(self) -> dict:
        """Parameter values keyed by position (for ``numpy.savez``)."""
        return {
            f"param_{i}": p.value.copy()
            for i, p in enumerate(self.parameters())
        }

    def load_state_dict(self, state: dict) -> "Sequential":
        """Restore parameter values saved by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} tensors, network has {len(params)}"
            )
        for i, param in enumerate(params):
            key = f"param_{i}"
            if key not in state:
                raise KeyError(f"state is missing {key}")
            value = np.asarray(state[key], dtype=float)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"{key} has shape {value.shape}, expected "
                    f"{param.value.shape}"
                )
            param.value = value.copy()
        return self
