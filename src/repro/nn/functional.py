"""Stateless numerical functions used throughout the nn package."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as a ``(n, num_classes)`` one-hot matrix."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-dimensional, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=float)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
