"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.nn.layers import Parameter
from repro.utils.validation import check_positive


class Optimizer:
    """Base optimizer over a fixed set of parameters."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        self.parameters = list(parameters)
        self.lr = check_positive("lr", lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = check_positive(
            "weight_decay", weight_decay, allow_zero=True
        )
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.value)
                velocity = self.momentum * velocity - self.lr * grad
                self._velocity[id(param)] = velocity
                param.value += velocity
            else:
                param.value -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = check_positive("eps", eps)
        self.weight_decay = check_positive(
            "weight_decay", weight_decay, allow_zero=True
        )
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.value)
                v = np.zeros_like(param.value)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
