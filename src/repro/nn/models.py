"""High-level trainable models built on the layer substrate.

``MLPClassifier``/``MLPRegressor`` play the role of the paper's deep base
models; :class:`MultiHeadMLP` implements the two-output architecture of
Section V-C (task prediction head + discrepancy-score head trained with
the weighted loss of Eq. 2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.activations import Identity, ReLU, Tanh
from repro.nn.functional import softmax
from repro.nn.layers import Dense, Dropout, Layer
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.utils.rng import SeedLike, as_rng


def _activation(name: str) -> Layer:
    table = {"relu": ReLU, "tanh": Tanh, "identity": Identity}
    if name not in table:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(table)}")
    return table[name]()


def _build_mlp(
    in_features: int,
    hidden: Sequence[int],
    out_features: int,
    activation: str,
    dropout: float,
    rng: np.random.Generator,
) -> Sequential:
    net = Sequential()
    width = in_features
    for size in hidden:
        net.add(Dense(width, size, rng=rng))
        net.add(_activation(activation))
        if dropout:
            net.add(Dropout(dropout, rng=rng))
        width = size
    net.add(Dense(width, out_features, rng=rng))
    return net


def _iterate_minibatches(
    n: int, batch_size: int, rng: np.random.Generator
):
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


class MLPClassifier:
    """A multi-layer perceptron classifier with an sklearn-like API."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: Sequence[int] = (32,),
        activation: str = "relu",
        dropout: float = 0.0,
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 64,
        seed: SeedLike = None,
    ):
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        self.in_features = in_features
        self.num_classes = num_classes
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self._rng = as_rng(seed)
        self.network = _build_mlp(
            in_features, hidden, num_classes, activation, dropout, self._rng
        )
        self._loss = SoftmaxCrossEntropy()
        self._optimizer = Adam(self.network.parameters(), lr=lr)
        self.history: List[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train on features ``x`` and integer (or soft) labels ``y``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x and y disagree on sample count: {x.shape[0]} vs {y.shape[0]}"
            )
        for _ in range(self.epochs):
            epoch_loss = 0.0
            batches = 0
            for idx in _iterate_minibatches(x.shape[0], self.batch_size, self._rng):
                logits = self.network.forward(x[idx], training=True)
                epoch_loss += self._loss.forward(logits, y[idx])
                batches += 1
                self._optimizer.zero_grad()
                self.network.backward(self._loss.backward())
                self._optimizer.step()
            self.history.append(epoch_loss / max(batches, 1))
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw logits for ``x``."""
        return self.network.forward(np.asarray(x, dtype=float), training=False)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability matrix for ``x``."""
        return softmax(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions for ``x``."""
        return np.argmax(self.decision_function(x), axis=1)

    def num_parameters(self) -> int:
        return self.network.num_parameters()


class MLPRegressor:
    """A multi-layer perceptron regressor with an sklearn-like API."""

    def __init__(
        self,
        in_features: int,
        out_features: int = 1,
        hidden: Sequence[int] = (32,),
        activation: str = "relu",
        dropout: float = 0.0,
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 64,
        seed: SeedLike = None,
    ):
        self.in_features = in_features
        self.out_features = out_features
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self._rng = as_rng(seed)
        self.network = _build_mlp(
            in_features, hidden, out_features, activation, dropout, self._rng
        )
        self._loss = MeanSquaredError()
        self._optimizer = Adam(self.network.parameters(), lr=lr)
        self.history: List[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        """Train on features ``x`` and real targets ``y``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).reshape(x.shape[0], -1)
        if y.shape[1] != self.out_features:
            raise ValueError(
                f"y has {y.shape[1]} targets, model expects {self.out_features}"
            )
        for _ in range(self.epochs):
            epoch_loss = 0.0
            batches = 0
            for idx in _iterate_minibatches(x.shape[0], self.batch_size, self._rng):
                preds = self.network.forward(x[idx], training=True)
                epoch_loss += self._loss.forward(preds, y[idx])
                batches += 1
                self._optimizer.zero_grad()
                self.network.backward(self._loss.backward())
                self._optimizer.step()
            self.history.append(epoch_loss / max(batches, 1))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Regression outputs for ``x`` with shape ``(n, out_features)``."""
        return self.network.forward(np.asarray(x, dtype=float), training=False)

    def num_parameters(self) -> int:
        return self.network.num_parameters()


class MultiHeadMLP:
    """Shared trunk with a task head and a discrepancy head (Section V-C).

    The network is trained with the weighted loss of Eq. 2::

        Loss = l(label, output_1) + lambda * MSE(dis, output_2)

    where ``output_1`` is the task head (trained against the ensemble's
    output, which the paper treats as the label) and ``output_2`` is the
    predicted discrepancy score. Only the discrepancy head is used at
    inference time.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: Sequence[int] = (32, 32),
        head_hidden: int = 16,
        lam: float = 0.2,
        lr: float = 1e-3,
        epochs: int = 40,
        batch_size: int = 64,
        task: str = "classification",
        seed: SeedLike = None,
    ):
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        self.task = task
        self.lam = lam
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self._rng = as_rng(seed)

        self.trunk = Sequential()
        width = in_features
        for size in hidden:
            self.trunk.add(Dense(width, size, rng=self._rng))
            self.trunk.add(ReLU())
            width = size
        self._trunk_width = width

        # For regression tasks ``num_classes`` is the target dimension.
        task_out = num_classes
        self.task_head = Sequential(
            [Dense(width, head_hidden, rng=self._rng), ReLU(),
             Dense(head_hidden, task_out, rng=self._rng)]
        )
        self.disc_head = Sequential(
            [Dense(width, head_hidden, rng=self._rng), ReLU(),
             Dense(head_hidden, 1, rng=self._rng)]
        )

        self._task_loss = (
            SoftmaxCrossEntropy() if task == "classification" else MeanSquaredError()
        )
        self._disc_loss = MeanSquaredError()
        params = (
            self.trunk.parameters()
            + self.task_head.parameters()
            + self.disc_head.parameters()
        )
        self._optimizer = Adam(params, lr=lr)
        self.history: List[Dict[str, float]] = []

    def fit(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        discrepancy: np.ndarray,
    ) -> "MultiHeadMLP":
        """Train against ensemble labels and ground-truth discrepancy."""
        x = np.asarray(x, dtype=float)
        labels = np.asarray(labels)
        discrepancy = np.asarray(discrepancy, dtype=float).reshape(-1, 1)
        if not (x.shape[0] == labels.shape[0] == discrepancy.shape[0]):
            raise ValueError("x, labels and discrepancy disagree on sample count")
        for _ in range(self.epochs):
            task_total = 0.0
            disc_total = 0.0
            batches = 0
            for idx in _iterate_minibatches(x.shape[0], self.batch_size, self._rng):
                hidden = self.trunk.forward(x[idx], training=True)
                task_out = self.task_head.forward(hidden, training=True)
                disc_out = self.disc_head.forward(hidden, training=True)

                task_total += self._task_loss.forward(task_out, labels[idx])
                disc_total += self._disc_loss.forward(disc_out, discrepancy[idx])
                batches += 1

                self._optimizer.zero_grad()
                grad_hidden = self.task_head.backward(self._task_loss.backward())
                grad_hidden = grad_hidden + self.lam * self.disc_head.backward(
                    self._disc_loss.backward()
                )
                self.trunk.backward(grad_hidden)
                self._optimizer.step()
            self.history.append(
                {
                    "task_loss": task_total / max(batches, 1),
                    "disc_loss": disc_total / max(batches, 1),
                }
            )
        return self

    def predict_discrepancy(self, x: np.ndarray) -> np.ndarray:
        """Predicted discrepancy scores, clipped to be non-negative."""
        hidden = self.trunk.forward(np.asarray(x, dtype=float), training=False)
        scores = self.disc_head.forward(hidden, training=False).ravel()
        return np.maximum(scores, 0.0)

    def predict_task(self, x: np.ndarray) -> np.ndarray:
        """Task-head output (probabilities for classification)."""
        hidden = self.trunk.forward(np.asarray(x, dtype=float), training=False)
        out = self.task_head.forward(hidden, training=False)
        if self.task == "classification":
            return softmax(out)
        return out

    def num_parameters(self) -> int:
        return (
            self.trunk.num_parameters()
            + self.task_head.num_parameters()
            + self.disc_head.num_parameters()
        )
