"""Deprecated alias of :mod:`repro.clustering.kmeans` (see package docstring)."""

from repro.clustering.kmeans import KMeans

__all__ = ["KMeans"]
