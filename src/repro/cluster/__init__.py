"""Deprecated alias of :mod:`repro.clustering` (k-means substrate).

The k-means package moved to ``repro.clustering`` when the
multi-replica serving fleet (:mod:`repro.fleet`) was added, so that
"cluster" unambiguously means serving infrastructure. Importing this
shim keeps old code working but emits a :class:`DeprecationWarning`;
it will be removed in v2.0.
"""

import warnings

from repro.clustering.kmeans import KMeans

warnings.warn(
    "repro.cluster is deprecated and will be removed in v2.0; "
    "import from repro.clustering instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["KMeans"]
