"""Clustering substrate (k-means) used by dynamic ensemble selection."""

from repro.cluster.kmeans import KMeans

__all__ = ["KMeans"]
