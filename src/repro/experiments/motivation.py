"""Motivation experiments: Figs. 1a, 1b and 4.

* Fig. 1a — the original ensemble's per-hour deadline miss rate tracks
  the one-day traffic burst.
* Fig. 1b — the ensemble beats each base model on accuracy but is as
  slow as its slowest member.
* Fig. 4a — discrepancy-score distributions are heavily skewed toward 0.
* Fig. 4b — per-bin accuracy of every model combination: easy bins are
  accurate under any combination; hard bins need more models.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.runner import make_workload, run_policy
from repro.experiments.setups import TaskSetup, build_setup
from repro.experiments.trace_segments import make_day_trace, segment_metrics
from repro.scheduling.subsets import iter_masks


def fig1a_burst_dmr(
    setup: TaskSetup,
    deadline: float = 0.105,
    duration: float = 240.0,
    n_segments: int = 24,
    seed: int = 5,
) -> Dict[str, List[float]]:
    """One-day load curve + the Original pipeline's per-segment DMR."""
    trace = make_day_trace(setup, duration=duration, seed=seed)
    workload = make_workload(setup, trace, deadline=deadline, seed=seed + 1)
    result = run_policy(
        setup, setup.policies()["original"], workload, policy_name="original"
    )
    return segment_metrics(result, setup, duration, n_segments)


def fig1b_ensemble_vs_members(setup: TaskSetup) -> Dict[str, Dict[str, float]]:
    """Accuracy (vs task ground truth where available) and latency of
    the ensemble and each base model."""
    rows: Dict[str, Dict[str, float]] = {}
    full_mask = (1 << setup.n_models) - 1
    for k, model in enumerate(setup.ensemble.models):
        rows[model.name] = {
            "quality": float(setup.quality[:, 1 << k].mean()),
            "latency": model.latency,
        }
    rows["ensemble"] = {
        "quality": float(setup.quality[:, full_mask].mean()),
        "latency": setup.ensemble.total_latency(),
    }
    return rows


def redundancy_fractions(setup: TaskSetup) -> Dict[str, float]:
    """Section I's redundancy numbers: fraction of samples any single
    model gets right (vs the ensemble) and fraction needing all models."""
    n_models = setup.n_models
    solo = np.stack(
        [setup.quality[:, 1 << k] >= 0.5 for k in range(n_models)], axis=1
    )
    any_single = solo.any(axis=1)
    proper = [
        setup.quality[:, mask] >= 0.5
        for mask in iter_masks(n_models)
        if mask != (1 << n_models) - 1
    ]
    needs_all = ~np.stack(proper, axis=1).any(axis=1)
    return {
        "any_single_correct": float(any_single.mean()),
        "needs_all_models": float(needs_all.mean()),
    }


def fig4a_score_distributions(
    tasks=("text_matching", "vehicle_counting", "image_retrieval"),
    preset: str = "default",
    n_bins: int = 20,
    seed: int = 0,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Histogram of true discrepancy scores per dataset."""
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for task in tasks:
        setup = build_setup(task, preset, seed=seed)
        scores = setup.schemble.true_scores(setup.pool_table)
        counts, edges = np.histogram(scores, bins=n_bins, range=(0.0, 1.0))
        out[task] = {
            "counts": counts.astype(float) / max(scores.shape[0], 1),
            "edges": edges,
            "mean": float(scores.mean()),
            "frac_below_0.1": float((scores < 0.1).mean()),
        }
    return out


def fig4b_bin_accuracy(setup: TaskSetup, n_bins: int = 8) -> Dict[str, np.ndarray]:
    """Per-discrepancy-bin accuracy of every model combination.

    Uses the *true* discrepancy scores and the raw (unrepaired) profile,
    as the paper's offline analysis does — the serving pipeline's own
    profiler bins on predicted scores instead.
    """
    from repro.difficulty.profiling import AccuracyProfiler

    scores = setup.schemble.true_scores(setup.history_table)
    profiler = AccuracyProfiler(n_bins=n_bins).fit(
        setup.history_table,
        scores,
        setup.ensemble,
        quality=setup.history_quality,
    )
    return {
        "bin_edges": profiler.bin_edges_,
        "bin_counts": profiler.bin_counts_,
        "utilities": profiler.utility_table(),
    }
