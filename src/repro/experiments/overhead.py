"""Exp-5 / Fig. 13: computational and memory overhead of Schemble.

Three views are reported: (a) the serving-cost model's predictor
profile (latency and memory relative to the ensemble, derived from the
paper's published ratios), (b) *measured* numbers from this repo's
numpy substrate — wall-clock per-query inference time and parameter
counts of the predictor versus the base models — and (c) the
*scheduler's* real cost during a serving run, taken from the server's
own per-invocation ``perf_counter`` measurements (the observability
layer) rather than re-clocking the scheduler here.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.data.traces import poisson_trace
from repro.difficulty.predictor import predictor_profile
from repro.experiments.setups import TaskSetup


def profiled_overhead(setup: TaskSetup) -> Dict[str, float]:
    """Cost-model view: predictor profile vs ensemble profile."""
    profile = predictor_profile(setup.ensemble)
    return {
        "predictor_latency": profile.latency,
        "ensemble_latency": setup.ensemble.total_latency(),
        "latency_fraction": profile.latency / setup.ensemble.total_latency(),
        "predictor_memory": profile.memory,
        "ensemble_memory": setup.ensemble.total_memory(),
        "memory_fraction": profile.memory / setup.ensemble.total_memory(),
    }


def measured_overhead(
    setup: TaskSetup, batch: int = 256, repeats: int = 3
) -> Dict[str, float]:
    """Substrate view: measured runtime + parameter counts.

    The ratio of predictor to base-model cost is the quantity Fig. 13
    makes an argument about; on the numpy substrate it is measured the
    same way the paper measured it on the P100 — run both on the same
    batch and compare.
    """
    if not setup.schemble.use_predictor:
        raise ValueError("setup's Schemble pipeline has no predictor")
    features = setup.pool.features[:batch]

    def clock(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    predictor = setup.schemble.predictor
    predictor_time = clock(lambda: predictor.predict(features))
    member_times = {
        model.name: clock(lambda model=model: model.predict(features))
        for model in setup.ensemble.models
    }
    ensemble_time = sum(member_times.values())

    predictor_params = predictor.num_parameters()
    member_params = {
        model.name: model.predictor.num_parameters()
        if hasattr(model.predictor, "num_parameters")
        else 0
        for model in setup.ensemble.models
    }
    total_params = sum(member_params.values())
    return {
        "predictor_time": predictor_time,
        "ensemble_time": ensemble_time,
        "time_fraction": predictor_time / max(ensemble_time, 1e-12),
        "predictor_params": float(predictor_params),
        "ensemble_params": float(total_params),
        "param_fraction": predictor_params / max(total_params, 1),
    }


def serving_scheduler_overhead(
    setup: TaskSetup,
    duration: float = 20.0,
    deadline: Optional[float] = None,
    rate: Optional[float] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """Real scheduler cost observed during a traced serving run.

    Serves a Poisson workload with the Schemble policy under a
    :class:`~repro.obs.tracer.RecordingTracer` and reports the
    scheduler-invocation wall-clock statistics the server measured
    itself (``ServingResult.scheduler_wall_time`` plus the
    per-invocation histogram from the metrics registry) — the
    measurement Exp-5's overhead argument is about, with no separate
    re-clocking pass.
    """
    from repro.experiments.runner import make_workload, run_policy
    from repro.obs.tracer import RecordingTracer

    if deadline is None:
        deadline = min(setup.deadline_grid)
    if rate is None:
        rate = setup.overload_rate
    trace = poisson_trace(rate, duration, seed=seed)
    workload = make_workload(setup, trace, deadline=deadline, seed=seed + 1)
    tracer = RecordingTracer(keep_spans=False)
    result = run_policy(
        setup,
        setup.policies()["schemble"],
        workload,
        policy_name="schemble",
        tracer=tracer,
    )
    wall = tracer.metrics.histogram("scheduler.wall_s").summary()
    return {
        "queries": float(len(result)),
        "invocations": float(result.scheduler_invocations),
        "work_units": float(result.scheduler_work_units),
        "wall_total_s": result.scheduler_wall_time,
        "wall_mean_s": wall["mean"],
        "wall_p95_s": wall["p95"],
        "wall_max_s": wall["max"],
        "wall_per_query_s": result.scheduler_wall_time / max(len(result), 1),
        "sim_overhead_total_s": tracer.metrics.histogram(
            "scheduler.overhead_sim_s"
        ).total,
    }
