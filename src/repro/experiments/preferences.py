"""Fig. 5: model-preference variance versus discrepancy stability.

Six architectures are trained with two random seeds each on the
CIFAR-like task. A model's *preference* is the vector of its distances
to the ensemble output over the test set. The paper's finding: the
correlation of preferences across architectures — and even across seeds
of the *same* architecture — is weak, while the discrepancy score
computed from independently seeded ensembles correlates strongly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.data.cifar_like import make_cifar_like
from repro.difficulty.discrepancy import DiscrepancyScorer
from repro.difficulty.divergence import js_divergence
from repro.models.prediction_table import PredictionTable
from repro.models.zoo import CIFAR_ARCHITECTURES, build_cifar_like_models


def preference_vectors(
    table: PredictionTable,
) -> Dict[str, np.ndarray]:
    """Per-model distance-to-ensemble vectors over the pool."""
    return {
        name: js_divergence(table.outputs[name], table.ensemble_output)
        for name in table.model_names
    }


def preference_study(
    n_samples: int = 1200,
    seeds: Tuple[int, int] = (0, 1),
    epochs: int = 10,
    architectures=CIFAR_ARCHITECTURES,
) -> Dict:
    """Train every architecture under two seeds; correlation structure.

    Returns:
        ``archs``: architecture names;
        ``cross_arch``: mean correlation between preferences of
        *different* architectures (same seed);
        ``same_arch``: per-architecture correlation across seeds (the
        diagonal of Fig. 5);
        ``discrepancy``: correlation of the two ensembles' discrepancy
        scores (Fig. 5's Dis diagonal);
        ``matrix``: the full (arch+Dis) x (arch+Dis) correlation matrix,
        entry [i][j] = corr(preference of arch i under seed A, arch j
        under seed B).
    """
    data = make_cifar_like(n_samples=n_samples, seed=42)
    train, test = data.split([0.6, 0.4], seed=43)

    tables: List[PredictionTable] = []
    scores: List[np.ndarray] = []
    for seed in seeds:
        ensemble = build_cifar_like_models(
            train, architectures=architectures, epochs=epochs, seed=seed
        )
        table = PredictionTable.from_models(
            ensemble.models, test.features, ensemble
        )
        tables.append(table)
        member = [table.outputs[n] for n in table.model_names]
        scorer = DiscrepancyScorer(task="classification")
        scores.append(scorer.fit_score(member, table.ensemble_output))

    prefs_a = preference_vectors(tables[0])
    prefs_b = preference_vectors(tables[1])
    names = tables[0].model_names

    size = len(names) + 1
    matrix = np.zeros((size, size))
    for i, name_i in enumerate(names):
        for j, name_j in enumerate(names):
            matrix[i, j] = np.corrcoef(prefs_a[name_i], prefs_b[name_j])[0, 1]
    for i, name_i in enumerate(names):
        matrix[i, -1] = np.corrcoef(prefs_a[name_i], scores[1])[0, 1]
        matrix[-1, i] = np.corrcoef(scores[0], prefs_b[name_i])[0, 1]
    matrix[-1, -1] = np.corrcoef(scores[0], scores[1])[0, 1]

    same_arch = {name: float(matrix[i, i]) for i, name in enumerate(names)}
    cross = [
        matrix[i, j]
        for i in range(len(names))
        for j in range(len(names))
        if i != j
    ]
    return {
        "archs": names,
        "matrix": matrix,
        "same_arch": same_arch,
        "cross_arch": float(np.mean(cross)),
        "discrepancy": float(matrix[-1, -1]),
    }
