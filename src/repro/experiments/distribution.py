"""Exp-3: difficulty-distribution shift (Fig. 10).

The serving pool is resampled so that true discrepancy scores follow a
Normal or Gamma distribution with a chosen mean; accuracy and processed
accuracy are compared across baselines, including Schemble(t) — the
variant without the prediction module — to isolate the first module's
contribution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.data.sampling import (
    gamma_pdf,
    normal_pdf,
    resample_to_distribution,
    uniform_pdf,
)
from repro.data.traces import poisson_trace
from repro.experiments.runner import make_workload, run_policy, summarize
from repro.experiments.setups import TaskSetup


def target_pdf(family: str, mean: float) -> Callable:
    """The paper's target families, rescaled to this substrate's [0, 1]
    score range (the paper's std-0.03 Normal lives on a narrower raw
    scale; 0.12 keeps the same relative within-pool spread)."""
    if family == "normal":
        return normal_pdf(mean, std=0.12)
    if family == "gamma":
        # The paper's Gamma has scale 1 on raw scores; our scores live in
        # [0, 1], so the scale shrinks proportionally.
        return gamma_pdf(mean, scale=0.05)
    if family == "uniform":
        return uniform_pdf(max(mean - 0.15, 0.0), min(mean + 0.15, 1.0))
    raise ValueError(f"unknown family {family!r}")


def run_distribution_shift(
    setup: TaskSetup,
    family: str,
    means: Sequence[float],
    baselines: Sequence[str] = (
        "original", "static", "gating", "schemble_t", "schemble",
    ),
    deadline: float = 0.105,
    duration: float = 30.0,
    rate: Optional[float] = None,
    seed: int = 5,
) -> Dict:
    """Serve pools resampled to each target mean; Fig. 10 series."""
    # Extra load pressure makes per-query model counts a real trade-off;
    # without it every difficulty-aware variant can afford full subsets.
    rate = rate if rate is not None else 1.5 * setup.overload_rate
    true_scores = setup.schemble.true_scores(setup.pool_table)

    policies = dict(setup.policies())
    policies["schemble_t"] = setup.schemble_t.policy(
        setup.pool.features, name="schemble_t"
    )

    methods: Dict[str, Dict[str, List[float]]] = {
        name: {"accuracy": [], "processed_accuracy": [], "dmr": []}
        for name in baselines
    }
    for i, mean in enumerate(means):
        trace = poisson_trace(rate=rate, duration=duration, seed=seed + i)
        indices = resample_to_distribution(
            true_scores,
            target_pdf(family, mean),
            n_samples=len(trace),
            seed=seed + 100 + i,
        )
        workload = make_workload(
            setup, trace, deadline=deadline,
            sample_indices=indices, seed=seed + 200 + i,
        )
        for name in baselines:
            result = run_policy(
                setup, policies[name], workload, policy_name=name
            )
            stats = summarize(result, setup)
            methods[name]["accuracy"].append(stats["accuracy"])
            methods[name]["processed_accuracy"].append(
                stats["processed_accuracy"]
            )
            methods[name]["dmr"].append(stats["dmr"])
    return {"means": list(means), "family": family, "methods": methods}
