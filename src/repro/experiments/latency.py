"""Exp-2: forced-processing latency (Table II, Figs. 11 and 15).

Rejection is disabled — every query must be processed eventually — and
the latency distribution plus the accuracy of the returned results are
reported. The accuracy column is *relative to the Original pipeline*,
which by construction scores 100%.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.traces import poisson_trace
from repro.experiments.runner import make_workload, run_policy
from repro.experiments.setups import TaskSetup
from repro.experiments.overall import DEFAULT_BASELINES
from repro.metrics.tradeoff import best_method_windows
from repro.serving.config import ServerConfig


def run_forced_processing(
    setup: TaskSetup,
    deadline: Optional[float] = None,
    duration: float = 40.0,
    rate: Optional[float] = None,
    baselines: Sequence[str] = DEFAULT_BASELINES,
    seed: int = 5,
) -> Dict[str, Dict[str, float]]:
    """Serve the trace with rejection disabled; report Table II rows.

    The deadline still parameterises the schedulers' reward horizon but
    queries past it are completed anyway (and scored on what they ran).
    """
    deadline = deadline if deadline is not None else setup.deadline_grid[1]
    rate = rate if rate is not None else setup.overload_rate
    trace = poisson_trace(rate=rate, duration=duration, seed=seed)
    rng = np.random.default_rng(seed + 1)
    sample_indices = rng.integers(len(setup.pool), size=len(trace))
    workload = make_workload(
        setup, trace, deadline=deadline,
        sample_indices=sample_indices, seed=seed + 2,
    )

    policies = setup.policies()
    rows: Dict[str, Dict[str, float]] = {}
    full_quality = float(
        setup.quality[:, (1 << setup.n_models) - 1][sample_indices].mean()
    )
    for name in baselines:
        result = run_policy(
            setup,
            policies[name],
            workload,
            policy_name=name,
            config=ServerConfig(allow_rejection=False),
        )
        stats = result.latency_stats()
        qualities = np.array(
            [
                setup.quality[r.sample_index, r.executed_mask]
                for r in result.records
                if r.completion is not None
            ]
        )
        absolute = float(qualities.mean()) if qualities.size else 0.0
        rows[name] = {
            "accuracy_rel": absolute / max(full_quality, 1e-9),
            "accuracy_abs": absolute,
            "latency_mean": stats["mean"],
            "latency_p95": stats["p95"],
            "latency_max": stats["max"],
        }
    return rows


def tradeoff_windows(
    rows: Dict[str, Dict[str, float]],
    weights: Optional[Sequence[float]] = None,
) -> Dict[str, list]:
    """Fig. 11/15: who wins ``c = 100*Acc - λ*Latency`` per weight λ."""
    if weights is None:
        weights = np.geomspace(0.01, 500.0, 60)
    methods = {
        name: (row["accuracy_rel"], row["latency_mean"])
        for name, row in rows.items()
    }
    return best_method_windows(methods, weights)
