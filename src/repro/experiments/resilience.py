"""Resilience study: accuracy under fault injection.

The study the ``python -m repro faults`` command runs: the same bursty
workload is served repeatedly while the transient task-failure rate is
swept, once with graceful degradation enabled (partially-failed queries
are still answered from the executed subset — quality comes from the
profiler's KNNFiller-backed stacking tables) and once in drop-on-failure
mode (a query with any permanently failed task is rejected outright).

The headline claim this reproduces is the degraded-mode contract of
Pochelu & Petiton (arXiv:2208.14049): at every non-trivial failure rate,
answering from the surviving subset strictly beats dropping, because a
partial-ensemble answer scores its (positive) subset quality while a
dropped query scores 0.

``run_resilience_sweep`` can additionally inject worker crash/recover
windows (``crash_rate``) so the sweep also exercises failover
re-planning, and reports retry volume and degraded-answer rates
alongside accuracy/DMR.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.runner import RunSpec, run_spec, summarize
from repro.experiments.setups import TaskSetup
from repro.faults import FaultPlan
from repro.serving.config import ServerConfig

DEFAULT_FAILURE_RATES = (0.0, 0.05, 0.15, 0.3)


def run_resilience_sweep(
    setup: TaskSetup,
    failure_rates: Sequence[float] = DEFAULT_FAILURE_RATES,
    policy: str = "schemble",
    deadline: Optional[float] = None,
    duration: float = 20.0,
    max_retries: int = 1,
    latency_jitter: float = 0.05,
    straggler_prob: float = 0.0,
    task_timeout: Optional[float] = None,
    crash_rate: float = 0.0,
    mean_downtime: float = 2.0,
    seed: int = 0,
) -> Dict:
    """Sweep transient failure rates; degraded vs drop-on-failure.

    Args:
        setup: Task setup (deployment, quality tables, policies).
        failure_rates: Per-task transient failure probabilities.
        policy: Serving policy name (key into ``setup.policies()``).
        deadline: Relative deadline; ``None`` = tightest grid deadline.
        duration: Simulated trace seconds per run.
        max_retries: Retry budget per task (small, so high rates leave
            permanent failures for degraded mode to absorb).
        latency_jitter: Lognormal sigma on service times.
        straggler_prob: Probability a task runs straggler-slow.
        task_timeout: Per-task timeout in seconds (None = none).
        crash_rate: Poisson crashes per worker per second (0 = none).
        mean_downtime: Mean crash outage in seconds.
        seed: Base seed; the workload is identical across all cells so
            only the fault response differs.

    Returns:
        ``{"failure_rates": [...], "task": ..., "policy": ...,
        "modes": {"degraded" | "drop": {metric: [per-rate values]}}}``.
    """
    workers = setup.workers_for(policy)
    n_workers = len(workers) if workers is not None else setup.n_models
    modes: Dict[str, Dict[str, list]] = {
        "degraded": {}, "drop": {},
    }
    for rate in failure_rates:
        plan = FaultPlan(
            seed=seed + 17,
            latency_jitter=latency_jitter,
            straggler_prob=straggler_prob,
            task_failure_rate=float(rate),
        )
        if crash_rate > 0:
            plan = plan.with_random_crashes(
                n_workers=n_workers,
                duration=duration,
                crash_rate=crash_rate,
                mean_downtime=mean_downtime,
                seed=seed + 23,
            )
        for mode in ("degraded", "drop"):
            spec = RunSpec(
                policy=policy,
                config=ServerConfig(
                    faults=plan,
                    task_timeout=task_timeout,
                    max_retries=max_retries,
                    degraded_answers=(mode == "degraded"),
                ),
                deadline=deadline,
                duration=duration,
                seed=seed,
            )
            result = run_spec(setup, spec)
            stats = summarize(result, setup)
            row = modes[mode]
            for key in (
                "accuracy", "dmr", "degraded_rate", "retries",
                "latency_p95",
            ):
                row.setdefault(key, []).append(stats[key])
    return {
        "failure_rates": [float(r) for r in failure_rates],
        "task": setup.task,
        "policy": policy,
        "modes": modes,
    }
