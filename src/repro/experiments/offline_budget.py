"""Appendix Exp-4 / Fig. 16: offline budgeted selection.

Prior work optimises cumulative execution time on offline datasets; this
experiment meets it on that ground. For each average-runtime budget the
accuracy of:

* Random — random executions until the budget is spent;
* Static — the best fixed subset that fits the budget;
* Gating — threshold sweep over gate weights;
* Schemble* — Lagrangian selection on *predicted*-score utilities;
* Schemble*(ea) — the same with ensemble-agreement utilities;
* Schemble*(oracle) — selection on true-score utilities (upper bound).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.setups import TaskSetup
from repro.offline.budget import (
    budgeted_selection,
    mask_costs,
    random_selection,
)
from repro.scheduling.subsets import iter_masks


def _pick_quality(quality: np.ndarray, masks: np.ndarray) -> float:
    return float(quality[np.arange(quality.shape[0]), masks].mean())


def run_offline_budget(
    setup: TaskSetup,
    budgets_per_query: Optional[Sequence[float]] = None,
    seed: int = 5,
) -> Dict:
    """Accuracy-vs-average-runtime-budget curves (Fig. 16)."""
    latencies = setup.latencies
    quality = setup.quality
    n = quality.shape[0]
    costs = mask_costs(latencies)

    if budgets_per_query is None:
        low = float(latencies.min())
        high = float(latencies.sum())
        budgets_per_query = np.linspace(low, high, 6)
    budgets_per_query = [float(b) for b in budgets_per_query]

    pool_features = setup.pool.features
    predicted = setup.schemble.predict_scores(pool_features)
    oracle = setup.schemble.true_scores(setup.pool_table)
    agreement = setup.schemble_ea.true_scores(setup.pool_table)

    utilities = {
        "schemble*": setup.schemble.utilities(predicted),
        "schemble*(oracle)": setup.schemble.utilities(oracle),
        "schemble*(ea)": setup.schemble_ea.utilities(agreement),
    }

    gate_weights = setup.gating.gate_weights(pool_features)

    methods: Dict[str, List[float]] = {
        name: [] for name in (
            "random", "static", "gating",
            "schemble*", "schemble*(ea)", "schemble*(oracle)",
        )
    }
    for budget_per_query in budgets_per_query:
        budget = budget_per_query * n

        masks = random_selection(n, latencies, budget, seed=seed)
        methods["random"].append(_pick_quality(quality, masks))

        best_static = 0.0
        for mask in iter_masks(len(latencies)):
            if costs[mask] <= budget_per_query + 1e-12:
                best_static = max(best_static, float(quality[:, mask].mean()))
        methods["static"].append(best_static)

        methods["gating"].append(
            _gating_at_budget(gate_weights, quality, latencies, budget)
        )

        for name in ("schemble*", "schemble*(ea)", "schemble*(oracle)"):
            masks, _ = budgeted_selection(utilities[name], latencies, budget)
            # Selection never leaves a query unanswered in the offline
            # protocol: empty picks fall back to the cheapest model.
            cheapest = 1 << int(np.argmin(latencies))
            masks = np.where(masks == 0, cheapest, masks)
            methods[name].append(_pick_quality(quality, masks))

    return {"budgets": budgets_per_query, "methods": methods}


def _gating_at_budget(
    gate_weights: np.ndarray,
    quality: np.ndarray,
    latencies: np.ndarray,
    budget: float,
) -> float:
    """Best gating accuracy over thresholds whose spend fits the budget."""
    n, m = gate_weights.shape
    best = 0.0
    for threshold in np.linspace(0.0, 1.0, 21):
        masks = np.zeros(n, dtype=int)
        spent = 0.0
        for i in range(n):
            cutoff = threshold * gate_weights[i].max()
            mask = 0
            for k in range(m):
                if gate_weights[i, k] >= cutoff - 1e-12:
                    mask |= 1 << k
            if mask == 0:
                mask = 1 << int(np.argmax(gate_weights[i]))
            masks[i] = mask
            spent += sum(latencies[k] for k in range(m) if mask >> k & 1)
        if spent <= budget + 1e-9:
            best = max(best, _pick_quality(quality, masks))
    return best
