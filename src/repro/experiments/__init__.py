"""Experiment harness: one module per paper experiment.

``setups.build_setup`` assembles a complete application (dataset,
ensemble, profiling, baselines) once per (task, preset, seed) and caches
it, so the benches for different figures share the expensive offline
phase exactly the way the paper's system shares its deployed models.
"""

from repro.experiments.setups import TaskSetup, build_setup
from repro.experiments.resilience import run_resilience_sweep
from repro.experiments.runner import (
    RunSpec,
    make_workload,
    run_policy,
    run_spec,
    summarize,
)

__all__ = [
    "TaskSetup",
    "build_setup",
    "RunSpec",
    "make_workload",
    "run_policy",
    "run_resilience_sweep",
    "run_spec",
    "summarize",
]
