"""Per-task experiment setups shared by every bench.

Building a setup performs the paper's full offline phase for one
application: generate data, train the heterogeneous base models and the
aggregator, record historical inference results, fit the discrepancy
scorer/predictor/profiler, train the DES and Gating selectors, and plan
the static deployment. Setups are cached per (task, preset, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

import numpy as np

from repro.baselines.des import DynamicEnsembleSelection
from repro.baselines.gating import GatingNetwork
from repro.baselines.original import original_policy
from repro.baselines.schemble import SchemblePipeline
from repro.baselines.static import StaticSelection, static_policy
from repro.data import (
    Dataset,
    make_image_retrieval,
    make_text_matching,
    make_vehicle_counting,
)
from repro.data.image_retrieval import average_precision
from repro.difficulty.profiling import subset_correctness
from repro.ensemble.ensemble import DeepEnsemble
from repro.models.prediction_table import PredictionTable
from repro.models.zoo import (
    build_image_retrieval_ensemble,
    build_text_matching_ensemble,
    build_vehicle_counting_ensemble,
)
from repro.scheduling.subsets import iter_masks, mask_members

TASKS = ("text_matching", "vehicle_counting", "image_retrieval")
PRESETS = ("small", "default")

# Deadline grids (seconds) per task, spanning tight to loose relative to
# each ensemble's slowest model — the x-axes of Figs. 6-8.
DEADLINE_GRIDS = {
    "text_matching": (0.105, 0.125, 0.15, 0.2, 0.3),
    "vehicle_counting": (0.09, 0.12, 0.16, 0.22, 0.3),
    "image_retrieval": (0.135, 0.16, 0.2, 0.28, 0.4),
}

# Arrival rates (queries/second) that overload each ensemble enough to
# expose queue blocking, scaled to the per-task latencies.
OVERLOAD_RATES = {
    "text_matching": 18.0,
    "vehicle_counting": 45.0,
    "image_retrieval": 10.0,
}

_PRESET_SIZES = {
    # (n_samples, train, cal, history, pool, model epochs, predictor epochs)
    "small": {"n": 1400, "splits": (0.35, 0.15, 0.25, 0.25), "epochs": 8, "pred_epochs": 60},
    "default": {"n": 3200, "splits": (0.35, 0.15, 0.25, 0.25), "epochs": 18, "pred_epochs": 60},
}


@dataclass
class TaskSetup:
    """Everything one application's experiments need."""

    task: str
    preset: str
    ensemble: DeepEnsemble
    train: Dataset
    calibration: Dataset
    history: Dataset
    pool: Dataset
    history_table: PredictionTable
    pool_table: PredictionTable
    quality: np.ndarray  # (n_pool, 2**m) result quality per mask
    history_quality: np.ndarray  # (n_history, 2**m)
    schemble: SchemblePipeline
    schemble_ea: SchemblePipeline
    schemble_t: SchemblePipeline
    des: DynamicEnsembleSelection
    gating: GatingNetwork
    static_plan: StaticSelection

    @property
    def latencies(self) -> np.ndarray:
        return np.array([m.latency for m in self.ensemble.models])

    @property
    def memories(self) -> np.ndarray:
        return np.array([m.memory for m in self.ensemble.models])

    @property
    def n_models(self) -> int:
        return self.ensemble.size

    @property
    def deadline_grid(self):
        return DEADLINE_GRIDS[self.task]

    @property
    def overload_rate(self) -> float:
        return OVERLOAD_RATES[self.task]

    def policies(self, scores: Optional[np.ndarray] = None) -> Dict[str, object]:
        """The paper's six Exp-1 baselines, ready to serve the pool."""
        pool_features = self.pool.features
        return {
            "original": original_policy(self.n_models),
            "static": self.static_plan.policy,
            "des": self.des.policy(pool_features),
            "gating": self.gating.policy(pool_features),
            "schemble_ea": self.schemble_ea.policy(
                pool_features, name="schemble_ea"
            ),
            "schemble": self.schemble.policy(
                pool_features, name="schemble", scores=scores
            ),
        }

    def workers_for(self, policy_name: str):
        """Worker deployment: static gets its replica plan, everyone else
        deploys each base model once."""
        if policy_name == "static":
            return self.static_plan.workers
        return None


def _make_dataset(task: str, n: int, seed: int) -> Dataset:
    if task == "text_matching":
        return make_text_matching(n_samples=n, seed=seed)
    if task == "vehicle_counting":
        return make_vehicle_counting(n_samples=n, seed=seed)
    if task == "image_retrieval":
        return make_image_retrieval(n_queries=n, seed=seed)
    raise ValueError(f"unknown task {task!r}; choose from {TASKS}")


def _build_ensemble(task: str, train: Dataset, cal: Dataset, epochs: int, seed: int):
    if task == "text_matching":
        return build_text_matching_ensemble(
            train, calibration=cal, epochs=epochs, seed=seed
        )
    if task == "vehicle_counting":
        return build_vehicle_counting_ensemble(train, epochs=epochs, seed=seed)
    return build_image_retrieval_ensemble(train, epochs=epochs, seed=seed)


def retrieval_quality(
    table: PredictionTable,
    ensemble: DeepEnsemble,
    dataset: Dataset,
    top_k: int = 50,
) -> np.ndarray:
    """Per-sample, per-mask retrieval quality: average precision of the
    subset-aggregated embedding against the query's true topic."""
    database = dataset.metadata["database"]
    item_topics = dataset.metadata["item_topics"]
    query_topics = dataset.metadata["query_topics"]
    db_norm = database / np.maximum(
        np.linalg.norm(database, axis=1, keepdims=True), 1e-9
    )
    n_masks = 1 << table.n_models
    quality = np.zeros((table.n_samples, n_masks))
    for mask in iter_masks(table.n_models):
        members = set(mask_members(mask))
        outputs = [
            table.outputs[name] if k in members else None
            for k, name in enumerate(table.model_names)
        ]
        embeddings = ensemble.aggregate(outputs)
        emb_norm = embeddings / np.maximum(
            np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-9
        )
        similarity = emb_norm @ db_norm.T
        for i in range(table.n_samples):
            order = np.argsort(-similarity[i])[:top_k]
            quality[i, mask] = average_precision(
                item_topics[order], int(query_topics[i])
            )
    return quality


def _quality_table(
    task: str,
    table: PredictionTable,
    ensemble: DeepEnsemble,
    dataset: Dataset,
) -> np.ndarray:
    if task == "image_retrieval":
        return retrieval_quality(table, ensemble, dataset)
    return subset_correctness(table, ensemble).astype(float)


def _member_competence(quality: np.ndarray, n_models: int) -> np.ndarray:
    """Per-sample single-model quality columns ``(n, m)`` used as the
    DES/Gating training targets ("is this model alone credible?")."""
    return np.stack([quality[:, 1 << k] for k in range(n_models)], axis=1)


def build_setup(
    task: str, preset: str = "default", seed: int = 0
) -> TaskSetup:
    """Build (or fetch from cache) the full offline phase for a task."""
    return _cached_setup(task, preset, seed)


@lru_cache(maxsize=8)
def _cached_setup(task: str, preset: str, seed: int) -> TaskSetup:
    if task not in TASKS:
        raise ValueError(f"unknown task {task!r}; choose from {TASKS}")
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; choose from {PRESETS}")
    sizes = _PRESET_SIZES[preset]

    dataset = _make_dataset(task, sizes["n"], seed)
    train, cal, history, pool = dataset.split(sizes["splits"], seed=seed + 1)

    ensemble = _build_ensemble(task, train, cal, sizes["epochs"], seed)
    history_table = PredictionTable.from_models(
        ensemble.models, history.features, ensemble
    )
    pool_table = PredictionTable.from_models(
        ensemble.models, pool.features, ensemble
    )
    quality = _quality_table(task, pool_table, ensemble, pool)
    history_quality = _quality_table(task, history_table, ensemble, history)

    pred_epochs = sizes["pred_epochs"]
    schemble = SchemblePipeline(
        ensemble, metric="discrepancy", predictor_epochs=pred_epochs,
        seed=seed + 10,
    ).fit(history.features, history_table, history_quality)
    schemble_ea = SchemblePipeline(
        ensemble, metric="agreement", predictor_epochs=pred_epochs,
        seed=seed + 11,
    ).fit(history.features, history_table, history_quality)
    schemble_t = SchemblePipeline(
        ensemble, metric="discrepancy", use_predictor=False,
        seed=seed + 12,
    ).fit(history.features, history_table, history_quality)

    competence = _member_competence(history_quality, ensemble.size)
    des = DynamicEnsembleSelection(n_regions=10, seed=seed + 20).fit(
        history.features, competence
    )
    gating = GatingNetwork(
        in_features=history.features.shape[1],
        n_models=ensemble.size,
        epochs=pred_epochs,
        seed=seed + 21,
    ).fit(history.features, competence)

    latencies = [m.latency for m in ensemble.models]
    memories = [m.memory for m in ensemble.models]
    static_plan = static_policy(
        history_quality, latencies, memories, target_rate=OVERLOAD_RATES[task]
    )

    return TaskSetup(
        task=task,
        preset=preset,
        ensemble=ensemble,
        train=train,
        calibration=cal,
        history=history,
        pool=pool,
        history_table=history_table,
        pool_table=pool_table,
        quality=quality,
        history_quality=history_quality,
        schemble=schemble,
        schemble_ea=schemble_ea,
        schemble_t=schemble_t,
        des=des,
        gating=gating,
        static_plan=static_plan,
    )
