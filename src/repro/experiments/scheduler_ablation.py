"""Exp-4: task-scheduler ablation (Figs. 12, 17-19, 21).

With the difficulty module fixed, the scheduling algorithm is swapped:
greedy selection under EDF/FIFO/SJF orders versus the DP algorithm with
quantisation steps δ ∈ {0.1, 0.01, 0.001}. Scheduling overhead is
charged in simulated time, so the δ = 0.001 table pays for itself — the
effect behind the paper's Fig. 21.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.traces import poisson_trace
from repro.experiments.runner import make_workload, run_policy, summarize
from repro.experiments.setups import TaskSetup
from repro.scheduling.dp import DPScheduler
from repro.scheduling.greedy import GreedyScheduler


def scheduler_suite(deltas: Sequence[float] = (0.1, 0.01, 0.001)) -> Dict:
    """The Exp-4 scheduler lineup."""
    suite: Dict[str, object] = {
        "greedy+edf": GreedyScheduler("edf"),
        "greedy+fifo": GreedyScheduler("fifo"),
        "greedy+sjf": GreedyScheduler("sjf"),
    }
    for delta in deltas:
        suite[f"dp(d={delta})"] = DPScheduler(delta=delta)
    return suite


def run_scheduler_ablation(
    setup: TaskSetup,
    deadlines: Optional[Sequence[float]] = None,
    duration: float = 30.0,
    rate: Optional[float] = None,
    deltas: Sequence[float] = (0.1, 0.01, 0.001),
    seed: int = 5,
) -> Dict:
    """Accuracy/DMR of each scheduler across deadlines (Fig. 12)."""
    deadlines = list(deadlines if deadlines is not None else setup.deadline_grid)
    # The ablation needs queue pressure to tell schedulers apart: at the
    # base overload rate every scheduler keeps up (the paper's Exp-4
    # runs during the bursty period for the same reason).
    rate = rate if rate is not None else 4.0 * setup.overload_rate
    trace = poisson_trace(rate=rate, duration=duration, seed=seed)
    rng = np.random.default_rng(seed + 1)
    sample_indices = rng.integers(len(setup.pool), size=len(trace))

    suite = scheduler_suite(deltas)
    methods: Dict[str, Dict[str, List[float]]] = {
        name: {"accuracy": [], "dmr": []} for name in suite
    }
    for deadline in deadlines:
        workload = make_workload(
            setup, trace, deadline=deadline,
            sample_indices=sample_indices, seed=seed + 2,
        )
        for name, scheduler in suite.items():
            policy = setup.schemble.policy(
                setup.pool.features, name=name, scheduler=scheduler
            )
            result = run_policy(setup, policy, workload, policy_name=name)
            stats = summarize(result, setup)
            methods[name]["accuracy"].append(stats["accuracy"])
            methods[name]["dmr"].append(stats["dmr"])
    return {"deadlines": deadlines, "methods": methods, "task": setup.task}


def run_delta_sweep(
    setup: TaskSetup,
    deltas: Sequence[float] = (0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.001),
    deadline: Optional[float] = None,
    duration: float = 30.0,
    rate: Optional[float] = None,
    seed: int = 5,
) -> Dict:
    """Fig. 21: overhead (scheduler work) and accuracy versus δ."""
    deadline = deadline if deadline is not None else setup.deadline_grid[2]
    rate = rate if rate is not None else setup.overload_rate
    trace = poisson_trace(rate=rate, duration=duration, seed=seed)
    rng = np.random.default_rng(seed + 1)
    sample_indices = rng.integers(len(setup.pool), size=len(trace))
    workload = make_workload(
        setup, trace, deadline=deadline,
        sample_indices=sample_indices, seed=seed + 2,
    )

    rows: Dict[float, Dict[str, float]] = {}
    for delta in deltas:
        policy = setup.schemble.policy(
            setup.pool.features,
            name=f"dp(d={delta})",
            scheduler=DPScheduler(delta=delta),
        )
        result = run_policy(setup, policy, workload)
        stats = summarize(result, setup)
        invocations = max(result.scheduler_invocations, 1)
        rows[float(delta)] = {
            "accuracy": stats["accuracy"],
            "dmr": stats["dmr"],
            "work_per_invocation": result.scheduler_work_units / invocations,
        }
    return rows
