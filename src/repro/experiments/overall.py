"""Exp-1: overall accuracy and deadline-miss-rate comparison.

Reproduces Figs. 6-8 (per-deadline curves for one task) and Table I
(averages across the deadline grid for all tasks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.traces import poisson_trace
from repro.experiments.runner import make_workload, run_policy, summarize
from repro.experiments.setups import TaskSetup, build_setup

DEFAULT_BASELINES = (
    "original",
    "static",
    "des",
    "gating",
    "schemble_ea",
    "schemble",
)


def run_deadline_sweep(
    setup: TaskSetup,
    deadlines: Optional[Sequence[float]] = None,
    duration: float = 40.0,
    rate: Optional[float] = None,
    baselines: Sequence[str] = DEFAULT_BASELINES,
    deadline_spread: float = 0.0,
    seed: int = 5,
) -> Dict:
    """Run every baseline at every deadline constraint.

    Returns a dict with ``deadlines`` and per-method ``accuracy``/``dmr``
    series — the data behind one of Figs. 6-8.
    """
    deadlines = list(deadlines if deadlines is not None else setup.deadline_grid)
    rate = rate if rate is not None else setup.overload_rate
    trace = poisson_trace(rate=rate, duration=duration, seed=seed)
    rng = np.random.default_rng(seed + 1)
    sample_indices = rng.integers(len(setup.pool), size=len(trace))

    methods: Dict[str, Dict[str, List[float]]] = {
        name: {"accuracy": [], "dmr": [], "processed_accuracy": []}
        for name in baselines
    }
    policies = setup.policies()
    for deadline in deadlines:
        spread = deadline_spread
        if setup.task == "vehicle_counting" and deadline_spread == 0.0:
            # The paper gives vehicle-counting cameras random deadlines.
            spread = 0.25 * deadline
        workload = make_workload(
            setup,
            trace,
            deadline=deadline,
            deadline_spread=spread,
            sample_indices=sample_indices,
            seed=seed + 2,
        )
        for name in baselines:
            result = run_policy(setup, policies[name], workload, policy_name=name)
            stats = summarize(result, setup)
            methods[name]["accuracy"].append(stats["accuracy"])
            methods[name]["dmr"].append(stats["dmr"])
            methods[name]["processed_accuracy"].append(
                stats["processed_accuracy"]
            )
    return {"deadlines": deadlines, "methods": methods, "task": setup.task}


def average_over_deadlines(sweep: Dict) -> Dict[str, Dict[str, float]]:
    """Per-method averages across the deadline grid (one Table I block)."""
    return {
        name: {
            "accuracy": float(np.mean(series["accuracy"])),
            "dmr": float(np.mean(series["dmr"])),
        }
        for name, series in sweep["methods"].items()
    }


def table1(
    tasks: Sequence[str] = ("text_matching", "vehicle_counting", "image_retrieval"),
    preset: str = "default",
    duration: float = 40.0,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table I: average Acc/DMR per task per baseline."""
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for task in tasks:
        setup = build_setup(task, preset, seed=seed)
        sweep = run_deadline_sweep(setup, duration=duration, seed=seed + 5)
        table[task] = average_over_deadlines(sweep)
    return table
