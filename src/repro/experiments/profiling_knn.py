"""Exp-7 / Fig. 20: Eq. 3 estimation quality and KNN k-robustness.

Left panel: with six CIFAR-like models fully profiled, utilities of
combinations of size >= 3 are *estimated* from singleton/pair profiles
via the marginal-reward recursion (Eq. 3); the MSE against the true
profile is reported per ensemble size.

Right panel: stacking aggregation with KNN-filled missing outputs is
evaluated while k sweeps 1..100; accuracy should be nearly flat.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.cifar_like import make_cifar_like
from repro.difficulty.discrepancy import DiscrepancyScorer
from repro.difficulty.profiling import (
    AccuracyProfiler,
    estimate_marginal_utility,
    fit_gammas,
)
from repro.ensemble.aggregation import Stacking
from repro.experiments.setups import TaskSetup
from repro.models.prediction_table import PredictionTable
from repro.models.zoo import build_cifar_like_models
from repro.scheduling.subsets import iter_masks, mask_size


def marginal_estimation_study(
    n_samples: int = 1200,
    epochs: int = 10,
    n_bins: int = 6,
    seed: int = 0,
) -> Dict[int, float]:
    """MSE of Eq. 3 estimates per ensemble size (Fig. 20 left)."""
    data = make_cifar_like(n_samples=n_samples, seed=seed)
    train, test = data.split([0.6, 0.4], seed=seed + 1)
    ensemble = build_cifar_like_models(train, epochs=epochs, seed=seed)
    table = PredictionTable.from_models(ensemble.models, test.features, ensemble)

    member = [table.outputs[n] for n in table.model_names]
    scores = DiscrepancyScorer("classification").fit_score(
        member, table.ensemble_output
    )
    profiler = AccuracyProfiler(n_bins=n_bins).fit(table, scores, ensemble)
    true_table = profiler.utility_table()
    m = ensemble.size

    # Models sorted by singleton accuracy, as Eq. 3 prescribes.
    singleton_acc = [float(true_table[:, 1 << k].mean()) for k in range(m)]
    order = list(np.argsort(singleton_acc)[::-1])
    gammas = fit_gammas(profiler, order)

    small = {
        mask: true_table[:, mask]
        for mask in iter_masks(m)
        if mask_size(mask) <= 2
    }
    estimates = estimate_marginal_utility(small, m, order, gammas)

    mse_by_size: Dict[int, List[float]] = {}
    for mask in iter_masks(m):
        size = mask_size(mask)
        if size <= 2:
            continue
        err = float(np.mean((estimates[mask] - true_table[:, mask]) ** 2))
        mse_by_size.setdefault(size, []).append(err)
    return {size: float(np.mean(errs)) for size, errs in mse_by_size.items()}


def knn_robustness_study(
    setup: TaskSetup,
    k_values: Sequence[int] = (1, 5, 10, 25, 50, 100),
    mask: int = 0b011,
) -> Dict[int, float]:
    """Accuracy of stacking aggregation as the filler's k varies
    (Fig. 20 right). ``mask`` is the executed subset whose missing
    member outputs get KNN-filled."""
    if setup.ensemble.task != "classification":
        raise ValueError("KNN study needs a classification (stacking) task")
    aggregator = setup.ensemble.aggregator
    if not isinstance(aggregator, Stacking):
        raise ValueError("KNN study needs a stacking aggregator")

    history = setup.history_table
    pool = setup.pool_table
    ensemble_labels = pool.ensemble_output.argmax(axis=1)
    members = [
        pool.outputs[name] if (mask >> k) & 1 else None
        for k, name in enumerate(pool.model_names)
    ]
    original_k = aggregator.filler.k
    results: Dict[int, float] = {}
    try:
        for k in k_values:
            aggregator.filler.k = int(k)
            output = aggregator.aggregate(members)
            results[int(k)] = float(
                (output.argmax(axis=1) == ensemble_labels).mean()
            )
    finally:
        aggregator.filler.k = original_k
    return results
