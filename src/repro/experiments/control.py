"""Control-loop experiment: a static fleet vs the same fleet, controlled.

The question the control plane exists to answer: when the diurnal
burst arrives, does closing the loop — SLO-driven replica scaling,
admission tightening, and degraded-quality mode (:mod:`repro.control`)
— actually hold the deadline SLO that an identically-provisioned
static fleet breaches, and at what quality cost?

:func:`run_control_comparison` serves one workload twice through the
same :class:`~repro.fleet.server.FleetServer` deployment — once with
``control=None`` (the original static two-pass run) and once in
controlled mode — and reports both rows side by side, plus the
controller's action counts and the detected overload episodes. Both
runs are deterministic for a fixed (workload, seed); the controlled
run's ``control_log.dumps()`` is byte-identical across reruns, which
``benchmarks/bench_control_loop.py`` asserts.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.control import ControlConfig
from repro.fleet.config import FleetConfig
from repro.fleet.server import FleetResult, FleetServer
from repro.obs.slo import SLOConfig
from repro.obs.tracer import Tracer
from repro.serving.config import ServerConfig
from repro.serving.policies import BufferedSchedulingPolicy
from repro.serving.records import ServingResult
from repro.serving.server import WorkerSpec
from repro.serving.workload import ServingWorkload

__all__ = ["default_control_config", "run_control_comparison"]


def default_control_config(
    interval: float = 1.0,
    warmup: float = 2.0,
    max_extra_replicas: int = 4,
    cooldown: float = 5.0,
    seed: int = 0,
    alert_window: float = 10.0,
    miss_target: float = 0.05,
) -> ControlConfig:
    """A control config tuned for compressed-day traces.

    Real SLO practice watches burn over minutes-to-hours; the repo's
    traces compress a day into tens of simulated seconds, so the
    alert window and decision interval shrink to match. Breach at 2x
    burn with recovery hysteresis at 1x, scale up while burn stays at
    or above 2x, unwind below 0.5x.
    """
    return ControlConfig(
        interval=interval,
        warmup=warmup,
        max_extra_replicas=max_extra_replicas,
        scale_up_burn=2.0,
        scale_down_burn=0.5,
        cooldown=cooldown,
        seed=seed,
        slo=SLOConfig(
            miss_target=miss_target,
            windows=(alert_window, 6.0 * alert_window),
            alert_window=alert_window,
            breach_burn=2.0,
            recover_burn=1.0,
            min_events=20,
        ),
    )


def _row(
    result: ServingResult,
    quality: np.ndarray,
    shed_rate: float,
) -> Dict[str, float]:
    """One comparison row: quality, misses, tails, degradation."""
    stats = result.latency_stats()
    n = max(1, len(result.records))
    degraded = sum(
        1 for record in result.records if getattr(record, "degraded", False)
    )
    return {
        "accuracy": result.accuracy(quality),
        "dmr": result.deadline_miss_rate(),
        "p50": stats["p50"],
        "p95": stats["p95"],
        "p99": stats["p99"],
        "shed_rate": shed_rate,
        "degraded_rate": degraded / n,
        "scheduler_invocations": float(result.scheduler_invocations),
    }


def run_control_comparison(
    latencies: Sequence[float],
    policy: BufferedSchedulingPolicy,
    workload: ServingWorkload,
    quality: np.ndarray,
    n_shards: int = 4,
    queue_limit: int = 64,
    router: str = "power_of_two",
    control: Optional[ControlConfig] = None,
    server: Optional[ServerConfig] = None,
    workers: Optional[Sequence[WorkerSpec]] = None,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> Tuple[Dict[str, Dict[str, float]], FleetResult]:
    """Serve one workload statically and under the control loop.

    Both fleets share the deployment, router, and admission knobs; the
    only difference is ``control``. Returns ``({"static": row,
    "controlled": row}, controlled_result)`` — the controlled row
    additionally carries the controller's action counts and the number
    of detected overload episodes, and the returned
    :class:`~repro.fleet.server.FleetResult` exposes ``control_log``
    and ``monitor`` for artifacts and determinism checks. ``tracer``
    (if given) observes the controlled run.
    """
    latencies = np.asarray(latencies, dtype=float)
    server = server if server is not None else ServerConfig()
    control = control if control is not None else default_control_config(
        seed=seed
    )

    def fleet_config(ctl: Optional[ControlConfig]) -> FleetConfig:
        return FleetConfig.uniform(
            n_shards,
            server,
            router=router,
            queue_limit=queue_limit,
            seed=seed,
            control=ctl,
        )

    static = FleetServer.from_config(
        latencies, policy, fleet_config(None), workers=workers
    ).run(workload)
    controlled = FleetServer.from_config(
        latencies, policy, fleet_config(control),
        workers=workers, tracer=tracer,
    ).run(workload)

    rows = {
        "static": _row(static.merged, quality, static.shed_rate()),
        "controlled": _row(
            controlled.merged, quality, controlled.shed_rate()
        ),
    }
    counts = controlled.control_log.counts()
    rows["controlled"].update({
        "scale_ups": float(counts.get("scale_up", 0)),
        "scale_downs": float(counts.get("scale_down", 0)),
        "degrades": float(counts.get("degrade", 0)),
        "restores": float(counts.get("restore", 0)),
        "admission_changes": float(counts.get("admission_change", 0)),
        "episodes": float(len(controlled.monitor.episodes)),
    })
    return rows, controlled
