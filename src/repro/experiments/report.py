"""Assemble EXPERIMENTS.md from the benchmark result files.

Every bench in ``benchmarks/`` writes its reproduction table to
``benchmarks/results/<id>.txt``. This module stitches those tables
together with the paper's reference findings into a single
paper-vs-measured document, so the record always reflects the latest
bench run:

    python -m repro.experiments.report [results_dir] [output_md]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of the paper, reproduced by
`pytest benchmarks/ --benchmark-only`. Each bench asserts the paper's
qualitative *shape* (who wins, by roughly what factor, where crossovers
fall); absolute numbers differ because the substrate is a numpy + DES
simulation rather than a P100 testbed (see DESIGN.md for the
substitution map). Measured tables below are the verbatim output of the
latest bench run (`benchmarks/results/`).
"""


@dataclass(frozen=True)
class ExperimentEntry:
    """One paper artefact: reference claim + result files + notes."""

    artefact: str
    result_ids: Sequence[str]
    paper_claim: str
    reproduction_notes: str = ""


REGISTRY: List[ExperimentEntry] = [
    ExperimentEntry(
        "Fig. 1a — one-day traffic vs deadline miss rate",
        ["fig1a"],
        "The Original ensemble's DMR strongly correlates with the query "
        "load and reaches ~45% during the burst.",
        "Reproduced: DMR/load correlation > 0.5 and peak-hour DMR in the "
        "paper's range; night hours barely miss.",
    ),
    ExperimentEntry(
        "Fig. 1b — ensemble vs base models",
        ["fig1b"],
        "The ensemble improves accuracy over every base model but is as "
        "slow as its slowest member; 78.3% of samples are solved by any "
        "single model and <11% need all three.",
        "Reproduced, including the redundancy fractions (any-single "
        "> 0.6, needs-all < 0.15 on the synthetic substrate).",
    ),
    ExperimentEntry(
        "Fig. 4 — discrepancy score analysis",
        ["fig4a", "fig4b"],
        "Scores are heavily skewed toward easy; every combination is "
        ">90% accurate on easy bins while small combinations degrade "
        "sharply on hard bins.",
        "Per-bin degradation reproduced (monotone trend asserted). The "
        "paper's spike at exactly zero softens here: numpy MLPs never "
        "agree bit-for-bit, so the mass sits at the low end rather than "
        "at 0.",
    ),
    ExperimentEntry(
        "Fig. 5 — preference variance",
        ["fig5"],
        "Model preferences correlate weakly across architectures and "
        "random seeds; the discrepancy score stays stable across seeds.",
        "Reproduced: discrepancy cross-seed correlation exceeds every "
        "preference correlation.",
    ),
    ExperimentEntry(
        "Figs. 6-8 + Table I — overall accuracy & DMR",
        ["fig6", "fig7", "fig8", "table1"],
        "Schemble achieves the best accuracy on all tasks (TM 91.2, VC "
        "80.4, IR mAP 78.4), ~5x lower DMR than Original on TM, beats "
        "the Schemble(ea) ablation, and gets the second-lowest DMR on "
        "IR where static's single replicated model is the DMR lower "
        "bound.",
        "All orderings reproduced: Schemble leads accuracy everywhere, "
        "Original trails, DMR reduction vs Original exceeds 2x on every "
        "task (>5x on TM), and the IR static/schemble DMR ordering "
        "matches the paper's remark.",
    ),
    ExperimentEntry(
        "Table II + Figs. 11/15 — forced processing latency",
        ["table2_text_matching", "table2_vehicle_counting",
         "table2_image_retrieval"],
        "With rejection disabled, Original's mean latency explodes "
        "(50.5s on TM) while Schemble keeps ~0.1s at >97% relative "
        "accuracy and wins the trade-off objective over a wide weight "
        "window.",
        "Reproduced: Schemble's mean latency is >20x below Original's "
        "with high relative accuracy and a non-trivial trade-off "
        "window; Gating is fastest but least accurate, DES slowest "
        "among selectors — the paper's ordering.",
    ),
    ExperimentEntry(
        "Figs. 9/14 — one-day trace behaviour",
        ["fig9_fig14"],
        "Schemble/Static/Gating eliminate the latency burst; Schemble "
        "adapts by scheduling fewer models during the burst and misses "
        "the least.",
        "Reproduced: burst-hour DMR under half of Original's, burst "
        "latency lower, night-hour misses near zero.",
    ),
    ExperimentEntry(
        "Fig. 10 — difficulty-distribution shift (Exp-3)",
        ["fig10_normal", "fig10_gamma"],
        "Accuracy decreases as the pool's mean difficulty grows; "
        "Schemble stays on top; Schemble(t) is only competitive at the "
        "extremes where queries are indistinguishable.",
        "Reproduced, including the Schemble vs Schemble(t) crossover "
        "structure (ties on easy pools, Schemble ahead at mid/high "
        "means). Target distributions are rescaled to this substrate's "
        "[0,1] score range.",
    ),
    ExperimentEntry(
        "Figs. 12/17/18/19 — task scheduler ablation (Exp-4)",
        ["fig12", "fig17", "fig18", "fig19"],
        "DP beats greedy selection under EDF/FIFO/SJF orders, with the "
        "gap growing as deadlines loosen; δ=0.01 is the practical sweet "
        "spot and δ=0.001's table pays for itself in overhead.",
        "DP > greedy and the growing-gap trend reproduce under queue "
        "pressure. One deviation: under extreme load our δ=0.1 can edge "
        "out δ=0.01 — coarse quantisation ties many masks and the "
        "Pareto tie-break then prefers faster subsets, which acts as a "
        "load regulariser the paper's testbed did not exhibit.",
    ),
    ExperimentEntry(
        "Fig. 13 — computational overhead (Exp-5)",
        ["fig13"],
        "The discrepancy predictor costs ~6.5% of ensemble runtime and "
        "0.4-2% of its memory.",
        "The simulator charges exactly the published ratios (cost-model "
        "view). Measured on the numpy substrate the predictor costs "
        "~16% of the members' wall-clock; its parameter share looks "
        "large (~70%) only because the substitute base models are "
        "deliberately tiny MLPs rather than transformers.",
    ),
    ExperimentEntry(
        "Fig. 16 — offline budgeted selection",
        ["fig16_text_matching", "fig16_vehicle_counting"],
        "Under cumulative-runtime budgets, Schemble* clearly beats "
        "Random/Static/Gating and closely tracks its oracle variant.",
        "Reproduced: Schemble* dominates Random at every budget and the "
        "oracle upper-bounds it tightly.",
    ),
    ExperimentEntry(
        "Fig. 20 — Eq. 3 estimation + KNN robustness (Exp-7)",
        ["fig20a", "fig20b"],
        "Marginal-utility estimation MSE < 1.6e-4; stacking accuracy "
        "is flat for k in 10..100 with a minor loss at k=1.",
        "Both reproduced (estimation MSE < 5e-3 on the noisier "
        "substrate; KNN curve flat within 3 points for k >= 10).",
    ),
    ExperimentEntry(
        "Fig. 21 — quantisation step δ (Exp-8)",
        ["fig21"],
        "Smaller δ approaches the optimal plan but its DP table (and "
        "scheduling delay) grows as 1/δ; δ=0.01 balances the two.",
        "DP work per invocation grows as δ shrinks as predicted. At the "
        "moderate load of this sweep accuracy is flat across δ (buffers "
        "are small, so quantisation barely bites); the overhead-driven "
        "collapse of δ=0.001 appears under the heavy load of "
        "Figs. 12/17, where its accuracy drops by up to 19 points at "
        "loose deadlines.",
    ),
    ExperimentEntry(
        "Scheduler throughput — vectorized DP hot path (this repo)",
        ["sched_throughput"],
        "— (not in the paper; engineering guard for the Alg. 1 "
        "implementation the serving loop runs on every buffer tick).",
        "`scheduling/dp.py` is a numpy kernel over flat cell-contiguous "
        "table arrays (broadcast candidate extension, one lexsort into "
        "cell buckets, all-cell simultaneous Pareto prune, "
        "parent-pointer plan reconstruction); `dp_reference.py` keeps "
        "the loop form as the semantic oracle. Plans are *bit-exact* "
        "between the two — identical decisions, total utility and "
        "(unified, skip-free) work units on every randomized parity "
        "instance — so every Exp-4/Exp-8 number is unchanged by the "
        "rewrite while large buffers schedule 3-4x faster. Re-run with "
        "`PYTHONPATH=src python benchmarks/bench_sched_throughput.py` "
        "(BENCH_sched.json holds the committed baseline; CI's "
        "perf-smoke job fails any grid point whose speedup halves).",
    ),
    ExperimentEntry(
        "Learned fast-path scheduler — distilled policy vs exact DP "
        "(this repo)",
        ["policy_distill"],
        "— (not in the paper; makes the Alg. 1 hot path affordable at "
        "serving-scale buffers by imitating it).",
        "`repro.scheduling.distill` turns a DP serving run's "
        "`DecisionLog` into a teacher-forced feature matrix and fits "
        "two students on it — per-bit gradient-boosted trees "
        "(`repro.trees`) and a multi-output MLP (`repro.nn`) — keeping "
        "whichever validates better; `LearnedScheduler` rolls the bit "
        "heads out in `O(buffer x models)` per step and a "
        "predicted-regret gate sends hard instances back to the exact "
        "DP (threshold 0 reproduces the all-DP run bit-exactly, "
        "verified every bench run). On the text-matching task the "
        "distilled policy serves the same trace within 1% accuracy of "
        "all-DP while a buffer-64 x 6-model step drops from seconds to "
        "milliseconds (>=10x gated, orders of magnitude measured). "
        "Re-run with `PYTHONPATH=src python "
        "benchmarks/bench_policy_distill.py` (`--quick` for the CI "
        "smoke); regression-gated vs the committed `BENCH_policy.json` "
        "step-speedup floor, artifact frozen alongside as "
        "`policy_text_matching.json`.",
    ),
    ExperimentEntry(
        "SLO burst detection — online overload episodes (this repo)",
        ["slo_burst"],
        "— (not in the paper; validates the online SLO monitor the "
        "serving loop can optionally stream spans into).",
        "A diurnal trace with a 10x arrival burst over its middle third "
        "overloads a single worker; the burn-rate monitor watching the "
        "live span stream localises the overload to exactly one episode "
        "whose start and end both land within one 5s alert window of "
        "the true burst boundaries. Re-run with `PYTHONPATH=src:. "
        "python -m pytest benchmarks/test_slo_burst.py`; the same "
        "detector is replayable offline from any exported span file "
        "via `python -m repro slo --spans <spans.jsonl>`.",
    ),
    ExperimentEntry(
        "Latency attribution under burst — phase breakdown (this repo)",
        ["profile_burst"],
        "— (not in the paper; validates the per-query latency "
        "attribution engine and the DP step profiler).",
        "The same 10x mid-trace burst, attributed: every completed "
        "query's latency decomposes exactly (residual <= 1e-9) into "
        "admission/buffer/sched/queue/retry/exec phases, and the burst "
        "shows up as waiting time — the buffer+queue+sched share of "
        "latency is several times higher for in-burst queries than "
        "off-burst — rather than slower execution. Re-run with "
        "`PYTHONPATH=src:. python -m pytest "
        "benchmarks/test_profile_burst.py`; the same attribution runs "
        "offline on any span dump via `python -m repro profile --spans "
        "<spans.jsonl>`, and `python -m repro diff` compares two runs' "
        "profile artifacts with noise-floored thresholds.",
    ),
    ExperimentEntry(
        "Fleet serving — routers & admission on a 1M-query diurnal day "
        "(this repo)",
        ["fleet_routing"],
        "— (not in the paper; scales the serving layer to a "
        "multi-replica fleet, grounded in the Pochelu et al. "
        "router/worker split from PAPERS.md).",
        "A 1,063,435-query diurnal day (~30x swing between quietest "
        "and busiest hour) served by a 4-shard fleet — each shard the "
        "unmodified `EnsembleServer` loop — against a single server "
        "with identical total capacity (4x replicated workers, one "
        "buffer, one scheduler). Two regimes. *Routing* (ample "
        "admission queue, 60ms deadline): backlog-aware placement "
        "beats static consistent hashing on deadline misses by 16x "
        "(power-of-two, DMR 0.0012 vs 0.0195) at *higher* accuracy — "
        "hashing ignores load, so its unlucky shards miss while its "
        "lucky ones idle. *Admission* (queue limit 64, 150ms "
        "deadline): the single server absorbs the peak by queueing "
        "everything to the deadline edge (p50 = 144ms of a 150ms "
        "budget), while fleet admission sheds the peak-hour excess "
        "(57%, priced at full-quality work) and serves what it admits "
        "fast — served p50 20–39ms (4–7x below single) and p99 "
        "strictly under the single server's pinned 150.0ms tail. The "
        "quality cost of refusing rather than degrading is explicit "
        "in the accuracy column: the single server degrades subsets "
        "to keep everything, the fleet protects latency for what it "
        "keeps. Determinism: same seed + trace replays to "
        "byte-identical assignments and records (tested for all three "
        "routers). Re-run with `PYTHONPATH=src python "
        "benchmarks/bench_fleet_routing.py` (~20 min; `--quick` for "
        "the CI smoke); regression-gated vs the committed "
        "`BENCH_fleet.json` routing separation.",
    ),
    ExperimentEntry(
        "Design-choice ablations (this repo)",
        ["ablation_distance", "ablation_monotone", "ablation_fast_path"],
        "— (not in the paper; quantifies DESIGN.md's substrate "
        "decisions).",
        "TV-vs-JS distance, the isotonic utility repair, and the Exp-5 "
        "fast path each measurably earn their place.",
    ),
]


def render(results_dir: Path) -> str:
    """Render the full EXPERIMENTS.md text from a results directory."""
    parts = [HEADER]
    missing: List[str] = []
    for entry in REGISTRY:
        parts.append(f"\n## {entry.artefact}\n")
        parts.append(f"**Paper:** {entry.paper_claim}\n")
        if entry.reproduction_notes:
            parts.append(f"**Reproduction:** {entry.reproduction_notes}\n")
        for result_id in entry.result_ids:
            path = results_dir / f"{result_id}.txt"
            if not path.exists():
                missing.append(result_id)
                parts.append(f"*(no result file `{result_id}.txt` — run the "
                             "bench suite)*\n")
                continue
            parts.append("```")
            parts.append(path.read_text().rstrip())
            parts.append("```\n")
    if missing:
        parts.append(
            "\n---\nMissing results: " + ", ".join(sorted(set(missing)))
        )
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    """Write EXPERIMENTS.md (args: [results_dir] [output_md])."""
    argv = list(sys.argv[1:] if argv is None else argv)
    results_dir = Path(argv[0]) if argv else Path("benchmarks/results")
    output = Path(argv[1]) if len(argv) > 1 else Path("EXPERIMENTS.md")
    output.write_text(render(results_dir))
    print(f"wrote {output} from {results_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
