"""Fleet-serving experiment: routing policies vs one big server.

The experiment the multi-replica fleet exists to answer: given the
same total worker capacity, is it better to run one big
:class:`~repro.serving.server.EnsembleServer` (one buffer, one
scheduler) or N shards behind a difficulty-aware front end?

The single big server's weakness is structural, not capacity: its
scheduler invocations are serialized (``scheduling_busy``) and each
one charges overhead proportional to the buffer it plans, so under a
diurnal burst the lone scheduler becomes the bottleneck while workers
idle. Sharding multiplies the schedulers along with the workers; the
router's job is to keep the shards balanced enough that the split
costs no quality. :func:`run_fleet_comparison` measures exactly that
trade, for every registered routing policy, on one shared workload.

The synthetic setup here builds the quality/score tables directly
(difficulty-graded per-model success probabilities, noisy difficulty
scores) instead of training real models, so million-query traces are
cheap to drive — the serving side is identical to the trained tasks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.traces import diurnal_trace
from repro.fleet.config import FleetConfig
from repro.fleet.server import FleetServer
from repro.scheduling.greedy import GreedyScheduler
from repro.serving.config import ServerConfig
from repro.serving.policies import BufferedSchedulingPolicy
from repro.serving.records import ServingResult
from repro.serving.server import EnsembleServer, WorkerSpec
from repro.serving.workload import ServingWorkload
from repro.utils.rng import SeedLike, as_rng

#: Base-model inference times of the synthetic fleet task (seconds).
FLEET_LATENCIES = (0.004, 0.009, 0.018)


def synthetic_fleet_setup(
    n_pool: int = 512, seed: SeedLike = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(latencies, quality, scores)`` of the synthetic fleet task.

    Each pool sample gets a latent difficulty ``d ~ U(0, 1)``; model
    ``k``'s per-sample success probability falls with difficulty from
    its base accuracy, and a subset's quality is the probability at
    least one member succeeds (monotone in the mask, 0 for the empty
    subset). Scores are the true difficulties plus noise — the same
    imperfect-predictor shape the trained tasks produce.
    """
    rng = as_rng(seed)
    latencies = np.asarray(FLEET_LATENCIES, dtype=float)
    m = latencies.shape[0]
    base_accuracy = np.linspace(0.72, 0.9, m)
    difficulty = rng.uniform(0.0, 1.0, n_pool)
    success = np.clip(
        base_accuracy[None, :]
        - 0.5 * difficulty[:, None]
        + rng.normal(0.0, 0.05, (n_pool, m)),
        0.05,
        0.98,
    )
    quality = np.zeros((n_pool, 2 ** m))
    for mask in range(1, 2 ** m):
        members = [k for k in range(m) if (mask >> k) & 1]
        quality[:, mask] = 1.0 - np.prod(1.0 - success[:, members], axis=1)
    scores = np.clip(difficulty + rng.normal(0.0, 0.05, n_pool), 0.0, 1.0)
    return latencies, quality, scores


def make_fleet_policy(
    quality: np.ndarray, scores: np.ndarray
) -> BufferedSchedulingPolicy:
    """The buffered policy every fleet experiment serves with.

    Greedy-EDF keeps scheduler invocations cheap enough that
    million-query traces run in seconds while still exercising the
    full buffered path (buffering, overhead, rejection); the fast
    path keeps idle valleys realistic.
    """
    return BufferedSchedulingPolicy(
        "schemble",
        GreedyScheduler(order="edf"),
        quality,
        scores=scores,
        fast_path=True,
    )


def fleet_workload(
    quality: np.ndarray,
    base_rate: float,
    duration: float,
    deadline: float = 0.06,
    seed: SeedLike = 0,
) -> ServingWorkload:
    """A diurnal workload over the synthetic pool (one compressed day)."""
    rng = as_rng(seed)
    trace = diurnal_trace(base_rate, duration, seed=rng)
    n = len(trace)
    return ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=np.full(n, float(deadline)),
        sample_indices=rng.integers(quality.shape[0], size=n),
        quality=quality,
    )


def _summary(
    result: ServingResult, quality: np.ndarray, shed_rate: float = 0.0
) -> Dict[str, float]:
    """One comparison row: quality, misses, tail latency, shed share."""
    stats = result.latency_stats()
    return {
        "accuracy": result.accuracy(quality),
        "dmr": result.deadline_miss_rate(),
        "p50": stats["p50"],
        "p95": stats["p95"],
        "p99": stats["p99"],
        "rejected": float(result.n_rejected()),
        "shed_rate": shed_rate,
        "scheduler_invocations": float(result.scheduler_invocations),
    }


def run_fleet_comparison(
    latencies: Sequence[float],
    policy: BufferedSchedulingPolicy,
    workload: ServingWorkload,
    quality: np.ndarray,
    n_shards: int = 4,
    queue_limit: int = 64,
    routers: Sequence[str] = ("hash", "power_of_two", "score_aware"),
    server: Optional[ServerConfig] = None,
    workers: Optional[Sequence[WorkerSpec]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Serve one workload on a single big server and on every router.

    The single server gets ``n_shards`` replicas of the (per-shard)
    deployment — equal total capacity, one buffer, one scheduler —
    so the comparison isolates the fleet's structural effect from
    raw capacity. Returns ``{"single": row, "<router>": row, ...}``
    (see :func:`_summary` for the row columns).
    """
    latencies = np.asarray(latencies, dtype=float)
    server = server if server is not None else ServerConfig()
    per_shard = (
        list(workers)
        if workers is not None
        else [
            WorkerSpec(model_index=k, latency=float(t))
            for k, t in enumerate(latencies)
        ]
    )
    single_workers = [
        WorkerSpec(model_index=spec.model_index, latency=spec.latency)
        for _ in range(n_shards)
        for spec in per_shard
    ]
    single = EnsembleServer.from_config(
        latencies, policy, server, workers=single_workers
    ).run(workload)
    out = {"single": _summary(single, quality)}
    for router in routers:
        fleet = FleetServer.from_config(
            latencies,
            policy,
            FleetConfig.uniform(
                n_shards,
                server,
                router=router,
                queue_limit=queue_limit,
                seed=seed,
            ),
            workers=workers,
        )
        result = fleet.run(workload)
        out[router] = _summary(
            result.merged, quality, shed_rate=result.shed_rate()
        )
    return out
