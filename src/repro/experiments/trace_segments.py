"""One-day trace experiments (Figs. 1a, 9 and 14).

A compressed "day" of bursty traffic (the paper's recorded Q&A trace is
reproduced by the diurnal profile) is served end to end; metrics are
reported per time segment to show how each method reacts to the burst.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.traces import diurnal_trace
from repro.experiments.runner import make_workload, run_policy
from repro.experiments.setups import TaskSetup
from repro.serving.config import ServerConfig
from repro.serving.records import ServingResult


def make_day_trace(
    setup: TaskSetup,
    duration: float = 240.0,
    base_rate: Optional[float] = None,
    seed: int = 5,
):
    """A compressed one-day trace whose burst overloads the ensemble.

    The profile peak is 24x the base rate; the default base rate places
    the peak at roughly 2.5x the full-ensemble service capacity, which is
    what produces the ~45% burst-hour miss rate of Fig. 1a.
    """
    if base_rate is None:
        capacity = 1.0 / float(setup.latencies.max())
        base_rate = 2.5 * capacity / 24.0
    return diurnal_trace(base_rate=base_rate, duration=duration, seed=seed)


def segment_metrics(
    result: ServingResult,
    setup: TaskSetup,
    duration: float,
    n_segments: int = 24,
) -> Dict[str, List[float]]:
    """Per-segment load, DMR, accuracy and mean latency (Figs. 1a/9/14)."""
    edges = np.linspace(0.0, duration, n_segments + 1)
    load: List[float] = []
    dmr: List[float] = []
    accuracy: List[float] = []
    latency: List[float] = []
    for low, high in zip(edges[:-1], edges[1:]):
        records = [r for r in result.records if low <= r.arrival < high]
        load.append(float(len(records)))
        if not records:
            dmr.append(0.0)
            accuracy.append(0.0)
            latency.append(0.0)
            continue
        dmr.append(float(np.mean([r.missed for r in records])))
        accuracy.append(
            float(
                np.mean(
                    [
                        0.0
                        if r.missed
                        else setup.quality[r.sample_index, r.executed_mask]
                        for r in records
                    ]
                )
            )
        )
        finished = [r.latency for r in records if r.latency is not None]
        latency.append(float(np.mean(finished)) if finished else 0.0)
    return {
        "segment_edges": list(edges),
        "load": load,
        "dmr": dmr,
        "accuracy": accuracy,
        "latency": latency,
    }


def run_day_trace(
    setup: TaskSetup,
    baselines: Sequence[str],
    deadline: float,
    duration: float = 240.0,
    n_segments: int = 24,
    allow_rejection: bool = True,
    seed: int = 5,
) -> Dict[str, Dict[str, List[float]]]:
    """Serve the compressed day with each baseline; per-segment metrics."""
    trace = make_day_trace(setup, duration=duration, seed=seed)
    rng = np.random.default_rng(seed + 1)
    sample_indices = rng.integers(len(setup.pool), size=len(trace))
    workload = make_workload(
        setup, trace, deadline=deadline,
        sample_indices=sample_indices, seed=seed + 2,
    )
    policies = setup.policies()
    out: Dict[str, Dict[str, List[float]]] = {}
    for name in baselines:
        result = run_policy(
            setup,
            policies[name],
            workload,
            policy_name=name,
            config=ServerConfig(allow_rejection=allow_rejection),
        )
        out[name] = segment_metrics(result, setup, duration, n_segments)
        out[name]["overall_dmr"] = result.deadline_miss_rate()
        out[name]["overall_accuracy"] = result.accuracy(setup.quality)
    return out
