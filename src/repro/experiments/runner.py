"""Workload construction and serving-run helpers."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.data.traces import ArrivalTrace, camera_deadlines, constant_deadlines
from repro.experiments.setups import TaskSetup
from repro.serving.records import ServingResult
from repro.serving.server import EnsembleServer
from repro.serving.workload import ServingWorkload
from repro.utils.rng import SeedLike, as_rng


def make_workload(
    setup: TaskSetup,
    trace: ArrivalTrace,
    deadline: float,
    deadline_spread: float = 0.0,
    sample_indices: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> ServingWorkload:
    """Attach deadlines and pool samples to an arrival trace.

    Vehicle counting uses per-camera random deadlines (the paper's
    location-priority setup) when ``deadline_spread > 0``; the other
    tasks use constant deadlines.
    """
    rng = as_rng(seed)
    n = len(trace)
    if sample_indices is None:
        sample_indices = rng.integers(len(setup.pool), size=n)
    else:
        sample_indices = np.asarray(sample_indices, dtype=int)
        if sample_indices.shape[0] != n:
            raise ValueError(
                f"sample_indices length {sample_indices.shape[0]} does not "
                f"match trace length {n}"
            )

    if deadline_spread > 0 and setup.task == "vehicle_counting":
        cameras = np.asarray(setup.pool.metadata["camera"])[sample_indices]
        deadlines = camera_deadlines(
            cameras,
            low=max(deadline - deadline_spread, 1e-3),
            high=deadline + deadline_spread,
            seed=rng,
        )
    elif deadline_spread > 0:
        deadlines = rng.uniform(
            max(deadline - deadline_spread, 1e-3),
            deadline + deadline_spread,
            size=n,
        )
    else:
        deadlines = constant_deadlines(n, deadline)

    return ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=deadlines,
        sample_indices=sample_indices,
        quality=setup.quality,
    )


def run_policy(
    setup: TaskSetup,
    policy,
    workload: ServingWorkload,
    policy_name: Optional[str] = None,
    allow_rejection: bool = True,
    max_buffer: int = 16,
) -> ServingResult:
    """Serve ``workload`` with ``policy`` on the task's deployment."""
    name = policy_name or policy.name
    server = EnsembleServer(
        latencies=setup.latencies,
        policy=policy,
        workers=setup.workers_for(name),
        allow_rejection=allow_rejection,
        max_buffer=max_buffer,
    )
    return server.run(workload)


def summarize(result: ServingResult, setup: TaskSetup) -> Dict[str, float]:
    """Standard per-run metrics (the columns of Tables I and II)."""
    stats = result.latency_stats()
    return {
        "accuracy": result.accuracy(setup.quality),
        "processed_accuracy": result.processed_accuracy(setup.quality),
        "dmr": result.deadline_miss_rate(),
        "latency_mean": stats["mean"],
        "latency_p95": stats["p95"],
        "latency_max": stats["max"],
        "scheduler_invocations": float(result.scheduler_invocations),
    }
