"""Workload construction and serving-run helpers."""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.data.traces import ArrivalTrace, camera_deadlines, constant_deadlines
from repro.experiments.setups import TaskSetup
from repro.fleet.config import FleetConfig
from repro.fleet.server import FleetResult, FleetServer
from repro.serving.config import ServerConfig
from repro.serving.records import ServingResult
from repro.serving.server import EnsembleServer
from repro.serving.workload import ServingWorkload
from repro.utils.rng import SeedLike, as_rng


def make_workload(
    setup: TaskSetup,
    trace: ArrivalTrace,
    deadline: float,
    deadline_spread: float = 0.0,
    sample_indices: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> ServingWorkload:
    """Attach deadlines and pool samples to an arrival trace.

    Vehicle counting uses per-camera random deadlines (the paper's
    location-priority setup) when ``deadline_spread > 0``; the other
    tasks use constant deadlines.
    """
    rng = as_rng(seed)
    n = len(trace)
    if sample_indices is None:
        sample_indices = rng.integers(len(setup.pool), size=n)
    else:
        sample_indices = np.asarray(sample_indices, dtype=int)
        if sample_indices.shape[0] != n:
            raise ValueError(
                f"sample_indices length {sample_indices.shape[0]} does not "
                f"match trace length {n}"
            )

    if deadline_spread > 0 and setup.task == "vehicle_counting":
        cameras = np.asarray(setup.pool.metadata["camera"])[sample_indices]
        deadlines = camera_deadlines(
            cameras,
            low=max(deadline - deadline_spread, 1e-3),
            high=deadline + deadline_spread,
            seed=rng,
        )
    elif deadline_spread > 0:
        deadlines = rng.uniform(
            max(deadline - deadline_spread, 1e-3),
            deadline + deadline_spread,
            size=n,
        )
    else:
        deadlines = constant_deadlines(n, deadline)

    return ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=deadlines,
        sample_indices=sample_indices,
        quality=setup.quality,
    )


@dataclass(frozen=True)
class RunSpec:
    """A complete serving-run description, minus the task setup.

    Where :class:`~repro.serving.config.ServerConfig` captures server
    behaviour, ``RunSpec`` adds everything else a run needs — the policy
    to serve with and the workload shape — so experiments and CLI
    commands share one value instead of re-plumbing ``allow_rejection``
    / ``max_buffer`` / fault knobs through every signature.

    Attributes:
        policy: Key into ``setup.policies()`` (e.g. ``"schemble"``).
        config: Server configuration, including any fault plan — either
            a single-server :class:`ServerConfig` or a multi-replica
            :class:`~repro.fleet.config.FleetConfig`; with a fleet
            config, :func:`run_spec` serves the workload through a
            :class:`~repro.fleet.server.FleetServer` and returns its
            :class:`~repro.fleet.server.FleetResult`. Either way the
            config validates itself on construction — ``RunSpec`` only
            checks the type, so there is exactly one validation path
            per config class.
        deadline: Relative deadline in seconds; ``None`` picks the
            task's tightest grid deadline.
        deadline_spread: Half-width of per-query deadline jitter.
        duration: Simulated trace length in seconds.
        seed: Base seed; the trace uses ``seed`` and the workload
            attachment (samples, deadline jitter) uses ``seed + 1``.
        scheduler: Override the policy's scheduling algorithm: ``None``
            keeps whatever the task setup built (the DP for Schemble
            policies), ``"dp"`` forces a fresh exact
            :class:`~repro.scheduling.dp.DPScheduler` at the pipeline's
            δ, ``"learned"`` serves the distilled fast-path policy
            (:class:`~repro.scheduling.policy_fast.LearnedScheduler`)
            with a DP fallback at the same δ. Only buffered policies
            schedule, so an override on an immediate policy is an
            error.
        policy_model: Path to the ``PolicyModel`` artifact written by
            ``python -m repro distill`` (required with
            ``scheduler="learned"``).
        regret_threshold: Estimated utility gap at which the learned
            scheduler falls back to the exact DP; ``0`` means every
            invocation is exact DP (bit-identical to
            ``scheduler="dp"``).
    """

    policy: str = "schemble"
    config: Union[ServerConfig, FleetConfig] = field(
        default_factory=ServerConfig
    )
    deadline: Optional[float] = None
    deadline_spread: float = 0.0
    duration: float = 30.0
    seed: int = 0
    scheduler: Optional[str] = None
    policy_model: Optional[str] = None
    regret_threshold: float = 0.5

    def __post_init__(self):
        if not isinstance(self.config, (ServerConfig, FleetConfig)):
            raise TypeError(
                f"config must be a ServerConfig or FleetConfig, got "
                f"{type(self.config).__name__}"
            )
        if self.scheduler not in (None, "dp", "learned"):
            raise ValueError(
                f"scheduler must be None, 'dp' or 'learned', got "
                f"{self.scheduler!r}"
            )
        if self.scheduler == "learned" and self.policy_model is None:
            raise ValueError(
                "scheduler='learned' requires policy_model (the artifact "
                "written by `python -m repro distill`)"
            )

    def replace(self, **changes) -> "RunSpec":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


def resolve_policy(setup: TaskSetup, spec: RunSpec):
    """The serving policy a spec asks for, scheduler override applied.

    With ``spec.scheduler`` set, the setup's policy is cloned around a
    freshly built scheduler (``with_scheduler``), so the cached setup's
    own policy objects are never mutated.
    """
    policy = setup.policies()[spec.policy]
    if spec.scheduler is None:
        return policy
    from repro.serving.policies import BufferedSchedulingPolicy

    if not isinstance(policy, BufferedSchedulingPolicy):
        raise ValueError(
            f"policy {spec.policy!r} does not run a scheduler; "
            f"scheduler={spec.scheduler!r} only applies to buffered "
            f"policies"
        )
    from repro.scheduling.dp import DPScheduler

    exact = DPScheduler(delta=setup.schemble.delta)
    if spec.scheduler == "dp":
        return policy.with_scheduler(exact)
    from repro.scheduling.policy_fast import LearnedScheduler, PolicyModel

    scheduler = LearnedScheduler(
        PolicyModel.load(spec.policy_model),
        regret_threshold=spec.regret_threshold,
        fallback=exact,
    )
    return policy.with_scheduler(scheduler)


def run_spec(
    setup: TaskSetup,
    spec: RunSpec,
    trace: Optional[ArrivalTrace] = None,
    tracer=None,
    explain=None,
) -> Union[ServingResult, FleetResult]:
    """Run one :class:`RunSpec` on ``setup`` and return its result.

    Builds the task's bursty day trace when ``trace`` is not supplied,
    attaches deadlines/samples with ``make_workload``, and serves with
    the spec's policy under the spec's config: a
    :class:`ServerConfig` runs one :class:`EnsembleServer`, a
    :class:`~repro.fleet.config.FleetConfig` runs a
    :class:`~repro.fleet.server.FleetServer` (returning its
    :class:`~repro.fleet.server.FleetResult`). Pass a
    :class:`~repro.obs.explain.DecisionLog` as ``explain`` to capture
    per-query scheduler decision records (single-server runs only).
    """
    # Local import: trace_segments itself builds on this module.
    from repro.experiments.trace_segments import make_day_trace

    if trace is None:
        trace = make_day_trace(setup, duration=spec.duration, seed=spec.seed)
    deadline = (
        spec.deadline if spec.deadline is not None
        else min(setup.deadline_grid)
    )
    workload = make_workload(
        setup,
        trace,
        deadline=deadline,
        deadline_spread=spec.deadline_spread,
        seed=spec.seed + 1,
    )
    policy = resolve_policy(setup, spec)
    if isinstance(spec.config, FleetConfig):
        if explain is not None:
            raise ValueError(
                "decision explainability is per-shard; fleet runs do "
                "not support explain="
            )
        fleet = FleetServer.from_config(
            setup.latencies,
            policy,
            spec.config,
            workers=setup.workers_for(spec.policy),
            tracer=tracer,
        )
        return fleet.run(workload)
    return run_policy(
        setup,
        policy,
        workload,
        policy_name=spec.policy,
        config=spec.config,
        tracer=tracer,
        explain=explain,
    )


def run_policy(
    setup: TaskSetup,
    policy,
    workload: ServingWorkload,
    policy_name: Optional[str] = None,
    *,
    config: Optional[ServerConfig] = None,
    tracer=None,
    explain=None,
    allow_rejection: Optional[bool] = None,
    max_buffer: Optional[int] = None,
) -> ServingResult:
    """Serve ``workload`` with ``policy`` on the task's deployment.

    Server behaviour (buffering, rejection, fault injection, timeouts)
    comes from ``config``; the bare ``allow_rejection``/``max_buffer``
    keywords are a deprecated shim for the pre-config call shape.

    Pass a :class:`~repro.obs.tracer.RecordingTracer` as ``tracer`` to
    collect the run's span stream and metrics, and/or a
    :class:`~repro.obs.explain.DecisionLog` as ``explain`` to capture
    per-query scheduler decision records (the default NullTracer keeps
    the run untouched).
    """
    if allow_rejection is not None or max_buffer is not None:
        if config is not None:
            raise TypeError(
                "pass either config= or the deprecated "
                "allow_rejection=/max_buffer= keywords, not both"
            )
        warnings.warn(
            "run_policy(allow_rejection=..., max_buffer=...) is "
            "deprecated and will be removed in v2.0; pass "
            "config=ServerConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = ServerConfig(
            allow_rejection=(
                True if allow_rejection is None else allow_rejection
            ),
            max_buffer=16 if max_buffer is None else max_buffer,
        )
    if config is None:
        config = ServerConfig()
    name = policy_name or policy.name
    server = EnsembleServer.from_config(
        setup.latencies,
        policy,
        config,
        workers=setup.workers_for(name),
        tracer=tracer,
        explain=explain,
    )
    return server.run(workload)


def summarize(result: ServingResult, setup: TaskSetup) -> Dict[str, float]:
    """Standard per-run metrics (the columns of Tables I and II).

    Scheduler cost comes straight off the run: the server measures the
    real wall-clock of every ``schedule()`` call (perf_counter), so no
    consumer needs to re-clock the scheduler.
    """
    stats = result.latency_stats()
    slack = result.deadline_slack()
    return {
        "accuracy": result.accuracy(setup.quality),
        "processed_accuracy": result.processed_accuracy(setup.quality),
        "dmr": result.deadline_miss_rate(),
        "latency_mean": stats["mean"],
        "latency_p50": stats["p50"],
        "latency_p95": stats["p95"],
        "latency_p99": stats["p99"],
        "latency_max": stats["max"],
        "slack_mean": float(slack.mean()) if slack.size else float("nan"),
        "scheduler_invocations": float(result.scheduler_invocations),
        "scheduler_wall_time": result.scheduler_wall_time,
        "degraded_rate": result.degraded_rate(),
        "retries": float(result.total_retries()),
    }
