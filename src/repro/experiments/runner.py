"""Workload construction and serving-run helpers."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.data.traces import ArrivalTrace, camera_deadlines, constant_deadlines
from repro.experiments.setups import TaskSetup
from repro.serving.records import ServingResult
from repro.serving.server import EnsembleServer
from repro.serving.workload import ServingWorkload
from repro.utils.rng import SeedLike, as_rng


def make_workload(
    setup: TaskSetup,
    trace: ArrivalTrace,
    deadline: float,
    deadline_spread: float = 0.0,
    sample_indices: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> ServingWorkload:
    """Attach deadlines and pool samples to an arrival trace.

    Vehicle counting uses per-camera random deadlines (the paper's
    location-priority setup) when ``deadline_spread > 0``; the other
    tasks use constant deadlines.
    """
    rng = as_rng(seed)
    n = len(trace)
    if sample_indices is None:
        sample_indices = rng.integers(len(setup.pool), size=n)
    else:
        sample_indices = np.asarray(sample_indices, dtype=int)
        if sample_indices.shape[0] != n:
            raise ValueError(
                f"sample_indices length {sample_indices.shape[0]} does not "
                f"match trace length {n}"
            )

    if deadline_spread > 0 and setup.task == "vehicle_counting":
        cameras = np.asarray(setup.pool.metadata["camera"])[sample_indices]
        deadlines = camera_deadlines(
            cameras,
            low=max(deadline - deadline_spread, 1e-3),
            high=deadline + deadline_spread,
            seed=rng,
        )
    elif deadline_spread > 0:
        deadlines = rng.uniform(
            max(deadline - deadline_spread, 1e-3),
            deadline + deadline_spread,
            size=n,
        )
    else:
        deadlines = constant_deadlines(n, deadline)

    return ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=deadlines,
        sample_indices=sample_indices,
        quality=setup.quality,
    )


def run_policy(
    setup: TaskSetup,
    policy,
    workload: ServingWorkload,
    policy_name: Optional[str] = None,
    allow_rejection: bool = True,
    max_buffer: int = 16,
    tracer=None,
) -> ServingResult:
    """Serve ``workload`` with ``policy`` on the task's deployment.

    Pass a :class:`~repro.obs.tracer.RecordingTracer` as ``tracer`` to
    collect the run's span stream and metrics (the default NullTracer
    keeps the run untouched).
    """
    name = policy_name or policy.name
    server = EnsembleServer(
        latencies=setup.latencies,
        policy=policy,
        workers=setup.workers_for(name),
        allow_rejection=allow_rejection,
        max_buffer=max_buffer,
        tracer=tracer,
    )
    return server.run(workload)


def summarize(result: ServingResult, setup: TaskSetup) -> Dict[str, float]:
    """Standard per-run metrics (the columns of Tables I and II).

    Scheduler cost comes straight off the run: the server measures the
    real wall-clock of every ``schedule()`` call (perf_counter), so no
    consumer needs to re-clock the scheduler.
    """
    stats = result.latency_stats()
    slack = result.deadline_slack()
    return {
        "accuracy": result.accuracy(setup.quality),
        "processed_accuracy": result.processed_accuracy(setup.quality),
        "dmr": result.deadline_miss_rate(),
        "latency_mean": stats["mean"],
        "latency_p50": stats["p50"],
        "latency_p95": stats["p95"],
        "latency_p99": stats["p99"],
        "latency_max": stats["max"],
        "slack_mean": float(slack.mean()) if slack.size else float("nan"),
        "scheduler_invocations": float(result.scheduler_invocations),
        "scheduler_wall_time": result.scheduler_wall_time,
    }
