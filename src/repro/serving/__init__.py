"""Discrete-event simulation of the ensemble serving system (Section IV)."""

from repro.serving.workload import ServingWorkload
from repro.serving.config import ServerConfig
from repro.serving.records import QueryRecord, ServingResult
from repro.serving.policies import (
    BufferedSchedulingPolicy,
    ImmediateMaskPolicy,
    ServingPolicy,
)
from repro.serving.server import EnsembleServer, WorkerSpec

__all__ = [
    "ServingWorkload",
    "ServerConfig",
    "QueryRecord",
    "ServingResult",
    "ServingPolicy",
    "ImmediateMaskPolicy",
    "BufferedSchedulingPolicy",
    "EnsembleServer",
    "WorkerSpec",
]
