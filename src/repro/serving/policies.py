"""Serving policies: how arriving queries become model inference tasks.

Two families exist, matching the paper's taxonomy:

* *Immediate* policies (Original, Static, DES, Gating) choose a model
  subset the moment a query arrives, from its features alone. The
  experiments precompute that per-sample choice, so the policy is a mask
  lookup.
* *Buffered* policies (the Schemble variants) hold arrivals in a query
  buffer and run a scheduling algorithm over the whole buffer whenever a
  model idles, choosing subsets from predicted difficulty *and* queue
  state (Section IV).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.scheduling.problem import QueryRequest



class ServingPolicy:
    """Common policy surface consumed by :class:`EnsembleServer`.

    ``fast_path`` lives on the base class so the server's event loop can
    read it unconditionally (immediate policies simply never enable it).
    """

    name: str = "policy"
    buffered: bool = False
    entry_delay: float = 0.0
    fast_path: bool = False


class ImmediateMaskPolicy(ServingPolicy):
    """Select a precomputed subset mask on arrival.

    Args:
        name: Policy name for reporting.
        masks: Either one mask for every query (Original/Static) or a
            per-pool-sample mask array (DES/Gating — their choice depends
            only on the query features, so it is precomputable).
    """

    buffered = False

    def __init__(self, name: str, masks: Union[int, np.ndarray]):
        self.name = name
        if isinstance(masks, (int, np.integer)):
            if masks <= 0:
                raise ValueError(
                    f"constant mask must select at least one model, got {masks}"
                )
            self._constant: Optional[int] = int(masks)
            self._masks: Optional[np.ndarray] = None
        else:
            masks = np.asarray(masks, dtype=int)
            if masks.ndim != 1:
                raise ValueError(f"masks must be 1-d, got shape {masks.shape}")
            if np.any(masks <= 0):
                raise ValueError("per-sample masks must select >= 1 model")
            self._constant = None
            self._masks = masks

    def mask_for(self, sample_index: int) -> int:
        if self._constant is not None:
            return self._constant
        if sample_index >= self._masks.shape[0]:
            raise IndexError(
                f"sample {sample_index} beyond mask table of "
                f"{self._masks.shape[0]}"
            )
        return int(self._masks[sample_index])


class BufferedSchedulingPolicy(ServingPolicy):
    """Schemble-style buffered policy driving a scheduling algorithm.

    Args:
        name: Policy name for reporting.
        scheduler: Object with ``schedule(SchedulingInstance) ->
            ScheduleResult`` (DP or greedy).
        utilities: ``(n_pool, 2**m)`` reward rows the scheduler
            maximises — built from predicted discrepancy scores and the
            accuracy profile.
        scores: Per-pool-sample difficulty estimates (drives SJF order
            and is recorded on queries).
        entry_delay: Time a query spends in discrepancy-score prediction
            before it becomes schedulable (Fig. 13 overhead).
        fast_path: The paper's Exp-5 waiting-time optimisation: when the
            system is idle (no buffered queries, every worker free), an
            arriving query bypasses prediction and scheduling and goes
            straight to the fastest base model.
    """

    buffered = True

    def __init__(
        self,
        name: str,
        scheduler,
        utilities: np.ndarray,
        scores: Optional[np.ndarray] = None,
        entry_delay: float = 0.0,
        fast_path: bool = False,
    ):
        self.name = name
        self.scheduler = scheduler
        self.utilities = np.asarray(utilities, dtype=float)
        if self.utilities.ndim != 2:
            raise ValueError(
                f"utilities must be 2-d, got shape {self.utilities.shape}"
            )
        if np.any(np.abs(self.utilities[:, 0]) > 1e-9):
            raise ValueError("utility of the empty subset must be 0")
        if scores is None:
            scores = np.zeros(self.utilities.shape[0])
        self.scores = np.asarray(scores, dtype=float)
        if self.scores.shape[0] != self.utilities.shape[0]:
            raise ValueError("scores and utilities disagree on pool size")
        if entry_delay < 0:
            raise ValueError(f"entry_delay must be >= 0, got {entry_delay}")
        self.entry_delay = float(entry_delay)
        self.fast_path = bool(fast_path)

    def with_scheduler(
        self, scheduler, name: Optional[str] = None
    ) -> "BufferedSchedulingPolicy":
        """A copy of this policy driving ``scheduler`` instead.

        The utility/score tables, entry delay and fast-path flag carry
        over unchanged — this is how ``RunSpec(scheduler="learned")``
        swaps the DP for a
        :class:`~repro.scheduling.policy_fast.LearnedScheduler` (or
        back, with ``scheduler="dp"``) without rebuilding the pipeline.
        """
        return BufferedSchedulingPolicy(
            name=name if name is not None else self.name,
            scheduler=scheduler,
            utilities=self.utilities,
            scores=self.scores,
            entry_delay=self.entry_delay,
            fast_path=self.fast_path,
        )

    def utilities_for(self, sample_index: int) -> np.ndarray:
        return self.utilities[sample_index]

    def score_for(self, sample_index: int) -> float:
        return float(self.scores[sample_index])

    def make_request(
        self,
        query_id: int,
        arrival: float,
        deadline: float,
        sample_index: int,
    ) -> QueryRequest:
        """Build the scheduler-facing request for one buffered query.

        The server builds each query's request once per run and reuses
        it across scheduler invocations: a query that stays buffered
        through several ticks keeps its
        :meth:`~repro.scheduling.problem.QueryRequest.quantised_utilities`
        cache, so overlapping buffers never re-quantise the same reward
        row.
        """
        return QueryRequest(
            query_id=query_id,
            arrival=arrival,
            deadline=deadline,
            utilities=self.utilities_for(sample_index),
            score=self.score_for(sample_index),
            sample_index=sample_index,
        )
