"""Event-driven serving simulator.

The server deploys one worker per base model (Schemble's memory
constraint) or an explicit worker list with replicas (static selection).
Workers execute assigned tasks non-preemptively in FIFO order; the
paper's approximately-constant deep-model execution times make a
worker's availability exactly predictable, which is what both the
rejection estimate and the DP's busy-time vector rely on.

Buffered policies additionally model scheduling overhead: each scheduler
invocation charges ``overhead_base + overhead_per_unit * work_units``
of wall-clock time before its plan commits, so an over-fine quantisation
step (δ = 0.001 in Exp-4) pays for its own table size.

Every event-loop branch can emit a query-lifecycle span through the
server's :class:`~repro.obs.tracer.Tracer`. The default ``NULL_TRACER``
keeps this free: the tracer's ``enabled`` flag is read once per run and
each emit site is guarded by that boolean. Real scheduler wall-clock
(``time.perf_counter`` around each ``schedule()`` call) is measured
unconditionally — two timer reads per invocation, negligible next to
the scheduling work itself — and surfaces as
``ServingResult.scheduler_wall_time``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs import spans as sp
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.scheduling.problem import QueryRequest, SchedulingInstance
from repro.serving.policies import BufferedSchedulingPolicy, ServingPolicy
from repro.serving.records import QueryRecord, ServingResult
from repro.serving.workload import ServingWorkload
from repro.utils.validation import check_positive


@dataclass
class WorkerSpec:
    """One deployed model instance."""

    model_index: int
    latency: float

    def __post_init__(self):
        if self.model_index < 0:
            raise ValueError(
                f"model_index must be >= 0, got {self.model_index}"
            )
        check_positive("latency", self.latency)


class _Worker:
    """Runtime worker state: a FIFO accumulator of committed tasks."""

    __slots__ = ("spec", "free_time", "wid")

    def __init__(self, spec: WorkerSpec, wid: int = 0):
        self.spec = spec
        self.free_time = 0.0
        self.wid = wid

    def assign(self, now: float) -> float:
        """Append one task; returns its completion time."""
        start = max(self.free_time, now)
        self.free_time = start + self.spec.latency
        return self.free_time


# Event kinds, ordered so ties at equal time resolve sensibly:
# completions release capacity before new work is planned, and the
# scheduler only runs after every same-instant arrival has joined the
# buffer (so a burst is planned as a batch, not one query at a time).
_TASK_DONE = 0
_COMMIT = 1
_ARRIVAL = 2
_ENTER_BUFFER = 3
_SCHEDULE = 4


class EnsembleServer:
    """Simulates one serving run of a policy over a workload.

    Args:
        latencies: Per-base-model inference time (seconds).
        policy: The serving policy under test.
        workers: Explicit deployment (for static selection with
            replicas); defaults to one worker per base model.
        allow_rejection: Skip queries whose estimated completion exceeds
            their deadline (the paper's Exp-1 setting). When False every
            query is processed (Exp-2 / Table II).
        max_buffer: Largest buffer slice handed to the scheduler at once.
        overhead_base: Fixed per-invocation scheduling delay (seconds).
        overhead_per_unit: Scheduling delay per scheduler work unit.
        tracer: Observability hook; defaults to the zero-overhead
            ``NULL_TRACER``. Pass a ``RecordingTracer`` to collect the
            span stream and run metrics.
    """

    def __init__(
        self,
        latencies: Sequence[float],
        policy: ServingPolicy,
        workers: Optional[Sequence[WorkerSpec]] = None,
        allow_rejection: bool = True,
        max_buffer: int = 16,
        overhead_base: float = 2e-4,
        overhead_per_unit: float = 2e-8,
        tracer: Optional[Tracer] = None,
    ):
        self.latencies = np.asarray(latencies, dtype=float)
        if self.latencies.ndim != 1 or np.any(self.latencies <= 0):
            raise ValueError("latencies must be a 1-d array of positives")
        self.policy = policy
        if workers is None:
            workers = [
                WorkerSpec(model_index=k, latency=float(t))
                for k, t in enumerate(self.latencies)
            ]
        self._workers = [_Worker(spec, wid) for wid, spec in enumerate(workers)]
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = self.tracer.enabled
        self._sched_wall = 0.0
        deployed = {w.spec.model_index for w in self._workers}
        if not deployed.issubset(range(self.latencies.shape[0])):
            raise ValueError("worker references an unknown model index")
        self.allow_rejection = allow_rejection
        if max_buffer < 1:
            raise ValueError(f"max_buffer must be >= 1, got {max_buffer}")
        self.max_buffer = max_buffer
        self.overhead_base = check_positive(
            "overhead_base", overhead_base, allow_zero=True
        )
        self.overhead_per_unit = check_positive(
            "overhead_per_unit", overhead_per_unit, allow_zero=True
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, workload: ServingWorkload) -> ServingResult:
        """Replay the workload; returns per-query records."""
        if workload.n_models != self.latencies.shape[0]:
            raise ValueError(
                f"workload encodes {workload.n_models} models, server has "
                f"{self.latencies.shape[0]}"
            )
        for worker in self._workers:
            worker.free_time = 0.0

        tracer = self.tracer
        trace = self._trace = tracer.enabled
        self._sched_wall = 0.0

        records: Dict[int, QueryRecord] = {}
        events: List = []
        sequence = itertools.count()

        for i in range(workload.n_queries):
            heapq.heappush(
                events,
                (float(workload.arrivals[i]), next(sequence), _ARRIVAL, i),
            )
            records[i] = QueryRecord(
                query_id=i,
                sample_index=int(workload.sample_indices[i]),
                arrival=float(workload.arrivals[i]),
                deadline=float(workload.arrivals[i] + workload.deadlines[i]),
            )

        buffer: List[int] = []
        scheduling_busy = False
        invocations = 0
        total_work = 0

        buffered = isinstance(self.policy, BufferedSchedulingPolicy)

        def try_schedule(now: float):
            nonlocal scheduling_busy, invocations, total_work
            if scheduling_busy or not buffer:
                return
            if not any(w.free_time <= now + 1e-12 for w in self._workers):
                return
            # Snapshot the earliest-deadline slice of the buffer.
            buffer.sort(key=lambda qid: records[qid].deadline)
            snapshot = buffer[: self.max_buffer]
            del buffer[: len(snapshot)]

            queries = [
                QueryRequest(
                    query_id=qid,
                    arrival=records[qid].arrival,
                    deadline=records[qid].deadline,
                    utilities=self.policy.utilities_for(
                        records[qid].sample_index
                    ),
                    score=self.policy.score_for(records[qid].sample_index),
                    sample_index=records[qid].sample_index,
                )
                for qid in snapshot
            ]
            busy_until = self._busy_per_model(now)
            instance = SchedulingInstance(
                queries=queries,
                latencies=self.latencies,
                busy_until=busy_until,
                now=now,
            )
            wall_start = time.perf_counter()
            result = self.policy.scheduler.schedule(instance)
            wall = time.perf_counter() - wall_start
            self._sched_wall += wall
            invocations += 1
            total_work += result.work_units
            overhead = (
                self.overhead_base
                + self.overhead_per_unit * result.work_units
            )
            scheduling_busy = True
            if trace:
                tracer.emit(
                    sp.SCHEDULE, now,
                    batch=len(snapshot),
                    depth=len(buffer),
                    work_units=result.work_units,
                    overhead_sim_s=overhead,
                    wall_s=wall,
                )
            heapq.heappush(
                events,
                (now + overhead, next(sequence), _COMMIT, result.decisions),
            )

        def commit(now: float, decisions):
            """Apply one plan: reject infeasible queries and dispatch the
            plan's EDF prefix while some model is still idle. Queries
            beyond that stay buffered, so later arrivals can reshape
            their subsets (the paper's wait-for-idling-models rule)."""
            nonlocal scheduling_busy
            scheduling_busy = False
            if trace:
                tracer.emit(sp.COMMIT, now, decisions=len(decisions))
            for decision in decisions:
                record = records[decision.query_id]
                mask = decision.mask
                if mask == 0 and not self.allow_rejection:
                    # Forced processing: fall back to the fastest model.
                    mask = 1 << int(np.argmin(self.latencies))
                if mask == 0:
                    # Deadlines only get closer; infeasible stays so.
                    record.rejected = True
                    if trace:
                        tracer.emit(
                            sp.REJECT, now, decision.query_id,
                            reason="infeasible",
                        )
                    continue
                if not any(w.free_time <= now + 1e-12 for w in self._workers):
                    buffer.append(decision.query_id)
                    if trace:
                        tracer.emit(
                            sp.REQUEUE, now, decision.query_id,
                            depth=len(buffer),
                        )
                    continue
                self._dispatch(record, mask, now, events, sequence)

        def dispatch_immediate(now: float, qid: int):
            record = records[qid]
            mask = self.policy.mask_for(record.sample_index)
            if self.allow_rejection:
                estimate = self._estimate_completion(mask, now)
                if estimate > record.deadline + 1e-12:
                    record.rejected = True
                    if trace:
                        tracer.emit(
                            sp.REJECT, now, qid, reason="estimate",
                        )
                    return
            self._dispatch(record, mask, now, events, sequence)

        fastest_mask = 1 << int(np.argmin(self.latencies))

        now = 0.0
        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                if trace:
                    tracer.emit(
                        sp.ARRIVAL, now, payload,
                        deadline=records[payload].deadline,
                    )
                if buffered:
                    idle_system = (
                        getattr(self.policy, "fast_path", False)
                        and not buffer
                        and not scheduling_busy
                        and all(w.free_time <= now + 1e-12 for w in self._workers)
                    )
                    if idle_system:
                        # Exp-5 fast path: skip prediction + scheduling
                        # entirely when the system is idle.
                        if trace:
                            tracer.emit(sp.FAST_PATH, now, payload)
                        self._dispatch(
                            records[payload], fastest_mask, now, events, sequence
                        )
                        continue
                    delay = self.policy.entry_delay
                    heapq.heappush(
                        events,
                        (now + delay, next(sequence), _ENTER_BUFFER, payload),
                    )
                else:
                    dispatch_immediate(now, payload)
            elif kind == _ENTER_BUFFER:
                buffer.append(payload)
                if trace:
                    tracer.emit(
                        sp.ENTER_BUFFER, now, payload, depth=len(buffer)
                    )
                # Defer planning to a same-time _SCHEDULE event so every
                # arrival in this instant is in the buffer first.
                heapq.heappush(events, (now, next(sequence), _SCHEDULE, None))
            elif kind == _SCHEDULE:
                try_schedule(now)
            elif kind == _COMMIT:
                commit(now, payload)
                try_schedule(now)
            elif kind == _TASK_DONE:
                qid, model_index = payload
                record = records[qid]
                record.executed_mask |= 1 << model_index
                record.pending_tasks -= 1
                if trace:
                    tracer.emit(sp.TASK_DONE, now, qid, model=model_index)
                if record.pending_tasks == 0:
                    record.completion = now
                    if trace:
                        tracer.emit(
                            sp.COMPLETE, now, qid,
                            latency=now - record.arrival,
                            slack=record.deadline - now,
                        )
                if buffered:
                    try_schedule(now)

        # Anything still buffered never ran (trace ended): count as missed.
        for qid in buffer:
            records[qid].rejected = True
            if trace:
                tracer.emit(sp.REJECT, now, qid, reason="unserved")
        tracer.finalize(now)

        return ServingResult(
            records=[records[i] for i in range(workload.n_queries)],
            policy_name=self.policy.name,
            scheduler_invocations=invocations,
            scheduler_work_units=total_work,
            scheduler_wall_time=self._sched_wall,
            metrics=tracer.metrics,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _workers_for(self, model_index: int) -> List[_Worker]:
        chosen = [
            w for w in self._workers if w.spec.model_index == model_index
        ]
        if not chosen:
            raise ValueError(f"no deployed worker serves model {model_index}")
        return chosen

    def _busy_per_model(self, now: float) -> np.ndarray:
        """Remaining committed work per base model (min across replicas)."""
        busy = np.zeros(self.latencies.shape[0])
        for k in range(busy.shape[0]):
            candidates = [
                max(0.0, w.free_time - now)
                for w in self._workers
                if w.spec.model_index == k
            ]
            busy[k] = min(candidates) if candidates else np.inf
        return busy

    def _estimate_completion(self, mask: int, now: float) -> float:
        """Estimated completion time of ``mask`` dispatched right now."""
        estimate = now
        for k in range(self.latencies.shape[0]):
            if (mask >> k) & 1:
                worker = min(self._workers_for(k), key=lambda w: w.free_time)
                finish = max(worker.free_time, now) + worker.spec.latency
                estimate = max(estimate, finish)
        return estimate

    def _dispatch(self, record, mask, now, events, sequence):
        record.scheduled_mask = mask
        count = 0
        trace = self._trace
        for k in range(self.latencies.shape[0]):
            if (mask >> k) & 1:
                worker = min(self._workers_for(k), key=lambda w: w.free_time)
                finish = worker.assign(now)
                if trace:
                    # start = max(free_time, now) as of before assign().
                    self.tracer.emit(
                        sp.DISPATCH, now, record.query_id,
                        model=k, worker=worker.wid,
                        start=finish - worker.spec.latency, finish=finish,
                    )
                heapq.heappush(
                    events,
                    (finish, next(sequence), _TASK_DONE, (record.query_id, k)),
                )
                count += 1
        record.pending_tasks = count
        if trace:
            self.tracer.emit(sp.PLAN, now, record.query_id, size=count)
