"""Event-driven serving simulator.

The server deploys one worker per base model (Schemble's memory
constraint) or an explicit worker list with replicas (static selection).
Workers execute assigned tasks non-preemptively in FIFO order; the
paper's approximately-constant deep-model execution times make a
worker's availability exactly predictable, which is what both the
rejection estimate and the DP's busy-time vector rely on.

Buffered policies additionally model scheduling overhead: each scheduler
invocation charges ``overhead_base + overhead_per_unit * work_units``
of wall-clock time before its plan commits, so an over-fine quantisation
step (δ = 0.001 in Exp-4) pays for its own table size.

Construction goes through a frozen :class:`ServerConfig` (see
``serving/config.py``); the old per-knob keyword arguments still work
behind a :class:`DeprecationWarning` shim.

Fault injection breaks the paper's reliability assumption on purpose:
with an active :class:`~repro.faults.plan.FaultPlan` the event loop
switches to queue-tracking workers and reacts to injected jitter,
transient failures, timeouts and crash windows with bounded retries,
failover re-planning (revoked commitments re-dispatched onto live
siblings) and graceful degradation — a query whose tasks partially
failed is still answered from the executed subset (KNN filling +
stacking make the partial answer meaningful) instead of being dropped.
With a null plan the fault machinery is bypassed entirely and the loop
is event-for-event identical to the reliable server.

Every event-loop branch can emit a query-lifecycle span through the
server's :class:`~repro.obs.tracer.Tracer`. The default ``NULL_TRACER``
keeps this free: the tracer's ``enabled`` flag is read once per run and
each emit site is guarded by that boolean. Real scheduler wall-clock
(``time.perf_counter`` around each ``schedule()`` call) is measured
unconditionally — two timer reads per invocation, negligible next to
the scheduling work itself — and surfaces as
``ServingResult.scheduler_wall_time``.
"""

from __future__ import annotations

import heapq
import itertools
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.faults.injector import FaultInjector
from repro.obs import spans as sp
from repro.obs.explain import DecisionLog, DecisionRecord
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.scheduling.problem import QueryRequest, SchedulingInstance
from repro.serving.config import ServerConfig
from repro.serving.policies import BufferedSchedulingPolicy, ServingPolicy
from repro.serving.records import QueryRecord, ServingResult
from repro.serving.workload import ServingWorkload
from repro.utils.validation import check_positive


@dataclass
class WorkerSpec:
    """One deployed model instance."""

    model_index: int
    latency: float

    def __post_init__(self):
        if self.model_index < 0:
            raise ValueError(
                f"model_index must be >= 0, got {self.model_index}"
            )
        check_positive("latency", self.latency)


class _Worker:
    """Reliable-path worker state: a FIFO accumulator of committed work.

    Only used when the config is fault-free; its single ``free_time``
    float is what makes availability exactly predictable.
    """

    __slots__ = ("spec", "free_time", "wid", "retired")

    def __init__(self, spec: WorkerSpec, wid: int = 0):
        self.spec = spec
        self.free_time = 0.0
        self.wid = wid
        # Set by retire_replica_set(): a retired worker finishes its
        # committed work but is excluded from all placement decisions.
        self.retired = False

    def assign(self, now: float) -> float:
        """Append one task; returns its completion time."""
        start = max(self.free_time, now)
        self.free_time = start + self.spec.latency
        return self.free_time


class _Task:
    """One model execution attempt under fault injection."""

    __slots__ = (
        "query_id", "model_index", "attempt", "worker",
        "start", "finish", "fails", "state", "enqueued",
    )

    def __init__(self, query_id: int, model_index: int, attempt: int = 0):
        self.query_id = query_id
        self.model_index = model_index
        self.attempt = attempt
        self.worker = -1
        self.start = 0.0
        self.finish = 0.0
        self.fails = False
        self.state = "queued"  # queued | running | done | abandoned | killed
        self.enqueued = 0.0  # when this attempt last joined a queue


class _FaultWorker:
    """Fault-path worker state: an explicit task queue so commitments
    can be revoked when the worker crashes mid-buffer."""

    __slots__ = ("spec", "wid", "queue", "current", "down", "resume_at")

    def __init__(self, spec: WorkerSpec, wid: int):
        self.spec = spec
        self.wid = wid
        self.queue: deque = deque()
        self.current: Optional[_Task] = None
        self.down = False
        self.resume_at = 0.0

    def idle(self) -> bool:
        return not self.down and self.current is None and not self.queue

    def available_at(self, now: float) -> float:
        """Expected time this worker could finish one more task's start:
        recovery + in-flight remainder + queued base latencies. Under
        jitter this is an *estimate* — exactly the uncertainty the
        paper's model excludes."""
        t = max(now, self.resume_at) if self.down else now
        if self.current is not None:
            t = max(t, self.current.finish)
        return t + self.spec.latency * len(self.queue)


# Event kinds, ordered so ties at equal time resolve sensibly:
# completions release capacity before new work is planned, and the
# scheduler only runs after every same-instant arrival has joined the
# buffer (so a burst is planned as a batch, not one query at a time).
_TASK_DONE = 0
_COMMIT = 1
_ARRIVAL = 2
_ENTER_BUFFER = 3
_SCHEDULE = 4
# Fault-path events (never scheduled under a null plan).
_WORKER_DOWN = 5
_WORKER_UP = 6
_TASK_END = 7
_TASK_TIMEOUT = 8
_RETRY = 9


class EnsembleServer:
    """Simulates one serving run of a policy over a workload.

    Args:
        latencies: Per-base-model inference time (seconds).
        policy: The serving policy under test.
        workers: Explicit deployment (for static selection with
            replicas); defaults to one worker per base model.
        config: Frozen :class:`ServerConfig` bundling every serving-loop
            knob (rejection, buffering, scheduling overhead, fault plan,
            retry policy, degraded answers). Defaults to
            ``ServerConfig()``.
        tracer: Observability hook; defaults to the zero-overhead
            ``NULL_TRACER``. Pass a ``RecordingTracer`` to collect the
            span stream and run metrics.
        explain: Opt-in :class:`~repro.obs.explain.DecisionLog`; when
            set, every scheduling decision is captured as a
            :class:`~repro.obs.explain.DecisionRecord` (inputs the
            scheduler saw, DP frontier stats, chosen mask, predicted vs
            realized finish). ``None`` (the default) keeps the serving
            loop on the unexplained path: results stay bit-identical
            and no capture code runs.

    The old per-knob call shape
    (``EnsembleServer(lat, policy, workers, allow_rejection=...,
    max_buffer=..., overhead_base=..., overhead_per_unit=...)``) still
    works but emits a :class:`DeprecationWarning`; new code should build
    a :class:`ServerConfig` and use :meth:`from_config` or the
    ``config=`` keyword.
    """

    _LEGACY_KNOBS = (
        "allow_rejection", "max_buffer", "overhead_base", "overhead_per_unit"
    )

    def __init__(
        self,
        latencies: Sequence[float],
        policy: ServingPolicy,
        workers: Optional[Sequence[WorkerSpec]] = None,
        *legacy_args,
        config: Optional[ServerConfig] = None,
        tracer: Optional[Tracer] = None,
        explain: Optional[DecisionLog] = None,
        **legacy_kwargs,
    ):
        config = self._resolve_config(config, legacy_args, legacy_kwargs)
        self.config = config
        self.explain = explain
        self.latencies = np.asarray(latencies, dtype=float)
        if self.latencies.ndim != 1 or np.any(self.latencies <= 0):
            raise ValueError("latencies must be a 1-d array of positives")
        self.policy = policy
        if workers is None:
            workers = [
                WorkerSpec(model_index=k, latency=float(t))
                for k, t in enumerate(self.latencies)
            ]
        self._worker_specs = list(workers)
        self._workers = [
            _Worker(spec, wid) for wid, spec in enumerate(self._worker_specs)
        ]
        # Control-plane actuation state (see add_replica_set /
        # retire_replica_set / set_cheap_mask): replica sets added
        # mid-run, LIFO, and the degraded-quality plan clamp. Reset by
        # every new session so run() stays reproducible.
        self._extra_sets: List[List[_Worker]] = []
        self._cheap_mask: Optional[int] = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = self.tracer.enabled
        self._profile = self._trace and self.tracer.profile
        self._sched_wall = 0.0
        deployed = {w.model_index for w in self._worker_specs}
        if not deployed.issubset(range(self.latencies.shape[0])):
            raise ValueError("worker references an unknown model index")
        self._faulty = not config.fault_free
        if config.faults is not None:
            for window in config.faults.downtime:
                if window.worker >= len(self._worker_specs):
                    raise ValueError(
                        f"fault plan references worker {window.worker}, "
                        f"deployment has {len(self._worker_specs)}"
                    )
        # Per-run fault state (populated by run() in fault mode).
        self._injector: Optional[FaultInjector] = None
        self._fworkers: List[_FaultWorker] = []
        self._fworkers_by_model: Dict[int, List[_FaultWorker]] = {}

    @classmethod
    def from_config(
        cls,
        latencies: Sequence[float],
        policy: ServingPolicy,
        config: ServerConfig,
        *,
        workers: Optional[Sequence[WorkerSpec]] = None,
        tracer: Optional[Tracer] = None,
        explain: Optional[DecisionLog] = None,
    ) -> "EnsembleServer":
        """Build a server from a validated :class:`ServerConfig`."""
        return cls(
            latencies, policy, workers,
            config=config, tracer=tracer, explain=explain,
        )

    @classmethod
    def _resolve_config(cls, config, legacy_args, legacy_kwargs) -> ServerConfig:
        """Fold the deprecated per-knob call shape into a ServerConfig."""
        legacy = {}
        if legacy_args:
            if len(legacy_args) > len(cls._LEGACY_KNOBS):
                raise TypeError(
                    f"too many positional arguments "
                    f"({len(legacy_args)} beyond workers)"
                )
            legacy.update(zip(cls._LEGACY_KNOBS, legacy_args))
        for key in list(legacy_kwargs):
            if key not in cls._LEGACY_KNOBS:
                raise TypeError(
                    f"unexpected keyword argument {key!r} "
                    f"(serving knobs moved into ServerConfig)"
                )
            if key in legacy:
                raise TypeError(f"duplicate argument {key!r}")
            legacy[key] = legacy_kwargs[key]
        if not legacy:
            return config if config is not None else ServerConfig()
        if config is not None:
            raise TypeError(
                "pass either config= or the legacy per-knob arguments, "
                "not both"
            )
        warnings.warn(
            "per-knob EnsembleServer arguments "
            f"({', '.join(sorted(legacy))}) are deprecated and will be "
            "removed in v2.0; build a ServerConfig and use "
            "EnsembleServer.from_config(...) or config=...",
            DeprecationWarning,
            stacklevel=3,
        )
        return ServerConfig(**legacy)

    # Read-only views kept for call sites that inspected the old
    # attributes; the config is the source of truth.
    @property
    def allow_rejection(self) -> bool:
        return self.config.allow_rejection

    @property
    def max_buffer(self) -> int:
        return self.config.max_buffer

    @property
    def overhead_base(self) -> float:
        return self.config.overhead_base

    @property
    def overhead_per_unit(self) -> float:
        return self.config.overhead_per_unit

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, workload: ServingWorkload) -> ServingResult:
        """Replay the workload; returns per-query records.

        Exactly equivalent to opening a :class:`ServingSession`,
        offering every query up front, and finishing — the batch and
        streaming paths share one event loop, so they are
        event-for-event identical on the same inputs.
        """
        if workload.n_models != self.latencies.shape[0]:
            raise ValueError(
                f"workload encodes {workload.n_models} models, server has "
                f"{self.latencies.shape[0]}"
            )
        session = ServingSession(self)
        arrivals = workload.arrivals
        deadlines = workload.deadlines
        samples = workload.sample_indices
        for i in range(workload.n_queries):
            session.offer(
                float(arrivals[i]), float(deadlines[i]), int(samples[i])
            )
        return session.finish()

    def session(self) -> "ServingSession":
        """Open a streaming run (the control plane's entry point).

        ``offer`` queries as they arrive, ``advance`` simulated time in
        epochs, and call the actuation hooks (:meth:`add_replica_set`,
        :meth:`retire_replica_set`, :meth:`set_cheap_mask`) between
        advances; ``finish`` drains the loop and returns the
        :class:`ServingResult`. One session is active per server at a
        time; opening a new one resets the deployment to its baseline.
        """
        return ServingSession(self)

    # ------------------------------------------------------------------
    # Control-plane actuation hooks
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Current deployment size (baseline plus live replica sets)."""
        return len(self._workers)

    def _reset_workers(self) -> None:
        """Restore the baseline deployment for a fresh session (extras
        from a previous session are appended after the baseline, so a
        truncate drops exactly them)."""
        del self._workers[len(self._worker_specs):]
        for worker in self._workers:
            worker.free_time = 0.0
            worker.retired = False
        self._extra_sets = []
        self._cheap_mask = None

    def add_replica_set(
        self, now: float, warmup: float = 0.0
    ) -> List[int]:
        """Deploy one replica of the baseline worker set mid-run.

        Control-plane scale-up hook: one new worker per baseline spec,
        busy "provisioning" until ``now + warmup`` and serving after.
        Reliable path only — a fault plan is sized to the baseline
        deployment at setup, so scaling under faults is refused.
        Returns the new worker ids.
        """
        if self._faulty:
            raise RuntimeError(
                "replica scaling requires a fault-free config (the fault "
                "plan is sized to the baseline deployment)"
            )
        added = []
        for spec in self._worker_specs:
            worker = _Worker(spec, len(self._workers))
            worker.free_time = float(now) + float(warmup)
            self._workers.append(worker)
            added.append(worker)
        self._extra_sets.append(added)
        return [w.wid for w in added]

    def retire_replica_set(self) -> Optional[List[int]]:
        """Retire the most recently added replica set (LIFO).

        The baseline deployment is never retired. Retired workers
        finish the work already committed to them (their task-done
        events carry no worker reference) but are excluded from every
        placement decision from this instant on. Returns the retired
        worker ids, or ``None`` when already at baseline.
        """
        if self._faulty:
            raise RuntimeError(
                "replica scaling requires a fault-free config"
            )
        if not self._extra_sets:
            return None
        retired = self._extra_sets.pop()
        for worker in retired:
            worker.retired = True
        return [w.wid for w in retired]

    def set_cheap_mask(self, mask: Optional[int]) -> None:
        """Flip degraded-quality mode on (``mask``) or off (``None``).

        While set, every dispatched plan is clamped to ``mask``: the
        plan executes its intersection with the mask, or the mask
        itself when the intersection is empty — every query still gets
        an answer, just from the cheap subset. Queries whose plan was
        narrowed are marked ``degraded`` (visible to the SLO quality
        objective and scored by their executed mask).
        """
        if mask is not None:
            mask = int(mask)
            if mask < 1 or mask >= (1 << self.latencies.shape[0]):
                raise ValueError(
                    f"cheap_mask must be a non-empty bitmask over "
                    f"{self.latencies.shape[0]} models, got {mask}"
                )
        self._cheap_mask = mask

    # ------------------------------------------------------------------
    # Shared internals (branch once on fault mode)
    # ------------------------------------------------------------------

    def _workers_for(self, model_index: int) -> List[_Worker]:
        chosen = [
            w for w in self._workers
            if w.spec.model_index == model_index and not w.retired
        ]
        if not chosen:
            raise ValueError(f"no deployed worker serves model {model_index}")
        return chosen

    def _busy_per_model(self, now: float) -> np.ndarray:
        """Remaining committed work per base model (min across replicas).

        In fault mode "committed" is an estimate from queue contents and
        recovery times — commitments can be revoked by a crash, so
        successive busy vectors may shrink as well as grow; the
        schedulers tolerate both (and ``inf`` for models whose workers
        are all gone)."""
        busy = np.zeros(self.latencies.shape[0])
        if self._faulty:
            for k in range(busy.shape[0]):
                candidates = [
                    max(0.0, w.available_at(now) - now)
                    for w in self._fworkers_by_model.get(k, [])
                ]
                busy[k] = min(candidates) if candidates else np.inf
            return busy
        for k in range(busy.shape[0]):
            candidates = [
                max(0.0, w.free_time - now)
                for w in self._workers
                if w.spec.model_index == k and not w.retired
            ]
            busy[k] = min(candidates) if candidates else np.inf
        return busy

    def _explain_record(
        self, record, ctx, index, now, action, mask, predicted,
    ) -> DecisionRecord:
        """Build one :class:`DecisionRecord` at a capture site.

        ``ctx`` is the pending schedule-time context captured by
        ``try_schedule`` (None for immediate/fast-path decisions, which
        have no buffer snapshot), ``index`` the decision's position in
        the committed plan — the DP's per-query stats are EDF-ordered
        exactly like the plan, so the index lines them up.
        """
        if ctx is not None:
            decided_at, batch, depth, busy_until, stats = ctx
        else:
            decided_at, batch, depth, stats = now, 0, 0, None
            busy_until = self._busy_per_model(now)
        frontier_size = frontier_cells = 0
        candidates: List[int] = []
        if stats is not None and index < len(stats.candidate_masks):
            candidates = list(stats.candidate_masks[index])
            frontier_cells = stats.n_cells
            if index < len(stats.frontier_sizes):
                frontier_size = stats.frontier_sizes[index]
        score_for = getattr(self.policy, "score_for", None)
        score = (
            float(score_for(record.sample_index))
            if score_for is not None else float("nan")
        )
        return DecisionRecord(
            query_id=record.query_id,
            decided_at=decided_at,
            committed_at=now,
            action=action,
            chosen_mask=mask,
            score=score,
            deadline=record.deadline,
            batch_size=batch,
            buffer_depth=depth,
            busy_until=[float(b) for b in busy_until],
            frontier_size=frontier_size,
            frontier_cells=frontier_cells,
            candidate_masks=candidates,
            predicted_finish=(
                float(predicted) if predicted is not None else None
            ),
            predicted_slack=(
                record.deadline - float(predicted)
                if predicted is not None else None
            ),
        )

    def _estimate_completion(self, mask: int, now: float) -> float:
        """Estimated completion time of ``mask`` dispatched right now."""
        estimate = now
        for k in range(self.latencies.shape[0]):
            if (mask >> k) & 1:
                if self._faulty:
                    candidates = self._fworkers_by_model.get(k)
                    if not candidates:
                        return np.inf
                    finish = min(
                        w.available_at(now) for w in candidates
                    ) + self.latencies[k]
                else:
                    worker = min(
                        self._workers_for(k), key=lambda w: w.free_time
                    )
                    finish = max(worker.free_time, now) + worker.spec.latency
                estimate = max(estimate, finish)
        return estimate

    def _dispatch(self, record, mask, now, events, sequence):
        cheap = self._cheap_mask
        if cheap is not None:
            # Degraded-quality mode: clamp the plan to the cheap
            # subset (or substitute it outright when disjoint) and
            # mark the answer as served below its planned quality.
            clamped = mask & cheap
            clamped = clamped if clamped else cheap
            if clamped != mask:
                record.degraded = True
                mask = clamped
        if self._faulty:
            self._dispatch_faulty(record, mask, now)
            return
        record.scheduled_mask = mask
        count = 0
        trace = self._trace
        profile = self._profile
        for k in range(self.latencies.shape[0]):
            if (mask >> k) & 1:
                worker = min(self._workers_for(k), key=lambda w: w.free_time)
                finish = worker.assign(now)
                if trace:
                    # start = max(free_time, now) as of before assign().
                    self.tracer.emit(
                        sp.DISPATCH, now, record.query_id,
                        model=k, worker=worker.wid,
                        start=finish - worker.spec.latency, finish=finish,
                    )
                    if profile:
                        self.tracer.emit(
                            sp.QUEUE_WAIT, now, record.query_id,
                            model=k, worker=worker.wid,
                            wait_s=finish - worker.spec.latency - now,
                        )
                heapq.heappush(
                    events,
                    (finish, next(sequence), _TASK_DONE, (record.query_id, k)),
                )
                count += 1
        record.pending_tasks = count
        if trace:
            self.tracer.emit(sp.PLAN, now, record.query_id, size=count)

    # ------------------------------------------------------------------
    # Fault-path internals
    # ------------------------------------------------------------------

    def _setup_fault_run(self, events, sequence):
        """Fresh per-run fault state + downtime events (pushed before
        arrivals so a crash at t ties ahead of an arrival at t)."""
        plan = self.config.faults
        self._fworkers = [
            _FaultWorker(spec, wid)
            for wid, spec in enumerate(self._worker_specs)
        ]
        self._fworkers_by_model = {}
        for w in self._fworkers:
            self._fworkers_by_model.setdefault(w.spec.model_index, []).append(w)
        self._injector = (
            FaultInjector(plan, len(self._fworkers))
            if plan is not None
            else None
        )
        if self._injector is not None:
            for w in self._fworkers:
                for window in self._injector.windows_for(w.wid):
                    heapq.heappush(
                        events,
                        (window.start, next(sequence), _WORKER_DOWN, window),
                    )

    def _push(self, at: float, kind: int, payload):
        heapq.heappush(
            self._events, (at, next(self._sequence), kind, payload)
        )

    def _dispatch_faulty(self, record, mask, now):
        record.scheduled_mask = mask
        count = 0
        for k in range(self.latencies.shape[0]):
            if (mask >> k) & 1:
                self._f_enqueue(_Task(record.query_id, k), now)
                count += 1
        record.pending_tasks = count
        if self._trace:
            self.tracer.emit(sp.PLAN, now, record.query_id, size=count)

    def _f_enqueue(self, task: _Task, now: float):
        """Queue one task attempt on the least-loaded worker for its
        model (same or sibling — this is the failover choice)."""
        candidates = self._fworkers_by_model.get(task.model_index)
        if not candidates:
            raise ValueError(
                f"no deployed worker serves model {task.model_index}"
            )
        worker = min(candidates, key=lambda w: w.available_at(now))
        task.state = "queued"
        task.worker = worker.wid
        task.enqueued = now
        worker.queue.append(task)
        self._f_start_next(worker, now)

    def _f_start_next(self, worker: _FaultWorker, now: float):
        """Start the worker's next queued task if it is idle and up."""
        if worker.down or worker.current is not None or not worker.queue:
            return
        task = worker.queue.popleft()
        injector = self._injector
        if injector is not None:
            service = injector.service_time(worker.wid, worker.spec.latency)
            task.fails = injector.task_fails(worker.wid)
        else:
            service = worker.spec.latency
            task.fails = False
        task.state = "running"
        task.worker = worker.wid
        task.start = now
        task.finish = now + service
        worker.current = task
        if self._trace:
            self.tracer.emit(
                sp.DISPATCH, now, task.query_id,
                model=task.model_index, worker=worker.wid,
                start=now, finish=task.finish, attempt=task.attempt,
            )
            if self._profile:
                self.tracer.emit(
                    sp.QUEUE_WAIT, now, task.query_id,
                    model=task.model_index, worker=worker.wid,
                    attempt=task.attempt, wait_s=now - task.enqueued,
                )
        self._push(task.finish, _TASK_END, task)
        timeout = self.config.task_timeout
        if timeout is not None and service > timeout:
            self._push(now + timeout, _TASK_TIMEOUT, task)

    def _f_task_end(self, task: _Task, now: float):
        """The worker finished executing ``task`` (whatever its fate)."""
        worker = self._fworkers[task.worker]
        if worker.current is task:
            worker.current = None
            self._f_start_next(worker, now)
        if task.state != "running":
            # Abandoned by the watchdog or killed by a crash: the
            # outcome was already handled, this event only freed the
            # worker (non-preemptive executions run to the end).
            return
        task.state = "done"
        record = self._records[task.query_id]
        if task.fails:
            if self._trace:
                self.tracer.emit(
                    sp.TASK_FAILED, now, task.query_id,
                    model=task.model_index, worker=task.worker,
                    attempt=task.attempt, reason="fault",
                )
            self._f_handle_failure(record, task, now)
            return
        record.executed_mask |= 1 << task.model_index
        record.pending_tasks -= 1
        if self._trace:
            self.tracer.emit(
                sp.TASK_DONE, now, task.query_id, model=task.model_index
            )
        if record.pending_tasks == 0:
            self._f_finalize(record, now)

    def _f_task_timeout(self, task: _Task, now: float):
        """Watchdog: stop waiting for a straggling execution."""
        if task.state != "running":
            return
        task.state = "abandoned"
        if self._trace:
            self.tracer.emit(
                sp.TASK_FAILED, now, task.query_id,
                model=task.model_index, worker=task.worker,
                attempt=task.attempt, reason="timeout",
            )
        self._f_handle_failure(record=self._records[task.query_id],
                               task=task, now=now)

    def _f_handle_failure(self, record, task: _Task, now: float):
        """Bounded retry with backoff; exhausted tasks fail permanently
        and the query degrades (or drops) once nothing is pending."""
        config = self.config
        backoff = config.retry_backoff
        feasible = (
            now + backoff + float(self.latencies[task.model_index])
            <= record.deadline + 1e-12
        )
        if task.attempt < config.max_retries and (
            feasible or not config.allow_rejection
        ):
            record.retries += 1
            retry = _Task(
                task.query_id, task.model_index, attempt=task.attempt + 1
            )
            if self._trace:
                self.tracer.emit(
                    sp.RETRY, now, task.query_id,
                    model=task.model_index, attempt=retry.attempt,
                    backoff=backoff, reason="failure",
                )
            if backoff > 0.0:
                self._push(now + backoff, _RETRY, retry)
            else:
                self._f_enqueue(retry, now)
            return
        record.failed_mask |= 1 << task.model_index
        record.pending_tasks -= 1
        if record.pending_tasks == 0:
            self._f_finalize(record, now)

    def _f_finalize(self, record, now: float):
        """All of a query's tasks resolved (success or permanent
        failure): complete, degrade, or drop."""
        trace = self._trace
        if not record.failed_mask:
            record.completion = now
            if self.explain is not None:
                self.explain.realize(
                    record.query_id, now, record.deadline - now
                )
            if trace:
                if record.degraded:
                    # Cheap-mask clamping (degraded-quality mode) can
                    # mark a fault-path answer degraded without any
                    # task having failed.
                    self.tracer.emit(
                        sp.COMPLETE, now, record.query_id,
                        latency=now - record.arrival,
                        slack=record.deadline - now,
                        degraded=True,
                    )
                else:
                    self.tracer.emit(
                        sp.COMPLETE, now, record.query_id,
                        latency=now - record.arrival,
                        slack=record.deadline - now,
                    )
            return
        if self.config.degraded_answers and record.executed_mask:
            # Answer from the executed subset: stacking's KNN filler
            # reconstructs the missing coordinates, so the partial
            # result is still a real answer (scored by its mask).
            record.degraded = True
            record.completion = now
            if self.explain is not None:
                self.explain.realize(
                    record.query_id, now, record.deadline - now
                )
            if trace:
                self.tracer.emit(
                    sp.DEGRADED, now, record.query_id,
                    executed_mask=record.executed_mask,
                    failed_mask=record.failed_mask,
                )
                self.tracer.emit(
                    sp.COMPLETE, now, record.query_id,
                    latency=now - record.arrival,
                    slack=record.deadline - now,
                    degraded=True,
                )
            return
        record.rejected = True
        if trace:
            self.tracer.emit(
                sp.REJECT, now, record.query_id, reason="faulted",
            )

    def _f_worker_down(self, window, now: float):
        """Crash: kill the in-flight task, revoke queued commitments and
        fail them over onto live siblings (or back onto this worker
        post-recovery, whichever is expected sooner)."""
        worker = self._fworkers[window.worker]
        worker.down = True
        worker.resume_at = max(worker.resume_at, window.end)
        if self._trace:
            self.tracer.emit(
                sp.WORKER_DOWN, now, worker=worker.wid, until=window.end,
            )
        self._push(window.end, _WORKER_UP, worker.wid)
        current = worker.current
        if current is not None:
            worker.current = None
            current.state = "killed"
            if self._trace:
                self.tracer.emit(
                    sp.TASK_FAILED, now, current.query_id,
                    model=current.model_index, worker=worker.wid,
                    attempt=current.attempt, reason="crash",
                )
            self._f_handle_failure(
                self._records[current.query_id], current, now
            )
        if worker.queue:
            revoked = list(worker.queue)
            worker.queue.clear()
            for task in revoked:
                if self._trace:
                    self.tracer.emit(
                        sp.RETRY, now, task.query_id,
                        model=task.model_index, attempt=task.attempt,
                        backoff=0.0, reason="failover",
                    )
                self._f_enqueue(task, now)

    def _f_worker_up(self, wid: int, now: float):
        worker = self._fworkers[wid]
        if now < worker.resume_at - 1e-12:
            # A later overlapping window extended the outage.
            return
        worker.down = False
        if self._trace:
            self.tracer.emit(sp.WORKER_UP, now, worker=wid)
        self._f_start_next(worker, now)


class ServingSession:
    """One in-progress serving run, driven incrementally.

    Created by :meth:`EnsembleServer.session` (or implicitly by
    :meth:`EnsembleServer.run`, which is offer-everything-then-finish).
    The streaming shape exists for the control plane: a caller can
    interleave arrival offers, bounded time advances, and actuation —
    scaling, degradation — between epochs, while the event loop stays
    the single-server simulator, event-for-event identical to the
    batch path on the same inputs.

    Usage contract: offers carry absolute arrival times and must not
    lie in the session's past (before the last processed event);
    ``advance(t)`` processes every event at or before ``t``; every
    arrival at or before ``t`` must be offered before advancing past
    it. ``finish`` drains the loop, rejects whatever never ran, and
    builds the result. One session per server at a time — creating a
    session resets the deployment to its baseline.
    """

    def __init__(self, server: EnsembleServer):
        self._server = server
        server._reset_workers()
        tracer = server.tracer
        self._tracer = tracer
        trace = server._trace = tracer.enabled
        self._trace = trace
        # Opt-in latency profiling. Off (the default), no sched_phase /
        # queue_wait span is ever emitted and the scheduler's phase
        # timers stay disabled, so the run is span-for-span and
        # bit-for-bit identical to an unprofiled one.
        prof = server._profile = trace and tracer.profile
        self._prof = prof
        # Live telemetry plane (repro.obs.live), carried by the tracer.
        # Spans drive it from inside tracer.emit; the advance-boundary
        # tick below only flushes snapshot cadences through quiet
        # stretches, so epoch drivers (the control loop) get a snapshot
        # per epoch even when no span lands in it.
        self._live = tracer.live if trace else None
        self._prof_sched = None
        if prof:
            scheduler = getattr(server.policy, "scheduler", None)
            if scheduler is not None and hasattr(scheduler, "profile"):
                self._prof_sched = scheduler
                scheduler.profile = True
        # A learned (regret-gated) scheduler exposes per-invocation
        # fallback state; cache it once so the non-learned hot path
        # pays a single None check per schedule() call.
        scheduler = getattr(server.policy, "scheduler", None)
        self._gated_sched = (
            scheduler
            if scheduler is not None
            and hasattr(scheduler, "last_used_fallback")
            else None
        )
        server._sched_wall = 0.0
        self._faulty = server._faulty
        self._config = server.config

        # Opt-in decision explainability. When off (the default) every
        # capture site below is a single falsy check and the DP's
        # frontier-stats hook stays disabled, so the serving loop is
        # bit-identical to the unexplained path.
        explain = server.explain
        self._explain = explain
        self._explain_sched = None
        if explain is not None:
            scheduler = getattr(server.policy, "scheduler", None)
            if scheduler is not None and hasattr(scheduler, "collect_stats"):
                self._explain_sched = scheduler
                scheduler.collect_stats = True
        server._pending_explain = None

        self._records: Dict[int, QueryRecord] = {}
        self._events: List = []
        self._sequence = itertools.count()
        if self._faulty:
            server._setup_fault_run(self._events, self._sequence)
        # The fault helpers reach per-run state through the server.
        server._records = self._records
        server._events = self._events
        server._sequence = self._sequence

        self._buffer: List[int] = []
        self._scheduling_busy = False
        self._invocations = 0
        self._total_work = 0
        # One QueryRequest per query per run, built lazily and reused
        # across scheduler invocations: a query that survives several
        # buffer ticks keeps its quantised-utility cache, so repeated
        # schedule() calls on overlapping buffers never re-quantise.
        self._request_cache: Dict[int, QueryRequest] = {}
        self._buffered = isinstance(server.policy, BufferedSchedulingPolicy)
        self._fastest_mask = 1 << int(np.argmin(server.latencies))
        self._n_offered = 0
        self._now = 0.0
        self._finished = False

    # -- streaming interface -------------------------------------------

    @property
    def now(self) -> float:
        """Time of the last processed event."""
        return self._now

    @property
    def pending(self) -> bool:
        """True while the event heap still holds work."""
        return bool(self._events)

    def offer(
        self, arrival: float, deadline: float, sample_index: int
    ) -> int:
        """Feed one query: absolute ``arrival``, relative ``deadline``.

        Returns the session-local query id (dense, in offer order).
        """
        if self._finished:
            raise RuntimeError("session already finished")
        arrival = float(arrival)
        if arrival + 1e-12 < self._now:
            raise ValueError(
                f"arrival {arrival} lies in the session's past "
                f"(last processed event at {self._now})"
            )
        qid = self._n_offered
        self._n_offered += 1
        heapq.heappush(
            self._events, (arrival, next(self._sequence), _ARRIVAL, qid)
        )
        self._records[qid] = QueryRecord(
            query_id=qid,
            sample_index=int(sample_index),
            arrival=arrival,
            deadline=arrival + float(deadline),
        )
        return qid

    def advance(self, until: Optional[float] = None) -> float:
        """Process every event at or before ``until`` (all, if None).

        Returns the time of the last processed event. The clock never
        moves past the events actually handled, so interleaved offers
        at or after ``until`` stay valid.
        """
        server = self._server
        tracer = self._tracer
        trace = self._trace
        explain = self._explain
        buffered = self._buffered
        records = self._records
        events = self._events
        sequence = self._sequence
        buffer = self._buffer
        while events and (until is None or events[0][0] <= until):
            now, _, kind, payload = heapq.heappop(events)
            self._now = now
            if kind == _ARRIVAL:
                if trace:
                    tracer.emit(
                        sp.ARRIVAL, now, payload,
                        deadline=records[payload].deadline,
                    )
                if buffered:
                    idle_system = (
                        server.policy.fast_path
                        and not buffer
                        and not self._scheduling_busy
                        and self._all_idle(now)
                    )
                    if idle_system:
                        # Exp-5 fast path: skip prediction + scheduling
                        # entirely when the system is idle.
                        if trace:
                            tracer.emit(sp.FAST_PATH, now, payload)
                        if explain is not None:
                            explain.add(server._explain_record(
                                records[payload], None, 0, now,
                                "fast_path", self._fastest_mask,
                                server._estimate_completion(
                                    self._fastest_mask, now
                                ),
                            ))
                        server._dispatch(
                            records[payload], self._fastest_mask, now,
                            events, sequence,
                        )
                        continue
                    delay = server.policy.entry_delay
                    heapq.heappush(
                        events,
                        (now + delay, next(sequence), _ENTER_BUFFER, payload),
                    )
                else:
                    self._dispatch_immediate(now, payload)
            elif kind == _ENTER_BUFFER:
                buffer.append(payload)
                if trace:
                    tracer.emit(
                        sp.ENTER_BUFFER, now, payload, depth=len(buffer)
                    )
                # Defer planning to a same-time _SCHEDULE event so every
                # arrival in this instant is in the buffer first.
                heapq.heappush(events, (now, next(sequence), _SCHEDULE, None))
            elif kind == _SCHEDULE:
                self._try_schedule(now)
            elif kind == _COMMIT:
                self._commit(now, payload)
                self._try_schedule(now)
            elif kind == _TASK_DONE:
                qid, model_index = payload
                record = records[qid]
                record.executed_mask |= 1 << model_index
                record.pending_tasks -= 1
                if trace:
                    tracer.emit(sp.TASK_DONE, now, qid, model=model_index)
                if record.pending_tasks == 0:
                    record.completion = now
                    if explain is not None:
                        explain.realize(qid, now, record.deadline - now)
                    if trace:
                        if record.degraded:
                            # Only set on the reliable path by the
                            # cheap-mask clamp (degraded-quality mode).
                            tracer.emit(
                                sp.COMPLETE, now, qid,
                                latency=now - record.arrival,
                                slack=record.deadline - now,
                                degraded=True,
                            )
                        else:
                            tracer.emit(
                                sp.COMPLETE, now, qid,
                                latency=now - record.arrival,
                                slack=record.deadline - now,
                            )
                if buffered:
                    self._try_schedule(now)
            elif kind == _TASK_END:
                server._f_task_end(payload, now)
                if buffered:
                    self._try_schedule(now)
            elif kind == _TASK_TIMEOUT:
                server._f_task_timeout(payload, now)
            elif kind == _RETRY:
                server._f_enqueue(payload, now)
            elif kind == _WORKER_DOWN:
                server._f_worker_down(payload, now)
            elif kind == _WORKER_UP:
                server._f_worker_up(payload, now)
                if buffered:
                    self._try_schedule(now)
        if until is not None and self._live is not None:
            self._live.tick(until)
        return self._now

    def finish(self) -> ServingResult:
        """Drain the loop and build the run's :class:`ServingResult`."""
        if self._finished:
            raise RuntimeError("session already finished")
        self.advance(None)
        self._finished = True
        server = self._server
        tracer = self._tracer
        now = self._now
        records = self._records
        # Anything still buffered never ran (trace ended): count as missed.
        for qid in self._buffer:
            records[qid].rejected = True
            if self._trace:
                tracer.emit(sp.REJECT, now, qid, reason="unserved")
        tracer.finalize(now)
        if self._explain_sched is not None:
            self._explain_sched.collect_stats = False
        if self._prof_sched is not None:
            self._prof_sched.profile = False
        return ServingResult(
            records=[records[i] for i in range(self._n_offered)],
            policy_name=server.policy.name,
            scheduler_invocations=self._invocations,
            scheduler_work_units=self._total_work,
            scheduler_wall_time=server._sched_wall,
            metrics=tracer.metrics,
        )

    # -- event-loop internals (ported verbatim from the old run()) -----

    def _any_idle(self, now: float) -> bool:
        if self._faulty:
            return any(w.idle() for w in self._server._fworkers)
        return any(
            w.free_time <= now + 1e-12
            for w in self._server._workers
            if not w.retired
        )

    def _all_idle(self, now: float) -> bool:
        if self._faulty:
            return all(w.idle() for w in self._server._fworkers)
        return all(
            w.free_time <= now + 1e-12
            for w in self._server._workers
            if not w.retired
        )

    def _try_schedule(self, now: float) -> None:
        if self._scheduling_busy or not self._buffer:
            return
        if not self._any_idle(now):
            return
        server = self._server
        config = self._config
        records = self._records
        buffer = self._buffer
        # Snapshot the earliest-deadline slice of the buffer.
        buffer.sort(key=lambda qid: records[qid].deadline)
        snapshot = buffer[: config.max_buffer]
        del buffer[: len(snapshot)]

        queries = []
        for qid in snapshot:
            request = self._request_cache.get(qid)
            if request is None:
                record = records[qid]
                request = server.policy.make_request(
                    qid,
                    record.arrival,
                    record.deadline,
                    record.sample_index,
                )
                self._request_cache[qid] = request
            queries.append(request)
        busy_until = server._busy_per_model(now)
        instance = SchedulingInstance(
            queries=queries,
            latencies=server.latencies,
            busy_until=busy_until,
            now=now,
        )
        wall_start = time.perf_counter()
        result = server.policy.scheduler.schedule(instance)
        wall = time.perf_counter() - wall_start
        server._sched_wall += wall
        self._invocations += 1
        self._total_work += result.work_units
        overhead = (
            config.overhead_base
            + config.overhead_per_unit * result.work_units
        )
        self._scheduling_busy = True
        if self._trace:
            self._tracer.emit(
                sp.SCHEDULE, now,
                batch=len(snapshot),
                depth=len(buffer),
                work_units=result.work_units,
                overhead_sim_s=overhead,
                wall_s=wall,
            )
        gated = self._gated_sched
        if gated is not None and self._trace:
            # One verdict span per learned-scheduler invocation: did
            # the regret gate hand this buffer to the exact DP?
            self._tracer.emit(
                sp.SCHED_FALLBACK, now,
                fallback=bool(gated.last_used_fallback),
                predicted_regret=float(gated.last_predicted_regret),
            )
        prof_sched = self._prof_sched
        if self._prof and prof_sched is not None and prof_sched.last_phase_wall:
            for phase, phase_wall in prof_sched.last_phase_wall.items():
                self._tracer.emit(
                    sp.SCHED_PHASE, now, phase=phase, wall_s=phase_wall
                )
        if self._explain is not None:
            # scheduling_busy serializes invocations, so exactly one
            # schedule context is pending until its plan commits.
            server._pending_explain = (
                now, len(snapshot), len(buffer), busy_until,
                self._explain_sched.last_stats
                if self._explain_sched is not None else None,
            )
        heapq.heappush(
            self._events,
            (now + overhead, next(self._sequence), _COMMIT, result.decisions),
        )

    def _commit(self, now: float, decisions) -> None:
        """Apply one plan: reject infeasible queries and dispatch the
        plan's EDF prefix while some model is still idle. Queries
        beyond that stay buffered, so later arrivals can reshape
        their subsets (the paper's wait-for-idling-models rule)."""
        server = self._server
        config = self._config
        records = self._records
        explain = self._explain
        trace = self._trace
        self._scheduling_busy = False
        if trace:
            self._tracer.emit(sp.COMMIT, now, decisions=len(decisions))
        ctx = None
        if explain is not None:
            ctx = server._pending_explain
            server._pending_explain = None
        for di, decision in enumerate(decisions):
            record = records[decision.query_id]
            mask = decision.mask
            fallback = False
            if mask == 0 and not config.allow_rejection:
                # Forced processing: fall back to the fastest model.
                mask = 1 << int(np.argmin(server.latencies))
                fallback = True
            if mask == 0:
                # Deadlines only get closer; infeasible stays so.
                record.rejected = True
                if explain is not None:
                    explain.add(server._explain_record(
                        record, ctx, di, now, "reject", 0, None,
                    ))
                if trace:
                    self._tracer.emit(
                        sp.REJECT, now, decision.query_id,
                        reason="infeasible",
                    )
                continue
            if not self._any_idle(now):
                self._buffer.append(decision.query_id)
                if explain is not None:
                    explain.add(server._explain_record(
                        record, ctx, di, now, "requeue", mask, None,
                    ))
                if trace:
                    self._tracer.emit(
                        sp.REQUEUE, now, decision.query_id,
                        depth=len(self._buffer),
                    )
                continue
            if explain is not None:
                explain.add(server._explain_record(
                    record, ctx, di, now,
                    "fallback" if fallback else "dispatch", mask,
                    server._estimate_completion(mask, now),
                ))
            server._dispatch(record, mask, now, self._events, self._sequence)

    def _dispatch_immediate(self, now: float, qid: int) -> None:
        server = self._server
        record = self._records[qid]
        mask = server.policy.mask_for(record.sample_index)
        explain = self._explain
        if self._config.allow_rejection:
            estimate = server._estimate_completion(mask, now)
            if estimate > record.deadline + 1e-12:
                record.rejected = True
                if explain is not None:
                    explain.add(server._explain_record(
                        record, None, 0, now, "reject", mask, estimate,
                    ))
                if self._trace:
                    self._tracer.emit(
                        sp.REJECT, now, qid, reason="estimate",
                    )
                return
        if explain is not None:
            explain.add(server._explain_record(
                record, None, 0, now, "immediate", mask,
                server._estimate_completion(mask, now),
            ))
        server._dispatch(record, mask, now, self._events, self._sequence)
