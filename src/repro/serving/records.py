"""Per-query serving records and run-level results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class QueryRecord:
    """Outcome of one served query.

    ``completion`` is None while tasks are in flight and for rejected
    queries; ``executed_mask`` accumulates the models that actually ran.
    """

    query_id: int
    sample_index: int
    arrival: float
    deadline: float  # absolute
    scheduled_mask: int = 0
    executed_mask: int = 0
    completion: Optional[float] = None
    rejected: bool = False
    pending_tasks: int = 0

    @property
    def processed(self) -> bool:
        return self.completion is not None and not self.rejected

    @property
    def missed(self) -> bool:
        """Deadline miss: rejected, unfinished, or finished too late."""
        if self.rejected or self.completion is None:
            return True
        return self.completion > self.deadline + 1e-12

    @property
    def latency(self) -> Optional[float]:
        if self.completion is None:
            return None
        return self.completion - self.arrival


@dataclass
class ServingResult:
    """All query records of one serving run plus scheduler stats."""

    records: List[QueryRecord]
    policy_name: str = ""
    scheduler_invocations: int = 0
    scheduler_work_units: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def deadline_miss_rate(self) -> float:
        """Fraction of queries that missed their deadline."""
        if not self.records:
            return 0.0
        return float(np.mean([r.missed for r in self.records]))

    def qualities(self, quality_table: np.ndarray) -> np.ndarray:
        """Per-query result quality: table lookup, 0 for missed queries."""
        values = np.zeros(len(self.records))
        for i, record in enumerate(self.records):
            if not record.missed:
                values[i] = quality_table[record.sample_index, record.executed_mask]
        return values

    def accuracy(self, quality_table: np.ndarray) -> float:
        """Mean quality with missed queries counted as 0 (the paper's
        headline accuracy metric)."""
        if not self.records:
            return 0.0
        return float(self.qualities(quality_table).mean())

    def processed_accuracy(self, quality_table: np.ndarray) -> float:
        """Mean quality over queries that met their deadline."""
        processed = [
            quality_table[r.sample_index, r.executed_mask]
            for r in self.records
            if not r.missed
        ]
        if not processed:
            return 0.0
        return float(np.mean(processed))

    def latencies(self) -> np.ndarray:
        """Latencies of completed queries (rejected ones excluded)."""
        values = [r.latency for r in self.records if r.latency is not None]
        return np.asarray(values, dtype=float)

    def latency_stats(self) -> Dict[str, float]:
        """Mean / P95 / max latency over completed queries."""
        latencies = self.latencies()
        if latencies.size == 0:
            return {"mean": float("nan"), "p95": float("nan"), "max": float("nan")}
        return {
            "mean": float(latencies.mean()),
            "p95": float(np.percentile(latencies, 95)),
            "max": float(latencies.max()),
        }

    def executed_model_counts(self, n_models: int) -> np.ndarray:
        """How many queries executed each base model (load analysis)."""
        counts = np.zeros(n_models, dtype=int)
        for record in self.records:
            for k in range(n_models):
                if (record.executed_mask >> k) & 1:
                    counts[k] += 1
        return counts
