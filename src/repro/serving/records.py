"""Per-query serving records and run-level results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry


@dataclass
class QueryRecord:
    """Outcome of one served query.

    ``completion`` is None while tasks are in flight and for rejected
    queries; ``executed_mask`` accumulates the models that actually ran
    (successfully — under fault injection, ``failed_mask`` holds the
    models whose tasks failed permanently, and ``degraded`` marks a
    query answered from the executed subset only).
    """

    query_id: int
    sample_index: int
    arrival: float
    deadline: float  # absolute
    scheduled_mask: int = 0
    executed_mask: int = 0
    completion: Optional[float] = None
    rejected: bool = False
    pending_tasks: int = 0
    failed_mask: int = 0
    degraded: bool = False
    retries: int = 0

    @property
    def processed(self) -> bool:
        """Answered (fully or degraded) — rejected queries are not."""
        return self.completion is not None and not self.rejected

    @property
    def missed(self) -> bool:
        """Deadline miss: rejected, unfinished, or finished too late.

        A degraded answer delivered before the deadline is *not* a
        miss — the whole point of degraded mode is that a partial
        answer in time beats no answer at all.
        """
        if self.rejected or self.completion is None:
            return True
        return self.completion > self.deadline + 1e-12

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-answer seconds; ``None`` when there is no answer.

        Rejected and unfinished queries have no latency (``None``, not
        0 or the deadline): they must not contribute to p50/p99 tails.
        Degraded queries answered from a partial subset do have a real
        latency and are included.
        """
        if self.completion is None or self.rejected:
            return None
        return self.completion - self.arrival


@dataclass
class ServingResult:
    """All query records of one serving run plus scheduler stats.

    ``scheduler_wall_time`` is the *real* (``time.perf_counter``)
    seconds spent inside scheduler invocations, measured by the server
    itself; ``metrics`` is the observability registry of the run when it
    was traced (None under the default NullTracer).
    """

    records: List[QueryRecord]
    policy_name: str = ""
    scheduler_invocations: int = 0
    scheduler_work_units: int = 0
    scheduler_wall_time: float = 0.0
    metrics: Optional[MetricsRegistry] = None

    def __len__(self) -> int:
        return len(self.records)

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sample_indices, executed_masks, missed)`` as flat arrays —
        the vectorized base of the per-query metrics (hot for 100k-query
        day traces, where per-record Python loops dominate)."""
        n = len(self.records)
        samples = np.fromiter(
            (r.sample_index for r in self.records), dtype=np.intp, count=n
        )
        masks = np.fromiter(
            (r.executed_mask for r in self.records), dtype=np.intp, count=n
        )
        missed = np.fromiter(
            (r.missed for r in self.records), dtype=bool, count=n
        )
        return samples, masks, missed

    def deadline_miss_rate(self) -> float:
        """Fraction of queries that missed their deadline."""
        if not self.records:
            return 0.0
        return float(np.mean([r.missed for r in self.records]))

    def qualities(self, quality_table: np.ndarray) -> np.ndarray:
        """Per-query result quality: table lookup, 0 for missed queries."""
        if not self.records:
            return np.zeros(0)
        samples, masks, missed = self._arrays()
        values = np.asarray(quality_table)[samples, masks].astype(float)
        values[missed] = 0.0
        return values

    def accuracy(self, quality_table: np.ndarray) -> float:
        """Mean quality with missed queries counted as 0 (the paper's
        headline accuracy metric)."""
        if not self.records:
            return 0.0
        return float(self.qualities(quality_table).mean())

    def processed_accuracy(self, quality_table: np.ndarray) -> float:
        """Mean quality over queries that met their deadline."""
        if not self.records:
            return 0.0
        samples, masks, missed = self._arrays()
        if missed.all():
            return 0.0
        values = np.asarray(quality_table)[samples[~missed], masks[~missed]]
        return float(values.mean())

    def n_rejected(self) -> int:
        """Queries that were never answered (``latency is None`` —
        excluded from every latency/slack percentile, counted here and
        in the ``queries.rejected`` metric instead)."""
        return sum(r.rejected for r in self.records)

    def rejection_rate(self) -> float:
        """Fraction of queries rejected (0.0 for an empty run)."""
        if not self.records:
            return 0.0
        return self.n_rejected() / len(self.records)

    def n_degraded(self) -> int:
        """Queries answered from a partial subset after task failures."""
        return sum(r.degraded for r in self.records)

    def degraded_rate(self) -> float:
        """Fraction of queries answered in degraded mode."""
        if not self.records:
            return 0.0
        return self.n_degraded() / len(self.records)

    def total_retries(self) -> int:
        """Task re-dispatches across the whole run (fault recovery)."""
        return sum(r.retries for r in self.records)

    def latencies(self) -> np.ndarray:
        """Latencies of answered queries.

        Rejected and unfinished queries contribute *nothing* here (their
        ``latency`` is ``None``) — including them as 0 or as the
        deadline would silently skew p50/p99. Degraded answers are
        real answers and are included. An all-rejected run therefore
        yields an empty array and NaN percentile stats.
        """
        values = [r.latency for r in self.records if r.latency is not None]
        return np.asarray(values, dtype=float)

    def latency_stats(self) -> Dict[str, float]:
        """Mean / P50 / P95 / P99 / max latency over completed queries."""
        latencies = self.latencies()
        if latencies.size == 0:
            nan = float("nan")
            return {"mean": nan, "p50": nan, "p95": nan, "p99": nan,
                    "max": nan}
        p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
        return {
            "mean": float(latencies.mean()),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": float(latencies.max()),
        }

    def deadline_slack(self) -> np.ndarray:
        """Deadline slack of processed queries: ``deadline - completion``
        seconds, positive when the query finished with margin. Rejected
        and unfinished queries are excluded (their slack is undefined —
        ``None``/NaN semantics, never 0); degraded answers count with
        their real completion time. The metrics layer and the run
        report both consume this."""
        values = [
            r.deadline - r.completion
            for r in self.records
            if r.completion is not None and not r.rejected
        ]
        return np.asarray(values, dtype=float)

    def executed_model_counts(self, n_models: int) -> np.ndarray:
        """How many queries executed each base model (load analysis)."""
        if not self.records:
            return np.zeros(n_models, dtype=int)
        _, masks, _ = self._arrays()
        bits = (masks[:, None] >> np.arange(n_models)) & 1
        return bits.sum(axis=0).astype(int)
