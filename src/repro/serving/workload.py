"""Serving workload: arrivals, deadlines and per-sample quality/utility.

Experiments precompute, for every pool sample, (a) the *quality* of each
model combination — 1/0 correctness vs the full ensemble for
classification/regression, average precision for retrieval — and (b) the
*utility* rows the scheduler maximises. The simulator then replays
arrivals against these tables, so a serving run is pure queueing and
scheduling with no model execution in the loop (the models already ran
once to build the tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class ServingWorkload:
    """Replayable open-loop workload over a scored sample pool.

    Attributes:
        arrivals: Absolute arrival times (seconds), sorted ascending.
        deadlines: Relative deadlines (seconds after arrival), one per
            arrival.
        sample_indices: Pool sample replayed by each arrival.
        quality: ``(n_pool, 2**m)`` result quality per subset mask in
            ``[0, 1]``; column 0 must be 0 (no models executed).
        utilities: ``(n_pool, 2**m)`` scheduler rewards; defaults to
            ``quality`` when omitted.
    """

    arrivals: np.ndarray
    deadlines: np.ndarray
    sample_indices: np.ndarray
    quality: np.ndarray
    utilities: Optional[np.ndarray] = None

    def __post_init__(self):
        self.arrivals = np.asarray(self.arrivals, dtype=float)
        self.deadlines = np.asarray(self.deadlines, dtype=float)
        self.sample_indices = np.asarray(self.sample_indices, dtype=int)
        self.quality = np.asarray(self.quality, dtype=float)
        if self.utilities is None:
            self.utilities = self.quality
        else:
            self.utilities = np.asarray(self.utilities, dtype=float)

        n = self.arrivals.shape[0]
        if self.deadlines.shape[0] != n or self.sample_indices.shape[0] != n:
            raise ValueError(
                "arrivals, deadlines and sample_indices must share length"
            )
        if n and np.any(np.diff(self.arrivals) < 0):
            raise ValueError("arrivals must be sorted ascending")
        if np.any(self.deadlines <= 0):
            raise ValueError("relative deadlines must be positive")
        if self.quality.shape != self.utilities.shape:
            raise ValueError("quality and utilities must share shape")
        if self.quality.ndim != 2:
            raise ValueError("quality must be 2-d (n_pool, n_masks)")
        if n and self.sample_indices.max() >= self.quality.shape[0]:
            raise ValueError("sample index beyond quality table")
        if np.any(np.abs(self.quality[:, 0]) > 1e-9):
            raise ValueError("quality of the empty subset must be 0")

    @property
    def n_queries(self) -> int:
        return int(self.arrivals.shape[0])

    @property
    def n_masks(self) -> int:
        return int(self.quality.shape[1])

    @property
    def n_models(self) -> int:
        return int(self.n_masks).bit_length() - 1
