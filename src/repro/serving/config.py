"""Server configuration object (the stable construction surface).

``EnsembleServer`` used to grow one positional argument per knob;
:class:`ServerConfig` replaces that with a frozen, validated dataclass
so fault plans, retry policy and future knobs compose without
signature churn. Construct once, share freely (it is immutable), and
derive variants with :meth:`ServerConfig.replace`::

    config = ServerConfig(max_buffer=32, faults=FaultPlan(seed=7,
                          task_failure_rate=0.05))
    server = EnsembleServer.from_config(latencies, policy, config)
    drop = config.replace(degraded_answers=False)

All validation lives here; the server trusts a ``ServerConfig``
completely.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import FaultPlan
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ServerConfig:
    """Every serving-loop knob of :class:`EnsembleServer`.

    Attributes:
        allow_rejection: Skip queries whose estimated completion exceeds
            their deadline (the paper's Exp-1 setting). When False every
            query is processed (Exp-2 / Table II).
        max_buffer: Largest buffer slice handed to the scheduler at once.
        overhead_base: Fixed per-invocation scheduling delay (seconds).
        overhead_per_unit: Scheduling delay per scheduler work unit.
        faults: Fault plan to inject; ``None`` (or a null plan) keeps
            the reliable event loop byte-identical to the fault-free
            server.
        task_timeout: Per-task watchdog (seconds). A task still running
            ``task_timeout`` after its start is abandoned (the
            non-preemptive worker keeps grinding, but the server stops
            waiting) and handled like a failure: retried or degraded.
            ``None`` disables the watchdog.
        max_retries: Retry budget per task. A failed or timed-out task
            is re-dispatched onto the least-loaded live worker for its
            model (same or sibling) at most this many times.
        retry_backoff: Delay (seconds) before each retry dispatch.
        degraded_answers: Answer a query whose tasks partially failed
            from the executed subset (KNN filling + stacking make the
            partial answer honest) instead of dropping it. With False,
            any permanently failed task drops the whole query
            (drop-on-failure — the resilience study's baseline).
    """

    allow_rejection: bool = True
    max_buffer: int = 16
    overhead_base: float = 2e-4
    overhead_per_unit: float = 2e-8
    faults: Optional[FaultPlan] = None
    task_timeout: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 0.0
    degraded_answers: bool = True

    def __post_init__(self):
        if self.max_buffer < 1:
            raise ValueError(
                f"max_buffer must be >= 1, got {self.max_buffer}"
            )
        check_positive("overhead_base", self.overhead_base, allow_zero=True)
        check_positive(
            "overhead_per_unit", self.overhead_per_unit, allow_zero=True
        )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or None, got "
                f"{type(self.faults).__name__}"
            )
        if self.task_timeout is not None:
            check_positive("task_timeout", self.task_timeout)
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        check_positive("retry_backoff", self.retry_backoff, allow_zero=True)

    @property
    def fault_free(self) -> bool:
        """True when the config needs none of the fault machinery."""
        return (
            (self.faults is None or self.faults.is_null)
            and self.task_timeout is None
        )

    def replace(self, **changes) -> "ServerConfig":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
