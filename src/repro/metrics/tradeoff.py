"""Latency/accuracy trade-off objective (Exp-2, Fig. 11/15).

The paper scores each baseline with ``c = 100 * Acc - λ * Latency`` and
reports the window of weights λ over which Schemble achieves the best
trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.utils.validation import check_positive


def tradeoff_objective(
    accuracy: float, latency: float, weight: float
) -> float:
    """``c = 100 * accuracy - weight * latency`` (accuracy in [0, 1])."""
    if not 0.0 <= accuracy <= 1.0 + 1e-9:
        raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
    check_positive("latency", latency, allow_zero=True)
    return 100.0 * accuracy - weight * latency


def best_method_windows(
    methods: Dict[str, Tuple[float, float]],
    weights: Sequence[float],
) -> Dict[str, List[float]]:
    """Which method wins the trade-off at each weight λ.

    Args:
        methods: ``name -> (accuracy, latency)``.
        weights: The λ grid to evaluate.

    Returns:
        ``name -> list of weights where that method is (tied-)best``.
    """
    if not methods:
        raise ValueError("need at least one method")
    windows: Dict[str, List[float]] = {name: [] for name in methods}
    for weight in weights:
        scores = {
            name: tradeoff_objective(acc, lat, weight)
            for name, (acc, lat) in methods.items()
        }
        best = max(scores.values())
        for name, score in scores.items():
            if score >= best - 1e-9:
                windows[name].append(float(weight))
    return windows
