"""Evaluation metrics and reporting helpers."""

from repro.metrics.tradeoff import (
    best_method_windows,
    tradeoff_objective,
)
from repro.metrics.tables import format_table

__all__ = [
    "tradeoff_objective",
    "best_method_windows",
    "format_table",
]
