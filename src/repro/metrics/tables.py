"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (the benches print these so the
    reproduced figures/tables are readable in pytest output)."""
    headers = [str(h) for h in headers]
    rendered: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
