"""From-scratch decision trees and gradient boosting.

This subpackage stands in for XGBoost, which the paper uses as the
stacking aggregation model for the text-matching ensemble. The boosted
trees here implement the same training scheme (additive trees fit to
loss gradients with shrinkage) at a scale appropriate for the synthetic
substrate.
"""

from repro.trees.decision_tree import DecisionTreeRegressor
from repro.trees.gbdt import GradientBoostingClassifier, GradientBoostingRegressor

__all__ = [
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
]
