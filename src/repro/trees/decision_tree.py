"""CART regression trees used as gradient-boosting weak learners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """A tree node; leaves have ``value`` set, internal nodes a split."""

    value: Optional[float] = None
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


class DecisionTreeRegressor:
    """A depth-limited CART regressor minimising squared error.

    Split candidates are quantiles of each feature rather than every
    distinct value, which keeps fitting fast on the residual targets that
    gradient boosting produces while losing essentially no quality.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        max_thresholds: int = 16,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self._root: Optional[_Node] = None
        self.n_features_: Optional[int] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on features ``x`` and real targets ``y``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ValueError(f"x must be 2-d, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x and y disagree on sample count: {x.shape[0]} vs {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.n_features_ = x.shape[1]
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if (
            depth >= self.max_depth
            or y.shape[0] < 2 * self.min_samples_leaf
            or np.allclose(y, y[0])
        ):
            return _Node(value=float(y.mean()))
        split = self._best_split(x, y)
        if split is None:
            return _Node(value=float(y.mean()))
        feature, threshold, mask = split
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._grow(x[mask], y[mask], depth + 1),
            right=self._grow(x[~mask], y[~mask], depth + 1),
        )

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """Return ``(feature, threshold, left_mask)`` minimising SSE."""
        n = y.shape[0]
        base_sse = float(((y - y.mean()) ** 2).sum())
        best = None
        best_gain = 1e-12
        quantiles = np.linspace(0.0, 1.0, self.max_thresholds + 2)[1:-1]
        for feature in range(x.shape[1]):
            column = x[:, feature]
            thresholds = np.unique(np.quantile(column, quantiles))
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                if (
                    n_left < self.min_samples_leaf
                    or n - n_left < self.min_samples_leaf
                ):
                    continue
                left, right = y[mask], y[~mask]
                sse = float(
                    ((left - left.mean()) ** 2).sum()
                    + ((right - right.mean()) ** 2).sum()
                )
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), mask)
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Leaf-mean prediction for each row of ``x``."""
        if self._root is None:
            raise RuntimeError("predict called before fit")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n_features_:
            raise ValueError(
                f"x must have shape (n, {self.n_features_}), got {x.shape}"
            )
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("depth called before fit")
        return walk(self._root)
