"""Gradient-boosted trees (the stacking aggregator substrate).

``GradientBoostingClassifier`` fits one regression tree per class per
round on the softmax gradient, exactly the scheme XGBoost uses for
multi-class objectives (minus second-order weights and regularisation
terms that do not matter at this scale).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.functional import one_hot, softmax
from repro.trees.decision_tree import DecisionTreeRegressor
from repro.utils.validation import check_in_range, check_positive


class GradientBoostingRegressor:
    """Least-squares gradient boosting."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
    ):
        self.n_estimators = int(check_positive("n_estimators", n_estimators))
        self.learning_rate = check_in_range("learning_rate", learning_rate, 0.0, 1.0)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._trees: List[DecisionTreeRegressor] = []
        self._base: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Fit additive trees to least-squares residuals."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        self._base = float(y.mean())
        self._trees = []
        current = np.full_like(y, self._base)
        for _ in range(self.n_estimators):
            residual = y - current
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(x, residual)
            current += self.learning_rate * tree.predict(x)
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Sum of the base score and all shrunken tree outputs."""
        if not self._trees:
            raise RuntimeError("predict called before fit")
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out


class GradientBoostingClassifier:
    """Softmax gradient boosting for (multi-class) classification."""

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
    ):
        self.n_estimators = int(check_positive("n_estimators", n_estimators))
        self.learning_rate = check_in_range("learning_rate", learning_rate, 0.0, 1.0)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._rounds: List[List[DecisionTreeRegressor]] = []
        self._prior: Optional[np.ndarray] = None
        self.num_classes_: Optional[int] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        """Fit one tree per class per round on softmax gradients."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x and y disagree on sample count: {x.shape[0]} vs {y.shape[0]}"
            )
        self.num_classes_ = int(y.max()) + 1
        if self.num_classes_ < 2:
            raise ValueError("need at least two classes to fit a classifier")
        targets = one_hot(y, self.num_classes_)
        # Log-prior initialisation matches XGBoost's base_score behaviour.
        counts = targets.mean(axis=0).clip(1e-6, None)
        self._prior = np.log(counts)
        scores = np.tile(self._prior, (x.shape[0], 1))
        self._rounds = []
        for _ in range(self.n_estimators):
            probs = softmax(scores)
            gradient = targets - probs
            round_trees: List[DecisionTreeRegressor] = []
            for k in range(self.num_classes_):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                ).fit(x, gradient[:, k])
                scores[:, k] += self.learning_rate * tree.predict(x)
                round_trees.append(tree)
            self._rounds.append(round_trees)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw per-class scores (log-prior plus tree contributions)."""
        if self._prior is None:
            raise RuntimeError("predict called before fit")
        x = np.asarray(x, dtype=float)
        scores = np.tile(self._prior, (x.shape[0], 1))
        for round_trees in self._rounds:
            for k, tree in enumerate(round_trees):
                scores[:, k] += self.learning_rate * tree.predict(x)
        return scores

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability matrix via softmax over the scores."""
        return softmax(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.decision_function(x), axis=1)
