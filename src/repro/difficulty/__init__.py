"""Query difficulty: discrepancy score, prediction and accuracy profiling."""

from repro.difficulty.divergence import (
    euclidean_distance,
    js_divergence,
    kl_divergence,
    symmetric_kl,
)
from repro.difficulty.discrepancy import DiscrepancyScorer
from repro.difficulty.agreement import ensemble_agreement
from repro.difficulty.predictor import DiscrepancyPredictor
from repro.difficulty.profiling import (
    AccuracyProfiler,
    estimate_marginal_utility,
)

__all__ = [
    "kl_divergence",
    "symmetric_kl",
    "js_divergence",
    "euclidean_distance",
    "DiscrepancyScorer",
    "ensemble_agreement",
    "DiscrepancyPredictor",
    "AccuracyProfiler",
    "estimate_marginal_utility",
]
