"""Distances between model output distributions (Section V-A).

Classification tasks use Jensen-Shannon divergence between probability
rows (as the discrepancy score does) or symmetric KL (as the ensemble
agreement baseline does); regression tasks use Euclidean distance.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _clip_rows(p: np.ndarray) -> np.ndarray:
    p = np.asarray(p, dtype=float)
    if p.ndim == 1:
        p = p[None, :]
    return np.clip(p, _EPS, None)


def kl_divergence(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Row-wise ``KL(p || q)`` for probability matrices."""
    p = _clip_rows(p)
    q = _clip_rows(q)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return (p * (np.log(p) - np.log(q))).sum(axis=1)


def symmetric_kl(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Row-wise symmetric KL divergence ``KL(p||q) + KL(q||p)``."""
    return kl_divergence(p, q) + kl_divergence(q, p)


def js_divergence(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Row-wise Jensen-Shannon divergence (bounded by ``log 2``)."""
    p = _clip_rows(p)
    q = _clip_rows(q)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    mid = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, mid) + 0.5 * kl_divergence(q, mid)


def total_variation(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Row-wise total variation distance ``0.5 * ||p - q||_1``.

    Unlike KL/JS, TV is not dominated by log-ratio blow-ups near the
    simplex corners: two models that are both confident (but unequally
    so) stay close, while an actual prediction flip registers strongly.
    On the numpy substrate, whose calibrated MLPs differ in confidence
    far more than real deep models do, TV preserves the discrepancy
    score's intended ranking where JS inverts it (see DESIGN.md).
    """
    p = _clip_rows(p)
    q = _clip_rows(q)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * np.abs(p - q).sum(axis=1)


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise L2 distance for regression outputs."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim == 1:
        a = a[:, None]
    if b.ndim == 1:
        b = b[:, None]
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return np.linalg.norm(a - b, axis=1)
