"""Discrepancy-score prediction for newly arrived queries (Section V-C).

Before any base model runs, the only information about a query is its
features, so a lightweight network predicts the discrepancy score. The
network has two heads — the original task and the score — trained with
the weighted loss of Eq. 2; the paper found the auxiliary task head
improves score prediction. Only the score head is used at serving time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ensemble.ensemble import DeepEnsemble
from repro.models.profiles import (
    PREDICTOR_MEMORY_FRACTION,
    PREDICTOR_RUNTIME_FRACTION,
    ModelProfile,
)
from repro.nn.models import MultiHeadMLP
from repro.utils.rng import SeedLike


class DiscrepancyPredictor:
    """Feature-to-discrepancy regressor with an auxiliary task head.

    Args:
        in_features: Input feature dimension.
        num_classes: Classes of the original task (classification) or
            target dimension (regression).
        task: Original-task kind; selects the task-head loss.
        lam: Weight λ of the discrepancy MSE term in Eq. 2 (paper: 0.2).
        hidden: Shared-trunk layer sizes; kept small because the
            predictor must cost a small fraction of the ensemble.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int = 2,
        task: str = "classification",
        lam: float = 0.2,
        hidden: Sequence[int] = (32, 16),
        epochs: int = 60,
        lr: float = 3e-3,
        seed: SeedLike = None,
    ):
        self.network = MultiHeadMLP(
            in_features=in_features,
            num_classes=num_classes,
            hidden=hidden,
            lam=lam,
            lr=lr,
            epochs=epochs,
            task=task,
            seed=seed,
        )
        self.task = task
        self._fitted = False

    def fit(
        self,
        features: np.ndarray,
        ensemble_labels: np.ndarray,
        discrepancy: np.ndarray,
    ) -> "DiscrepancyPredictor":
        """Train on historical queries.

        ``ensemble_labels`` is the ensemble's output treated as the label
        (the paper's convention) and ``discrepancy`` the score computed
        from recorded full inference results.
        """
        self.network.fit(features, ensemble_labels, discrepancy)
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted discrepancy score per query."""
        if not self._fitted:
            raise RuntimeError("predict called before fit")
        return self.network.predict_discrepancy(features)

    def num_parameters(self) -> int:
        return self.network.num_parameters()


def predictor_profile(ensemble: DeepEnsemble) -> ModelProfile:
    """Serving cost of the discrepancy predictor relative to its ensemble.

    Fig. 13 reports the extra network at ~6.5% of ensemble runtime and
    0.4-2% of memory; the profile derives from those published ratios so
    the simulator charges the overhead faithfully.
    """
    return ModelProfile(
        name="discrepancy-predictor",
        latency=PREDICTOR_RUNTIME_FRACTION * ensemble.total_latency(),
        memory=PREDICTOR_MEMORY_FRACTION * ensemble.total_memory(),
    )
