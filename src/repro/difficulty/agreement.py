"""Ensemble agreement (Carlini et al.) — the difficulty baseline.

Ranks samples by the disagreement *within* the ensemble, measured as the
mean pairwise symmetric KL divergence between base-model outputs. The
paper's Schemble(ea) ablation swaps the discrepancy score for this
metric; it underperforms on heterogeneous ensembles because inaccurate
or badly calibrated members dominate the divergences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.difficulty.divergence import euclidean_distance, symmetric_kl


def ensemble_agreement(
    member_outputs: Sequence[np.ndarray], task: str = "classification"
) -> np.ndarray:
    """Per-sample disagreement: mean pairwise distance between members.

    Higher values mean *less* agreement (harder samples), matching the
    orientation of the discrepancy score.
    """
    if task not in ("classification", "regression"):
        raise ValueError(f"unknown task {task!r}")
    outputs = [np.asarray(o, dtype=float) for o in member_outputs]
    if len(outputs) < 2:
        raise ValueError("ensemble agreement needs at least two members")
    shapes = {o.shape for o in outputs}
    if len(shapes) != 1:
        raise ValueError(f"member outputs disagree on shape: {shapes}")

    n = outputs[0].shape[0]
    total = np.zeros(n)
    pairs = 0
    for i in range(len(outputs)):
        for j in range(i + 1, len(outputs)):
            if task == "classification":
                total += symmetric_kl(outputs[i], outputs[j])
            else:
                total += euclidean_distance(outputs[i], outputs[j])
            pairs += 1
    return total / pairs
