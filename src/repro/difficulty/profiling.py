"""Model-combination accuracy profiling (Section V-D).

The profiler bins historical queries by discrepancy score and measures,
per bin, the accuracy of every base-model combination *against the full
ensemble's output* (the paper's ground-truth convention for efficiency
experiments). The resulting table ``U(bin, subset)`` is the reward
function the task scheduler maximises.

For large ensembles where profiling every combination is too expensive,
Eq. 3 estimates the utility of combinations of size > 2 from pair and
singleton profiles with diminishing marginal-reward factors γ_k.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.difficulty.divergence import euclidean_distance
from repro.ensemble.ensemble import DeepEnsemble
from repro.models.prediction_table import PredictionTable
from repro.scheduling.subsets import iter_masks, mask_members, mask_size


def _subset_output(
    table: PredictionTable, ensemble: DeepEnsemble, mask: int
) -> np.ndarray:
    """Aggregated output of the subset ``mask`` over the whole pool."""
    members = set(mask_members(mask))
    outputs = [
        table.outputs[name] if index in members else None
        for index, name in enumerate(table.model_names)
    ]
    return ensemble.aggregate(outputs)


def subset_correctness(
    table: PredictionTable,
    ensemble: DeepEnsemble,
    tolerance: Optional[float] = None,
) -> np.ndarray:
    """Per-sample correctness of every subset vs the full ensemble.

    Returns a ``(n_samples, 2**m)`` boolean matrix; column 0 (the empty
    subset) is all False. Classification subsets are correct when their
    argmax matches the ensemble's; regression subsets when their output
    is within ``tolerance`` (L2) of the ensemble's.
    """
    n_masks = 1 << table.n_models
    correct = np.zeros((table.n_samples, n_masks), dtype=bool)
    ensemble_out = table.ensemble_output

    if ensemble.task == "regression" and tolerance is None:
        tolerance = default_regression_tolerance(table)

    for mask in iter_masks(table.n_models):
        subset_out = _subset_output(table, ensemble, mask)
        if ensemble.task == "classification":
            correct[:, mask] = subset_out.argmax(axis=1) == ensemble_out.argmax(
                axis=1
            )
        else:
            correct[:, mask] = (
                euclidean_distance(subset_out, ensemble_out) <= tolerance
            )
    return correct


def default_regression_tolerance(
    table: PredictionTable, quantile: float = 0.75
) -> float:
    """Default closeness threshold for regression "accuracy".

    The ``quantile`` of single-model deviations from the ensemble: with
    the default, a lone model "agrees" with the ensemble on ~75% of
    samples, matching the redundancy level the paper measures (78.3% of
    Q&A samples are predicted correctly by any single base model).
    """
    deviations = [
        euclidean_distance(table.outputs[name], table.ensemble_output)
        for name in table.model_names
    ]
    return float(np.quantile(np.concatenate(deviations), quantile))


class AccuracyProfiler:
    """Per-bin, per-subset accuracy table over discrepancy scores.

    Args:
        n_bins: Number of discrepancy bins.
        strategy: ``"quantile"`` (equal-count bins, robust to the paper's
            zero-heavy score distribution) or ``"uniform"`` (equal-width).
        tolerance: Regression closeness threshold; defaults to
            :func:`default_regression_tolerance`.
    """

    def __init__(
        self,
        n_bins: int = 8,
        strategy: str = "quantile",
        tolerance: Optional[float] = None,
    ):
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if strategy not in ("quantile", "uniform"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.n_bins = n_bins
        self.strategy = strategy
        self.tolerance = tolerance
        self.bin_edges_: Optional[np.ndarray] = None
        self.utilities_: Optional[np.ndarray] = None
        self.bin_counts_: Optional[np.ndarray] = None
        self.n_models_: Optional[int] = None

    def fit(
        self,
        table: PredictionTable,
        scores: np.ndarray,
        ensemble: DeepEnsemble,
        quality: Optional[np.ndarray] = None,
    ) -> "AccuracyProfiler":
        """Profile subset accuracies on a historical pool.

        ``quality`` optionally supplies a precomputed ``(n, 2**m)``
        per-sample subset-quality matrix (e.g. retrieval AP); when
        omitted, correctness against the full ensemble is used. Passing
        the same matrix the evaluation uses keeps the scheduler's reward
        aligned with the reported metric.
        """
        scores = np.asarray(scores, dtype=float)
        if scores.shape[0] != table.n_samples:
            raise ValueError(
                f"scores length {scores.shape[0]} does not match pool size "
                f"{table.n_samples}"
            )
        self.n_models_ = table.n_models
        self.bin_edges_ = self._make_edges(scores)
        bins = self.bin_of(scores)

        if quality is None:
            correct = subset_correctness(
                table, ensemble, tolerance=self.tolerance
            ).astype(float)
        else:
            correct = np.asarray(quality, dtype=float)
            if correct.shape != (table.n_samples, 1 << table.n_models):
                raise ValueError(
                    f"quality shape {correct.shape} does not match "
                    f"({table.n_samples}, {1 << table.n_models})"
                )
        n_masks = 1 << table.n_models
        utilities = np.zeros((self.n_bins, n_masks))
        counts = np.zeros(self.n_bins, dtype=int)
        for b in range(self.n_bins):
            members = bins == b
            counts[b] = int(members.sum())
            if counts[b]:
                utilities[b] = correct[members].mean(axis=0)
        # Empty bins inherit the global average so lookups stay defined.
        overall = correct.mean(axis=0)
        for b in range(self.n_bins):
            if counts[b] == 0:
                utilities[b] = overall
        utilities[:, 0] = 0.0
        self.utilities_ = utilities
        self.bin_counts_ = counts
        return self

    def _make_edges(self, scores: np.ndarray) -> np.ndarray:
        if self.strategy == "quantile":
            quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)
            edges = np.quantile(scores, quantiles)
            # Collapse duplicate edges (heavy mass at score 0).
            for i in range(1, edges.shape[0]):
                if edges[i] <= edges[i - 1]:
                    edges[i] = edges[i - 1] + 1e-9
        else:
            low, high = float(scores.min()), float(scores.max())
            if high <= low:
                high = low + 1e-9
            edges = np.linspace(low, high, self.n_bins + 1)
        return edges

    def bin_of(self, scores: np.ndarray) -> np.ndarray:
        """Bin index for each score, clipped to the fitted range."""
        if self.bin_edges_ is None:
            raise RuntimeError("bin_of called before fit")
        scores = np.atleast_1d(np.asarray(scores, dtype=float))
        bins = np.digitize(scores, self.bin_edges_[1:-1], right=False)
        return np.clip(bins, 0, self.n_bins - 1)

    def utility_table(self) -> np.ndarray:
        """The fitted ``(n_bins, 2**m)`` utility table."""
        if self.utilities_ is None:
            raise RuntimeError("utility_table called before fit")
        return self.utilities_

    def utilities_for_scores(self, scores: np.ndarray) -> np.ndarray:
        """Per-query utility rows ``(n, 2**m)`` for the given scores."""
        return self.utility_table()[self.bin_of(scores)]

    def utility(self, score: float, mask: int) -> float:
        """Utility of executing subset ``mask`` on a query with ``score``."""
        row = self.utilities_for_scores(np.array([score]))[0]
        if not 0 <= mask < row.shape[0]:
            raise ValueError(f"mask {mask} out of range")
        return float(row[mask])

    def enforce_monotone(self) -> "AccuracyProfiler":
        """Repair the table so supersets never score below subsets.

        Assumption 1 (diminishing marginal utility) implies monotonicity;
        finite-sample profiling noise can violate it, and repairing keeps
        the scheduler from preferring strictly smaller subsets for free.
        """
        if self.utilities_ is None or self.n_models_ is None:
            raise RuntimeError("enforce_monotone called before fit")
        masks = sorted(iter_masks(self.n_models_), key=mask_size)
        for mask in masks:
            for k in mask_members(mask):
                parent = mask & ~(1 << k)
                self.utilities_[:, mask] = np.maximum(
                    self.utilities_[:, mask], self.utilities_[:, parent]
                )
        return self

    def enforce_difficulty_monotone(self) -> "AccuracyProfiler":
        """Repair the table so utilities never *increase* with difficulty.

        Finite-sample profiling noise can make a harder bin look easier
        for some subset, which misleads the scheduler into spending
        models on the wrong queries. Each mask's column is projected to
        the nearest non-increasing sequence (pool-adjacent-violators,
        weighted by bin occupancy) — the structural prior behind
        Fig. 4b's monotone curves.
        """
        if self.utilities_ is None or self.bin_counts_ is None:
            raise RuntimeError("enforce_difficulty_monotone called before fit")
        weights = np.maximum(self.bin_counts_.astype(float), 1.0)
        for mask in range(1, self.utilities_.shape[1]):
            self.utilities_[:, mask] = _isotonic_non_increasing(
                self.utilities_[:, mask], weights
            )
        return self

    def per_bin_accuracy(self, mask: int) -> np.ndarray:
        """Accuracy of one combination across bins (the Fig. 4b series)."""
        return self.utility_table()[:, mask]


def _isotonic_non_increasing(
    values: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Weighted L2 projection onto non-increasing sequences (PAV)."""
    # Negate, solve the non-decreasing problem, negate back.
    values = -np.asarray(values, dtype=float)
    blocks = [[values[0], weights[0], 1]]  # (mean, weight, length)
    for value, weight in zip(values[1:], weights[1:]):
        blocks.append([value, weight, 1])
        while len(blocks) > 1 and blocks[-2][0] > blocks[-1][0]:
            mean_b, weight_b, len_b = blocks.pop()
            mean_a, weight_a, len_a = blocks.pop()
            total = weight_a + weight_b
            blocks.append(
                [(mean_a * weight_a + mean_b * weight_b) / total, total,
                 len_a + len_b]
            )
    out = np.empty_like(values)
    position = 0
    for mean, _, length in blocks:
        out[position : position + length] = mean
        position += length
    return -out


def fit_gammas(
    profiler: AccuracyProfiler, model_order: Sequence[int]
) -> List[float]:
    """Estimate diminishing factors γ_k from a fully profiled table.

    For each growth step ``k`` (from a k-set to a (k+1)-set along the
    accuracy-sorted ``model_order``), γ_k is the least-squares ratio
    between observed marginal gains and Eq. 3's pairwise-average
    predictor, pooled over bins.
    """
    table = profiler.utility_table()
    m = profiler.n_models_
    if m is None:
        raise RuntimeError("profiler must be fit first")
    order = list(model_order)
    gammas: List[float] = []
    for k in range(1, m):
        prefix_mask = 0
        for model in order[:k]:
            prefix_mask |= 1 << model
        new_model = order[k]
        grown_mask = prefix_mask | (1 << new_model)
        observed = table[:, grown_mask] - table[:, prefix_mask]
        predicted = np.zeros(table.shape[0])
        for model in order[:k]:
            pair = (1 << model) | (1 << new_model)
            predicted += table[:, pair] - table[:, 1 << model]
        predicted /= k
        denom = float((predicted**2).sum())
        gammas.append(float((observed * predicted).sum() / denom) if denom > 1e-12 else 1.0)
    return gammas


def estimate_marginal_utility(
    small_utilities: Dict[int, np.ndarray],
    n_models: int,
    model_order: Sequence[int],
    gammas: Optional[Sequence[float]] = None,
) -> Dict[int, np.ndarray]:
    """Estimate utilities of all subsets from size-≤2 profiles (Eq. 3).

    Args:
        small_utilities: ``mask -> per-bin utility vector`` for every
            mask of size 1 and 2 (and optionally the empty mask).
        n_models: Ensemble size ``m``.
        model_order: Model indices sorted by accuracy (descending), the
            order along which Eq. 3 grows combinations.
        gammas: Diminishing factors ``γ_1..γ_{m-1}``; defaults to a
            geometric decay ``0.9**k``.

    Returns:
        ``mask -> per-bin utility vector`` for *every* non-empty mask.
    """
    order = list(model_order)
    if sorted(order) != list(range(n_models)):
        raise ValueError(
            f"model_order must be a permutation of 0..{n_models - 1}"
        )
    if gammas is None:
        gammas = [0.9**k for k in range(1, n_models)]
    gammas = list(gammas)
    if len(gammas) < n_models - 1:
        raise ValueError(
            f"need {n_models - 1} gammas, got {len(gammas)}"
        )

    for mask in iter_masks(n_models):
        if mask_size(mask) <= 2 and mask not in small_utilities:
            raise ValueError(f"missing profiled utility for mask {mask:b}")

    rank = {model: position for position, model in enumerate(order)}
    estimates: Dict[int, np.ndarray] = {
        mask: np.asarray(value, dtype=float)
        for mask, value in small_utilities.items()
    }
    for mask in sorted(iter_masks(n_models), key=mask_size):
        if mask in estimates:
            continue
        members = sorted(mask_members(mask), key=lambda model: rank[model])
        newest = members[-1]
        base_members = members[:-1]
        base_mask = 0
        for model in base_members:
            base_mask |= 1 << model
        k = len(base_members)
        marginal = np.zeros_like(estimates[1 << newest])
        for model in base_members:
            pair = (1 << model) | (1 << newest)
            marginal += estimates[pair] - estimates[1 << model]
        marginal /= k
        estimates[mask] = np.clip(
            estimates[base_mask] + gammas[k - 1] * marginal, 0.0, 1.0
        )
    return estimates
