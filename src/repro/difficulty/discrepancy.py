"""The discrepancy score (Eq. 1, Section V-A).

``Dis(x) = (1/m) * sum_k Norm_x( d(f(x; θ_k), E(x; θ_1..θ_m)) )``

Each base model's distance-to-ensemble is *normalised per model* before
averaging, which removes the bias where an inaccurate model's larger
average distances dominate the score — the heterogeneous-ensemble
problem that plain ensemble agreement cannot handle.

Because the normalisation constants must be applied to *future* queries
(whose distances are unknown until execution), they are fit once on
historical data and stored, mirroring how a production system would
profile its ensemble offline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.difficulty.divergence import (
    euclidean_distance,
    js_divergence,
    total_variation,
)


class DiscrepancyScorer:
    """Computes discrepancy scores with per-model normalisation.

    Args:
        task: ``classification`` or ``regression`` (Euclidean distance).
        distance: Classification distance — ``"tv"`` (total variation,
            the substrate default; see :func:`total_variation` for why)
            or ``"js"`` (the paper's Jensen-Shannon divergence).
        normalization: How each model's distance column is scaled —
            ``"quantile"`` divides by an upper quantile (robust to
            outliers), ``"max"`` by the maximum, ``"mean"`` by the mean.
        quantile: The quantile used when ``normalization="quantile"``.
    """

    def __init__(
        self,
        task: str = "classification",
        distance: str = "tv",
        normalization: str = "quantile",
        quantile: float = 0.95,
    ):
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        if distance not in ("tv", "js"):
            raise ValueError(f"unknown distance {distance!r}")
        if normalization not in ("quantile", "max", "mean"):
            raise ValueError(f"unknown normalization {normalization!r}")
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        self.task = task
        self.distance = distance
        self.normalization = normalization
        self.quantile = quantile
        self.scales_: Optional[np.ndarray] = None

    def _distances(
        self,
        member_outputs: Sequence[np.ndarray],
        ensemble_output: np.ndarray,
    ) -> np.ndarray:
        """Per-model distance columns, shape ``(n, m)``."""
        ensemble_output = np.asarray(ensemble_output, dtype=float)
        columns: List[np.ndarray] = []
        for output in member_outputs:
            output = np.asarray(output, dtype=float)
            if output.shape != ensemble_output.shape:
                raise ValueError(
                    f"member output shape {output.shape} does not match "
                    f"ensemble output shape {ensemble_output.shape}"
                )
            if self.task == "classification":
                dist = total_variation if self.distance == "tv" else js_divergence
                columns.append(dist(output, ensemble_output))
            else:
                columns.append(euclidean_distance(output, ensemble_output))
        return np.stack(columns, axis=1)

    def fit(
        self,
        member_outputs: Sequence[np.ndarray],
        ensemble_output: np.ndarray,
    ) -> "DiscrepancyScorer":
        """Fit per-model normalisation constants on historical outputs."""
        distances = self._distances(member_outputs, ensemble_output)
        if self.normalization == "quantile":
            scales = np.quantile(distances, self.quantile, axis=0)
        elif self.normalization == "max":
            scales = distances.max(axis=0)
        else:
            scales = distances.mean(axis=0)
        self.scales_ = np.maximum(scales, 1e-9)
        return self

    def score(
        self,
        member_outputs: Sequence[np.ndarray],
        ensemble_output: np.ndarray,
    ) -> np.ndarray:
        """Discrepancy score per sample using the fitted normalisation."""
        if self.scales_ is None:
            raise RuntimeError("score called before fit")
        distances = self._distances(member_outputs, ensemble_output)
        if distances.shape[1] != self.scales_.shape[0]:
            raise ValueError(
                f"got {distances.shape[1]} member outputs, fitted with "
                f"{self.scales_.shape[0]}"
            )
        normalised = np.clip(distances / self.scales_, 0.0, 1.0)
        return normalised.mean(axis=1)

    def fit_score(
        self,
        member_outputs: Sequence[np.ndarray],
        ensemble_output: np.ndarray,
    ) -> np.ndarray:
        """Fit on the given outputs and return their scores."""
        return self.fit(member_outputs, ensemble_output).score(
            member_outputs, ensemble_output
        )
