"""Gating-network selection (Section III-B / Fig. 2d).

A lightweight network (the same capacity class as Schemble's
discrepancy predictor, per the paper's fair-comparison setup) is trained
to predict each base model's per-query credibility — whether that
model's lone output would match the full ensemble. Models whose gate
weight clears a threshold relative to the best gate are executed.

Because deep models' preference space is high-variance (Fig. 5), the
gate tends to learn something close to each model's average accuracy,
producing near-identical selections for all queries — the failure mode
the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.nn.models import MLPRegressor
from repro.serving.policies import ImmediateMaskPolicy
from repro.utils.rng import SeedLike
from repro.utils.validation import check_in_range


class GatingNetwork:
    """Per-model gate weights from query features.

    Args:
        in_features: Query feature dimension.
        n_models: Ensemble size (one gate output per model).
        threshold: Execute model ``k`` when its gate weight is at least
            ``threshold * max_gate`` for the query.
    """

    def __init__(
        self,
        in_features: int,
        n_models: int,
        threshold: float = 0.9,
        hidden=(32, 16),
        epochs: int = 40,
        lr: float = 1e-3,
        seed: SeedLike = None,
    ):
        if n_models < 1:
            raise ValueError(f"n_models must be >= 1, got {n_models}")
        self.n_models = n_models
        self.threshold = check_in_range("threshold", threshold, 0.0, 1.0)
        self._network = MLPRegressor(
            in_features=in_features,
            out_features=n_models,
            hidden=hidden,
            epochs=epochs,
            lr=lr,
            seed=seed,
        )
        self._fitted = False

    def fit(
        self, features: np.ndarray, member_correct: np.ndarray
    ) -> "GatingNetwork":
        """Train gates against per-model correctness targets."""
        member_correct = np.asarray(member_correct, dtype=float)
        if member_correct.shape[1] != self.n_models:
            raise ValueError(
                f"member_correct has {member_correct.shape[1]} columns, "
                f"expected {self.n_models}"
            )
        self._network.fit(np.asarray(features, dtype=float), member_correct)
        self._fitted = True
        return self

    def gate_weights(self, features: np.ndarray) -> np.ndarray:
        """Gate weight per (query, model), clipped to [0, 1]."""
        if not self._fitted:
            raise RuntimeError("gate_weights called before fit")
        return np.clip(self._network.predict(features), 0.0, 1.0)

    def select_masks(self, features: np.ndarray) -> np.ndarray:
        """Subset mask per query by thresholding gate weights."""
        weights = self.gate_weights(features)
        masks = np.zeros(weights.shape[0], dtype=int)
        for i, row in enumerate(weights):
            cutoff = self.threshold * row.max()
            mask = 0
            for k, value in enumerate(row):
                if value >= cutoff - 1e-12:
                    mask |= 1 << k
            if mask == 0:
                mask = 1 << int(np.argmax(row))
            masks[i] = mask
        return masks

    def policy(self, features: np.ndarray) -> ImmediateMaskPolicy:
        """Precompute masks for a serving pool and wrap them as a policy."""
        return ImmediateMaskPolicy("gating", self.select_masks(features))
