"""Serving baselines: Original, Static, DES, Gating and Schemble."""

from repro.baselines.original import original_policy
from repro.baselines.static import StaticSelection, static_policy
from repro.baselines.des import DynamicEnsembleSelection
from repro.baselines.gating import GatingNetwork
from repro.baselines.schemble import SchemblePipeline

__all__ = [
    "original_policy",
    "StaticSelection",
    "static_policy",
    "DynamicEnsembleSelection",
    "GatingNetwork",
    "SchemblePipeline",
]
