"""The original inference pipeline: every model on every query."""

from __future__ import annotations

from repro.serving.policies import ImmediateMaskPolicy


def original_policy(n_models: int) -> ImmediateMaskPolicy:
    """Execute all ``n_models`` base models for each arriving query."""
    if n_models < 1:
        raise ValueError(f"n_models must be >= 1, got {n_models}")
    full_mask = (1 << n_models) - 1
    return ImmediateMaskPolicy("original", full_mask)
