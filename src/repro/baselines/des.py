"""Dynamic ensemble selection (Section III-B / Fig. 2c).

The repo's stand-in for FIRE-DES++: k-means partitions the feature space
into regions; each base model's *competence* per region is its accuracy
against the full ensemble on historical data; at inference time, the
query's region selects every model whose competence clears a threshold
relative to the region's best (online pruning), falling back to the
single most competent model.

Like all DES methods, the selection is a pure function of the query's
features — queue state is ignored, which is the weakness Schemble
exploits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.serving.policies import ImmediateMaskPolicy
from repro.utils.rng import SeedLike
from repro.utils.validation import check_in_range


class DynamicEnsembleSelection:
    """Region-competence DES selector.

    Args:
        n_regions: Number of k-means regions.
        threshold: A model is selected when its regional competence is at
            least ``threshold * best_competence`` in that region.
        seed: Clustering seed.
    """

    def __init__(
        self,
        n_regions: int = 12,
        threshold: float = 0.995,
        seed: SeedLike = None,
    ):
        if n_regions < 1:
            raise ValueError(f"n_regions must be >= 1, got {n_regions}")
        self.n_regions = n_regions
        self.threshold = check_in_range("threshold", threshold, 0.0, 1.0)
        self._kmeans = KMeans(n_clusters=n_regions, seed=seed)
        self.competence_: Optional[np.ndarray] = None  # (regions, models)

    def fit(
        self,
        features: np.ndarray,
        member_correct: np.ndarray,
    ) -> "DynamicEnsembleSelection":
        """Learn regions and per-region competences.

        Args:
            features: Historical query features ``(n, d)``.
            member_correct: ``(n, m)`` booleans — whether each base model
                alone matched the full ensemble on each sample.
        """
        features = np.asarray(features, dtype=float)
        member_correct = np.asarray(member_correct, dtype=float)
        if features.shape[0] != member_correct.shape[0]:
            raise ValueError(
                "features and member_correct disagree on sample count"
            )
        self._kmeans.fit(features)
        regions = self._kmeans.predict(features)
        m = member_correct.shape[1]
        competence = np.zeros((self.n_regions, m))
        overall = member_correct.mean(axis=0)
        for region in range(self.n_regions):
            members = regions == region
            # Sparse regions fall back to global competence.
            competence[region] = (
                member_correct[members].mean(axis=0)
                if members.sum() >= 5
                else overall
            )
        self.competence_ = competence
        return self

    def select_masks(self, features: np.ndarray) -> np.ndarray:
        """Subset mask per query (>= 1 model each)."""
        if self.competence_ is None:
            raise RuntimeError("select_masks called before fit")
        regions = self._kmeans.predict(np.asarray(features, dtype=float))
        masks = np.zeros(regions.shape[0], dtype=int)
        for i, region in enumerate(regions):
            competence = self.competence_[region]
            cutoff = self.threshold * competence.max()
            mask = 0
            for k, value in enumerate(competence):
                if value >= cutoff - 1e-12:
                    mask |= 1 << k
            if mask == 0:
                mask = 1 << int(np.argmax(competence))
            masks[i] = mask
        return masks

    def policy(self, features: np.ndarray) -> ImmediateMaskPolicy:
        """Precompute masks for a serving pool and wrap them as a policy."""
        return ImmediateMaskPolicy("des", self.select_masks(features))
