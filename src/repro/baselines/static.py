"""Static ensemble selection (Section III-B / Fig. 2b).

Chooses one model subset for *all* queries and spends the memory freed
by undeployed models on replicas of the chosen ones (Fig. 2b deploys
models 1 and 2 plus a replica of model 2). The paper finds the optimal
deployment by greedy search, which is cheap for deep-ensemble sizes; the
search here scores every feasible plan by

    mean subset quality x min(1, plan throughput / target rate)

so a plan that cannot keep up with the offered load is penalised by the
deadline misses it would incur — the accuracy/throughput trade-off that
makes static selection prefer fewer-but-replicated models under load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.scheduling.subsets import iter_masks, mask_members
from repro.serving.policies import ImmediateMaskPolicy
from repro.serving.server import WorkerSpec
from repro.utils.validation import check_positive


@dataclass
class StaticSelection:
    """A static deployment plan: one subset + replica workers."""

    mask: int
    workers: List[WorkerSpec]
    score: float = 0.0

    @property
    def policy(self) -> ImmediateMaskPolicy:
        return ImmediateMaskPolicy("static", self.mask)

    def replica_counts(self, n_models: int) -> List[int]:
        counts = [0] * n_models
        for worker in self.workers:
            counts[worker.model_index] += 1
        return counts


def replica_workers(
    mask: int,
    latencies: Sequence[float],
    memories: Sequence[float],
    memory_budget: float,
) -> List[WorkerSpec]:
    """Deploy the subset once, then replicate the throughput bottleneck.

    Every query needs every subset member, so plan throughput is
    ``min_k replicas_k / latency_k``; each added replica goes to the
    member currently limiting that minimum, while its memory fits.
    """
    members = mask_members(mask)
    if not members:
        raise ValueError("mask must select at least one model")
    workers = [WorkerSpec(k, float(latencies[k])) for k in members]
    used = sum(memories[k] for k in members)
    while True:
        replica_counts = {k: 0 for k in members}
        for worker in workers:
            replica_counts[worker.model_index] += 1
        candidates = [
            k for k in members if used + memories[k] <= memory_budget + 1e-9
        ]
        if not candidates:
            break
        bottleneck = max(
            candidates, key=lambda k: latencies[k] / replica_counts[k]
        )
        workers.append(WorkerSpec(bottleneck, float(latencies[bottleneck])))
        used += memories[bottleneck]
    return workers


def plan_throughput(
    workers: Sequence[WorkerSpec], mask: int, latencies: Sequence[float]
) -> float:
    """Sustainable queries/second of a static plan (bottleneck member)."""
    members = mask_members(mask)
    rates = []
    for k in members:
        replicas = sum(1 for w in workers if w.model_index == k)
        rates.append(replicas / latencies[k])
    return min(rates) if rates else 0.0


def static_policy(
    quality: np.ndarray,
    latencies: Sequence[float],
    memories: Sequence[float],
    target_rate: float = 20.0,
    memory_budget: float = None,
) -> StaticSelection:
    """Greedy search over all subset deployments.

    Args:
        quality: ``(n, 2**m)`` historical subset-quality table.
        latencies: Per-model inference times.
        memories: Per-model memory footprints.
        target_rate: Offered load (queries/second) the plan should keep
            up with; plans below it are penalised proportionally.
        memory_budget: Defaults to deploying the complete ensemble once
            (the shared resource envelope).
    """
    check_positive("target_rate", target_rate)
    m = len(latencies)
    if quality.shape[1] != (1 << m):
        raise ValueError(
            f"quality has {quality.shape[1]} masks, expected {1 << m}"
        )
    if memory_budget is None:
        memory_budget = float(sum(memories))

    best: StaticSelection = None
    for mask in iter_masks(m):
        members = mask_members(mask)
        base_memory = sum(memories[k] for k in members)
        if base_memory > memory_budget + 1e-9:
            continue
        workers = replica_workers(mask, latencies, memories, memory_budget)
        throughput = plan_throughput(workers, mask, latencies)
        accuracy = float(quality[:, mask].mean())
        score = accuracy * min(1.0, throughput / target_rate)
        if best is None or score > best.score:
            best = StaticSelection(mask=mask, workers=workers, score=score)
    if best is None:
        raise ValueError("no subset fits the memory budget")
    return best
