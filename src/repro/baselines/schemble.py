"""The Schemble pipeline (Section IV): the paper's primary contribution.

Wires together the discrepancy scorer (Eq. 1), the score predictor
(Eq. 2), the accuracy profiler (Section V-D) and the DP task scheduler
(Alg. 1) into a buffered serving policy. Variants reproduce the paper's
ablations:

* ``metric="agreement"`` — Schemble(ea): ensemble agreement replaces the
  discrepancy score.
* ``use_predictor=False`` — Schemble(t): every query gets the same
  (historical-mean) difficulty, isolating the scheduler's contribution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.difficulty.agreement import ensemble_agreement
from repro.difficulty.discrepancy import DiscrepancyScorer
from repro.difficulty.predictor import DiscrepancyPredictor, predictor_profile
from repro.difficulty.profiling import AccuracyProfiler
from repro.ensemble.ensemble import DeepEnsemble
from repro.models.prediction_table import PredictionTable
from repro.scheduling.dp import DPScheduler
from repro.serving.policies import BufferedSchedulingPolicy
from repro.utils.rng import SeedLike


class SchemblePipeline:
    """End-to-end Schemble: difficulty estimation + profiling + scheduling.

    Args:
        ensemble: The deployed deep ensemble.
        metric: ``"discrepancy"`` (Eq. 1) or ``"agreement"`` (the
            Schemble(ea) ablation).
        use_predictor: When False, skip score prediction and assign every
            query the historical mean score (Schemble(t)).
        n_bins: Discrepancy bins for accuracy profiling.
        delta: DP quantisation step δ.
        lam: Eq. 2 loss weight λ for the predictor's score head.
        predictor_epochs: Predictor training epochs.
        enforce_monotone: Repair the profiled utility table so supersets
            never score below subsets (Assumption 1).
        seed: Seed for predictor training.
    """

    def __init__(
        self,
        ensemble: DeepEnsemble,
        metric: str = "discrepancy",
        use_predictor: bool = True,
        n_bins: int = 8,
        delta: float = 0.01,
        lam: float = 0.2,
        predictor_epochs: int = 40,
        enforce_monotone: bool = True,
        seed: SeedLike = None,
    ):
        if metric not in ("discrepancy", "agreement"):
            raise ValueError(f"unknown metric {metric!r}")
        self.ensemble = ensemble
        self.metric = metric
        self.use_predictor = use_predictor
        self.lam = lam
        self.predictor_epochs = predictor_epochs
        self.enforce_monotone = enforce_monotone
        self.seed = seed
        # Divergence family follows the serving task: JS for classifier
        # ensembles, Euclidean for regression/retrieval ensembles.
        self._scorer = DiscrepancyScorer(task=ensemble.task)
        self._agreement_scale: Optional[float] = None
        self.profiler = AccuracyProfiler(n_bins=n_bins)
        self.delta = delta
        self.predictor: Optional[DiscrepancyPredictor] = None
        self._mean_history_score: Optional[float] = None
        self._fitted = False

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------

    def _raw_scores(self, table: PredictionTable) -> np.ndarray:
        """Difficulty scores (chosen metric) for a prediction table."""
        member = [table.outputs[name] for name in table.model_names]
        if self.metric == "discrepancy":
            if self._scorer.scales_ is None:
                return self._scorer.fit_score(member, table.ensemble_output)
            return self._scorer.score(member, table.ensemble_output)
        raw = ensemble_agreement(member, task=self.ensemble.task)
        if self._agreement_scale is None:
            self._agreement_scale = max(float(np.quantile(raw, 0.95)), 1e-9)
        return np.clip(raw / self._agreement_scale, 0.0, 1.0)

    def fit(
        self,
        history_features: np.ndarray,
        history_table: Optional[PredictionTable] = None,
        history_quality: Optional[np.ndarray] = None,
    ) -> "SchemblePipeline":
        """Offline phase on historical queries.

        Computes difficulty scores from recorded full inference results,
        profiles subset accuracy per score bin, and trains the score
        predictor (Eq. 2) on (features -> ensemble label, score).
        ``history_quality`` optionally provides the per-sample subset
        quality matrix the deployment is evaluated on (e.g. retrieval
        AP), keeping rewards aligned with the reported metric.
        """
        history_features = np.asarray(history_features, dtype=float)
        if history_table is None:
            history_table = PredictionTable.from_models(
                self.ensemble.models, history_features, self.ensemble
            )
        scores = self._raw_scores(history_table)
        self._mean_history_score = float(scores.mean())

        if self.use_predictor:
            if self.ensemble.task == "classification":
                labels = history_table.ensemble_output.argmax(axis=1)
                num_classes = history_table.ensemble_output.shape[1]
                task = "classification"
            else:
                labels = history_table.ensemble_output
                num_classes = history_table.ensemble_output.shape[1]
                task = "regression"
            self.predictor = DiscrepancyPredictor(
                in_features=history_features.shape[1],
                num_classes=num_classes,
                task=task,
                lam=self.lam,
                epochs=self.predictor_epochs,
                seed=self.seed,
            )
            self.predictor.fit(history_features, labels, scores)

        # Profile accuracy against the signal the scheduler will
        # actually observe at serving time: the *predicted* score. This
        # calibrates away predictor noise (profiling on true scores and
        # looking up with noisy predictions flattens the conditional).
        profile_scores = (
            self.predictor.predict(history_features)
            if self.use_predictor
            else scores
        )
        self.profiler.fit(
            history_table,
            profile_scores,
            self.ensemble,
            quality=history_quality,
        )
        if self.enforce_monotone:
            # Two structural repairs on the profiled rewards: supersets
            # never score below subsets (Assumption 1), and no subset
            # gets *easier* as difficulty grows (Fig. 4b's monotone
            # curves) — both guard the scheduler from profiling noise.
            self.profiler.enforce_monotone()
            self.profiler.enforce_difficulty_monotone()
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Serving phase
    # ------------------------------------------------------------------

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Difficulty estimate for unseen queries (predictor or constant)."""
        if not self._fitted:
            raise RuntimeError("predict_scores called before fit")
        features = np.asarray(features, dtype=float)
        if self.use_predictor:
            return self.predictor.predict(features)
        return np.full(features.shape[0], self._mean_history_score)

    def true_scores(self, table: PredictionTable) -> np.ndarray:
        """Oracle scores from full inference results (analysis only)."""
        if not self._fitted:
            raise RuntimeError("true_scores called before fit")
        return self._raw_scores(table)

    def utilities(self, scores: np.ndarray) -> np.ndarray:
        """Per-query reward rows ``(n, 2**m)`` for the scheduler."""
        return self.profiler.utilities_for_scores(scores)

    def policy(
        self,
        pool_features: np.ndarray,
        name: str = "schemble",
        scheduler=None,
        scores: Optional[np.ndarray] = None,
        charge_predictor_overhead: bool = True,
    ) -> BufferedSchedulingPolicy:
        """Build the buffered serving policy for a query pool.

        Args:
            pool_features: Features of the serving pool (scores are
                predicted from them unless ``scores`` is given).
            name: Reported policy name.
            scheduler: Scheduling algorithm; defaults to DP with this
                pipeline's δ.
            scores: Override difficulty scores (e.g. oracle scores).
            charge_predictor_overhead: Charge the predictor's latency as
                the buffer entry delay (Fig. 13's measured overhead).
        """
        if scores is None:
            scores = self.predict_scores(pool_features)
        scheduler = scheduler or DPScheduler(delta=self.delta)
        entry_delay = 0.0
        if charge_predictor_overhead and self.use_predictor:
            entry_delay = predictor_profile(self.ensemble).latency
        return BufferedSchedulingPolicy(
            name=name,
            scheduler=scheduler,
            utilities=self.utilities(scores),
            scores=scores,
            entry_delay=entry_delay,
        )
