"""Schemble: query difficulty-dependent task scheduling for efficient
deep ensemble inference.

A from-scratch reproduction of Li et al., "Efficient Deep Ensemble
Inference via Query Difficulty-dependent Task Scheduling" (ICDE 2023),
including every substrate the paper depends on: a numpy neural-network
library, gradient-boosted trees, synthetic workload generators for the
paper's three applications, and a discrete-event serving simulator.

Quickstart::

    from repro import (
        make_text_matching, build_text_matching_ensemble, SchemblePipeline,
    )

    data = make_text_matching(n_samples=2000, seed=0)
    train, cal, history, pool = data.split([0.4, 0.1, 0.25, 0.25], seed=1)
    ensemble = build_text_matching_ensemble(train, calibration=cal)
    pipeline = SchemblePipeline(ensemble).fit(history.features)
    policy = pipeline.policy(pool.features)

See ``examples/`` for full serving runs and ``benchmarks/`` for the
reproduction of every figure and table in the paper.
"""

from repro.baselines.schemble import SchemblePipeline
from repro.data import (
    Dataset,
    make_cifar_like,
    make_image_retrieval,
    make_text_matching,
    make_vehicle_counting,
)
from repro.difficulty import (
    AccuracyProfiler,
    DiscrepancyPredictor,
    DiscrepancyScorer,
    ensemble_agreement,
)
from repro.ensemble import DeepEnsemble, MajorityVote, Stacking, WeightedAverage
from repro.models.zoo import (
    build_cifar_like_models,
    build_image_retrieval_ensemble,
    build_text_matching_ensemble,
    build_vehicle_counting_ensemble,
)
from repro.faults import DowntimeWindow, FaultPlan
from repro.scheduling import DPScheduler, GreedyScheduler
from repro.serving import (
    BufferedSchedulingPolicy,
    EnsembleServer,
    ImmediateMaskPolicy,
    ServerConfig,
    ServingWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "SchemblePipeline",
    "Dataset",
    "make_text_matching",
    "make_vehicle_counting",
    "make_image_retrieval",
    "make_cifar_like",
    "DiscrepancyScorer",
    "DiscrepancyPredictor",
    "AccuracyProfiler",
    "ensemble_agreement",
    "DeepEnsemble",
    "WeightedAverage",
    "MajorityVote",
    "Stacking",
    "build_text_matching_ensemble",
    "build_vehicle_counting_ensemble",
    "build_image_retrieval_ensemble",
    "build_cifar_like_models",
    "DPScheduler",
    "GreedyScheduler",
    "EnsembleServer",
    "ServerConfig",
    "FaultPlan",
    "DowntimeWindow",
    "ServingWorkload",
    "ImmediateMaskPolicy",
    "BufferedSchedulingPolicy",
    "__version__",
]
