"""Pluggable fleet placement policies (the front-end's routing brain).

A router sees one arriving query at a time — its id, pool sample and
difficulty-score rank — plus the front-end's current per-shard backlog
estimate, and names the shard the query should run on. Admission
control (see :mod:`repro.fleet.server`) then decides whether that
shard can actually buffer it.

Three policies, the ones Pochelu et al.'s router/worker serving split
compares:

``hash``
    Consistent hashing on the query's pool sample over a virtual-node
    ring. Load-blind, but gives per-shard sample affinity (the same
    sample always lands on the same shard, so shard-local caches keep
    working) and minimal reshuffling when the fleet is resized.
``power_of_two``
    Power-of-two-choices: sample two distinct shards with the router's
    own seeded RNG, send the query to the one with the smaller
    backlog. The classic exponential improvement over random placement
    in queue imbalance, at two backlog reads per query.
``score_aware``
    Difficulty-score-aware: queries whose predicted difficulty rank is
    at or above ``hard_quantile`` carry the most work (the scheduler
    will give them big subsets), so they go to the least-loaded shard;
    easy queries keep consistent-hash affinity. This reuses the same
    discrepancy scores the in-shard scheduler already computes —
    no new signal is introduced at the front end.

Every router is deterministic given its seed: :meth:`FleetRouter.reset`
rewinds the internal RNG so the same trace replays to byte-identical
placements.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

__all__ = [
    "FleetRouter",
    "ConsistentHashRouter",
    "PowerOfTwoRouter",
    "ScoreAwareRouter",
    "ROUTERS",
    "make_router",
]

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """Deterministic 64-bit mixer (SplitMix64 finalizer).

    Python's builtin ``hash`` is salted per process; routing must hash
    identically across runs and machines, so the ring and key hashes
    use this fixed mixer instead.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


class FleetRouter:
    """Common router surface consumed by :class:`~repro.fleet.server.FleetServer`.

    Subclasses implement :meth:`choose`; stateful routers (seeded RNGs)
    also override :meth:`reset`, which the fleet calls at the start of
    every run so placements replay deterministically.
    """

    name: str = "router"

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)

    def reset(self) -> None:
        """Rewind per-run state (RNGs); default routers are stateless."""

    def choose(
        self,
        query_id: int,
        sample_index: int,
        score_rank: float,
        backlogs: Sequence[int],
    ) -> int:
        """Shard index for one arriving query."""
        raise NotImplementedError


class ConsistentHashRouter(FleetRouter):
    """Consistent hashing over a virtual-node ring keyed by pool sample.

    Args:
        n_shards: Fleet size.
        replicas: Virtual nodes per shard; more replicas smooth the
            ring (64 keeps the max/mean shard share under ~1.3 for
            typical fleet sizes).
        seed: Ring salt — two fleets with the same seed build the same
            ring.
    """

    name = "hash"

    def __init__(self, n_shards: int, replicas: int = 64, seed: int = 0):
        super().__init__(n_shards)
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self.seed = int(seed)
        points = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                key = _splitmix64(
                    (self.seed << 32) ^ (shard * 0x10001) ^ replica
                )
                points.append((key, shard))
        points.sort()
        self._ring_keys = [key for key, _ in points]
        self._ring_shards = [shard for _, shard in points]

    def choose(self, query_id, sample_index, score_rank, backlogs) -> int:
        """First ring point at or after the sample's hash (wrapping)."""
        key = _splitmix64((self.seed << 32) ^ (int(sample_index) + 1))
        index = bisect.bisect_left(self._ring_keys, key)
        if index == len(self._ring_keys):
            index = 0
        return self._ring_shards[index]


class PowerOfTwoRouter(FleetRouter):
    """Power-of-two-choices over the per-shard backlog estimate."""

    name = "power_of_two"

    def __init__(self, n_shards: int, seed: int = 0):
        super().__init__(n_shards)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def reset(self) -> None:
        """Rewind the candidate-sampling RNG for a fresh run."""
        self._rng = np.random.default_rng(self.seed)

    def choose(self, query_id, sample_index, score_rank, backlogs) -> int:
        """Lower-backlog of two random distinct shards (ties: lower id)."""
        if self.n_shards == 1:
            return 0
        first = int(self._rng.integers(self.n_shards))
        second = int(self._rng.integers(self.n_shards - 1))
        if second >= first:
            second += 1
        a, b = sorted((first, second))
        return a if backlogs[a] <= backlogs[b] else b


class ScoreAwareRouter(FleetRouter):
    """Difficulty-aware placement: hard queries chase idle capacity.

    Queries whose difficulty-score rank is at or above
    ``hard_quantile`` go to the least-loaded shard (they will expand
    into the biggest subsets, so they should land where the backlog is
    smallest); the easy rest keeps consistent-hash sample affinity.
    """

    name = "score_aware"

    def __init__(
        self,
        n_shards: int,
        hard_quantile: float = 0.75,
        replicas: int = 64,
        seed: int = 0,
    ):
        super().__init__(n_shards)
        if not 0.0 <= hard_quantile <= 1.0:
            raise ValueError(
                f"hard_quantile must be in [0, 1], got {hard_quantile}"
            )
        self.hard_quantile = float(hard_quantile)
        self._affinity = ConsistentHashRouter(
            n_shards, replicas=replicas, seed=seed
        )

    def choose(self, query_id, sample_index, score_rank, backlogs) -> int:
        """Least-loaded shard for hard queries, hash affinity otherwise."""
        if score_rank >= self.hard_quantile:
            return int(np.argmin(backlogs))  # ties: lowest shard id
        return self._affinity.choose(
            query_id, sample_index, score_rank, backlogs
        )


#: Registry of routing policies a FleetConfig may name.
ROUTERS = {
    "hash": ConsistentHashRouter,
    "power_of_two": PowerOfTwoRouter,
    "score_aware": ScoreAwareRouter,
}


def make_router(
    name: str,
    n_shards: int,
    seed: int = 0,
    hash_replicas: int = 64,
    hard_quantile: float = 0.75,
) -> FleetRouter:
    """Instantiate a registered router with its policy-specific knobs."""
    if name not in ROUTERS:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
        )
    if name == "hash":
        return ConsistentHashRouter(n_shards, replicas=hash_replicas, seed=seed)
    if name == "power_of_two":
        return PowerOfTwoRouter(n_shards, seed=seed)
    return ScoreAwareRouter(
        n_shards,
        hard_quantile=hard_quantile,
        replicas=hash_replicas,
        seed=seed,
    )
