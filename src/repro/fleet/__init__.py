"""Multi-replica fleet serving on top of the single-server simulator.

Public surface:

* :class:`~repro.fleet.config.FleetConfig` — frozen, validated fleet
  configuration composing per-shard
  :class:`~repro.serving.config.ServerConfig` instances.
* :class:`~repro.fleet.server.FleetServer` /
  :class:`~repro.fleet.server.FleetResult` — the front end (router +
  admission control) over N unmodified ``EnsembleServer`` shards.
* :mod:`~repro.fleet.routers` — the placement-policy registry
  (``hash``, ``power_of_two``, ``score_aware``).
"""

from repro.fleet.config import FleetConfig
from repro.fleet.routers import (
    ROUTERS,
    ConsistentHashRouter,
    FleetRouter,
    PowerOfTwoRouter,
    ScoreAwareRouter,
    make_router,
)
from repro.fleet.server import FleetResult, FleetServer

__all__ = [
    "FleetConfig",
    "FleetServer",
    "FleetResult",
    "FleetRouter",
    "ConsistentHashRouter",
    "PowerOfTwoRouter",
    "ScoreAwareRouter",
    "ROUTERS",
    "make_router",
]
