"""Multi-replica fleet serving: route, admit, shard, merge.

:class:`FleetServer` scales the single-server simulator horizontally
without touching its event loop: N shards each run the existing
:class:`~repro.serving.server.EnsembleServer` *unmodified*, fed by a
front-end pass that replays the workload's arrival sequence through a
pluggable router (:mod:`repro.fleet.routers`) and fleet-wide admission
control.

The front end never simulates the shards — that would couple it to the
event loop it is supposed to stay out of. Instead it tracks a *fluid*
per-shard backlog: each admitted query is modelled as one job on a
virtual single-queue shard whose service time interpolates between the
fastest model (an easy query the scheduler will give a small subset)
and the whole ensemble's summed latency (a hard query), weighted by
the query's difficulty rank. Backlog(t) = jobs whose estimated finish
is still in the future. Admission control reads that backlog: a query
routed to a full shard (backlog >= ``queue_limit``) is redirected once
to the least-loaded shard, and shed outright if that shard is full too
— so overload is refused at the door, before any per-shard buffer
blows up. Shed queries emit a ``shed`` span plus a ``reject`` span
(``reason="shed"``), making them visible to the SLO monitor and the
fleet metrics without any shard ever seeing them.

After the shards run (each over its own sub-workload, on the global
clock), the fleet merges the per-shard span streams into one
fleet-wide stream: local query ids are mapped back to global ids,
worker ids are offset per shard, every span gains a ``shard``
attribute, and the whole merged stream is replayed through the fleet's
tracer — so ``profile``/``slo``/``diff`` work on the fleet exactly as
on a single server, and per shard via the untouched shard results.

Determinism: the routers are seeded, the fluid model is pure
arithmetic, and each shard is the deterministic single-server
simulator — a fixed (seed, trace) replays to byte-identical
assignments and records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.control.controller import Controller, ControlLog
from repro.fleet.config import FleetConfig
from repro.fleet.routers import make_router
from repro.obs import spans as sp
from repro.obs.live import (
    LiveTelemetry,
    TelemetrySnapshot,
    rollup_snapshots,
)
from repro.obs.slo import SLOMonitor
from repro.obs.spans import Span
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.serving.policies import ServingPolicy
from repro.serving.records import QueryRecord, ServingResult
from repro.serving.server import EnsembleServer, WorkerSpec
from repro.serving.workload import ServingWorkload


@dataclass
class FleetResult:
    """Outcome of one fleet run: per-shard results plus the merged view.

    Attributes:
        merged: Fleet-wide :class:`ServingResult` — records in global
            query order (shed queries appear as rejected records),
            scheduler stats summed over shards, metrics from the
            fleet's merged span stream.
        shard_results: The untouched per-shard results (local query
            ids; index with ``shard_query_ids`` to go global).
        shard_query_ids: Global query ids served by each shard, in
            local order.
        shard_spans: Per-shard span lists remapped to global query and
            worker ids (with a ``shard`` attribute); ``None`` when the
            fleet ran untraced.
        assignments: Global-order shard index per query, ``-1`` = shed.
        router: Routing policy name the run used.
        n_shed: Queries refused by admission control.
        control_log: The controller's ordered action record (controlled
            mode only; ``None`` for static runs). Its ``dumps()`` is
            the byte-identical determinism contract.
        monitor: The live :class:`~repro.obs.slo.SLOMonitor` the
            control loop ran against (controlled mode only).
        shard_snapshots: Per-shard live telemetry snapshot streams
            (``None`` unless the fleet tracer carried a
            :class:`~repro.obs.live.LiveTelemetry`).
        fleet_snapshots: The shard streams rolled up per boundary via
            digest merge (same gating).
    """

    merged: ServingResult
    shard_results: List[ServingResult]
    shard_query_ids: List[np.ndarray]
    shard_spans: Optional[List[List[Span]]]
    assignments: np.ndarray
    router: str
    n_shed: int
    control_log: Optional[ControlLog] = None
    monitor: Optional[SLOMonitor] = None
    shard_snapshots: Optional[List[List[TelemetrySnapshot]]] = None
    fleet_snapshots: Optional[List[TelemetrySnapshot]] = None

    @property
    def n_shards(self) -> int:
        """Fleet size."""
        return len(self.shard_results)

    def shed_rate(self) -> float:
        """Fraction of the workload refused at admission."""
        if self.assignments.size == 0:
            return 0.0
        return self.n_shed / self.assignments.size


class FleetServer:
    """N-shard front end over unmodified :class:`EnsembleServer` loops.

    Args:
        latencies: Per-base-model inference time (shared by all shards
            — the fleet replicates one deployment).
        policy: Serving policy every shard runs (see ``policies`` for
            per-shard overrides).
        config: Frozen :class:`FleetConfig`: one
            :class:`~repro.serving.config.ServerConfig` per shard plus
            the router/admission knobs.
        workers: Optional explicit per-shard deployment (the same
            worker list is applied to every shard); defaults to one
            worker per base model per shard.
        tracer: Fleet-level observability hook; when enabled, each
            shard runs under its own :class:`RecordingTracer` and the
            merged, remapped stream is replayed through this tracer.
        policies: Optional per-shard policy overrides (length must
            equal ``config.n_shards``); each shard may then schedule
            differently while the front end stays shared.
    """

    def __init__(
        self,
        latencies: Sequence[float],
        policy: ServingPolicy,
        config: Optional[FleetConfig] = None,
        *,
        workers: Optional[Sequence[WorkerSpec]] = None,
        tracer: Optional[Tracer] = None,
        policies: Optional[Sequence[ServingPolicy]] = None,
    ):
        self.config = config if config is not None else FleetConfig()
        if not isinstance(self.config, FleetConfig):
            raise TypeError(
                f"config must be a FleetConfig, got "
                f"{type(self.config).__name__}"
            )
        self.latencies = np.asarray(latencies, dtype=float)
        if self.latencies.ndim != 1 or np.any(self.latencies <= 0):
            raise ValueError("latencies must be a 1-d array of positives")
        self.policy = policy
        if policies is not None:
            if len(policies) != self.config.n_shards:
                raise ValueError(
                    f"policies must name one policy per shard "
                    f"({self.config.n_shards}), got {len(policies)}"
                )
            self.policies = list(policies)
        else:
            self.policies = [policy] * self.config.n_shards
        self.workers = list(workers) if workers is not None else None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        cfg = self.config
        self.router = make_router(
            cfg.router,
            cfg.n_shards,
            seed=cfg.seed,
            hash_replicas=cfg.hash_replicas,
            hard_quantile=cfg.hard_quantile,
        )
        # Rotating tie-break pointer for the admission fallback
        # redirect; re-seeded at the start of every run.
        self._redirect_rr = cfg.seed % cfg.n_shards
        # Per-shard live telemetry planes of the current run (only
        # populated when the fleet tracer carries one); the `top`
        # console polls these mid-run.
        self.shard_lives: List[LiveTelemetry] = []

    @classmethod
    def from_config(
        cls,
        latencies: Sequence[float],
        policy: ServingPolicy,
        config: FleetConfig,
        *,
        workers: Optional[Sequence[WorkerSpec]] = None,
        tracer: Optional[Tracer] = None,
        policies: Optional[Sequence[ServingPolicy]] = None,
    ) -> "FleetServer":
        """Build a fleet from a validated :class:`FleetConfig`
        (mirrors :meth:`EnsembleServer.from_config`)."""
        return cls(
            latencies, policy, config,
            workers=workers, tracer=tracer, policies=policies,
        )

    @property
    def n_shards(self) -> int:
        """Fleet size."""
        return self.config.n_shards

    def _workers_per_shard(self) -> int:
        return (
            len(self.workers)
            if self.workers is not None
            else self.latencies.shape[0]
        )

    def _score_ranks(self, workload: ServingWorkload) -> np.ndarray:
        """Per-query difficulty percentile rank in ``[0, 1]``.

        Derived from the policy's pool-wide difficulty scores (the
        same signal the in-shard scheduler uses); constant or missing
        scores rank every query 0.5 so score-aware routing degrades
        to pure hash affinity instead of stampeding one shard.
        """
        scores = getattr(self.policy, "scores", None)
        n = workload.n_queries
        if scores is None:
            return np.full(n, 0.5)
        scores = np.asarray(scores, dtype=float)
        if scores.size == 0 or float(scores.min()) == float(scores.max()):
            return np.full(n, 0.5)
        pool_sorted = np.sort(scores)
        per_query = scores[workload.sample_indices]
        left = np.searchsorted(pool_sorted, per_query, side="left")
        right = np.searchsorted(pool_sorted, per_query, side="right")
        return (left + right) / (2.0 * scores.size)

    def _redirect_target(self, backlogs: List[int]) -> int:
        """Least-loaded shard for the admission fallback redirect.

        Ties are broken by a seeded rotating pointer instead of
        ``argmin``'s fixed lowest-index preference: under a symmetric
        backlog (every shard equally loaded — exactly the overload
        regime where redirects matter) argmin funnelled *every*
        redirect onto shard 0, defeating the load balancing the
        redirect exists for. The pointer is reset from the fleet seed
        at the start of each run, so redirect targets stay
        byte-identical for a fixed (trace, seed).
        """
        n = len(backlogs)
        least = min(backlogs)
        for step in range(n):
            shard = (self._redirect_rr + step) % n
            if backlogs[shard] == least:
                self._redirect_rr = (shard + 1) % n
                return shard
        return self._redirect_rr  # unreachable: some shard holds the min

    def _query_costs(self, ranks: np.ndarray) -> np.ndarray:
        """Fluid-model service estimate per query (seconds of work).

        Interpolates between the fastest model (rank 0: the scheduler
        will give an easy query a small subset) and the summed
        ensemble latency (rank 1: a hard query expands into the full
        pool, and summed work is what a shard's queue absorbs). The
        estimate is deliberately conservative — it prices the work the
        scheduler would spend at full quality, not the degraded subsets
        it falls back to under pressure — so admission throttles a
        shard to the rate it can serve *well*, instead of the much
        higher rate it could absorb by shredding quality. Queries the
        estimate refuses would have been served late or degraded; the
        queue_limit knob tunes how much burst the fleet rides out
        before it starts refusing.
        """
        fastest = float(self.latencies.min())
        total = float(self.latencies.sum())
        return fastest + ranks * (total - fastest)

    def run(self, workload: ServingWorkload) -> FleetResult:
        """Route, admit, run every shard, and merge the results.

        With ``config.control`` set the run goes through the
        epoch-interleaved controlled path instead (same contract, plus
        ``control_log``/``monitor`` on the result).
        """
        if workload.n_models != self.latencies.shape[0]:
            raise ValueError(
                f"workload encodes {workload.n_models} models, fleet has "
                f"{self.latencies.shape[0]}"
            )
        if self.config.control is not None:
            return self._run_controlled(workload)
        cfg = self.config
        n_shards = cfg.n_shards
        n = workload.n_queries
        tracer = self.tracer
        traced = tracer.enabled

        self.router.reset()
        self._redirect_rr = cfg.seed % n_shards
        ranks = self._score_ranks(workload)
        costs = self._query_costs(ranks)

        # --- front-end pass: route + admission over the fluid model ---
        assignments = np.full(n, -1, dtype=int)
        shard_ids: List[List[int]] = [[] for _ in range(n_shards)]
        # Virtual single-queue shard state: next-free time plus the
        # (monotone) finish times of jobs still in the system.
        free = [0.0] * n_shards
        finishes: List[List[float]] = [[] for _ in range(n_shards)]
        heads = [0] * n_shards  # drained prefix of each finish list
        backlogs = [0] * n_shards
        front_spans: List[Span] = []
        n_shed = 0

        for qid in range(n):
            now = float(workload.arrivals[qid])
            for shard in range(n_shards):
                done = finishes[shard]
                head = heads[shard]
                while head < len(done) and done[head] <= now:
                    head += 1
                heads[shard] = head
                backlogs[shard] = len(done) - head
            chosen = self.router.choose(
                qid,
                int(workload.sample_indices[qid]),
                float(ranks[qid]),
                backlogs,
            )
            redirected = False
            if backlogs[chosen] >= cfg.queue_limit:
                # Admission control: one redirect to the least-loaded
                # shard, then shed. Never admit onto a full shard.
                fallback = self._redirect_target(backlogs)
                if backlogs[fallback] < cfg.queue_limit:
                    chosen = fallback
                    redirected = True
                else:
                    n_shed += 1
                    if traced:
                        front_spans.append(Span(sp.SHED, now, qid, {
                            "policy": self.router.name,
                            "backlog": backlogs[chosen],
                        }))
                        front_spans.append(Span(sp.REJECT, now, qid, {
                            "reason": "shed",
                        }))
                    continue
            assignments[qid] = chosen
            if traced:
                front_spans.append(Span(sp.ROUTE, now, qid, {
                    "shard": chosen,
                    "backlog": backlogs[chosen],
                    "policy": self.router.name,
                    "redirected": redirected,
                }))
            shard_ids[chosen].append(qid)
            start = max(free[chosen], now)
            finish = start + float(costs[qid])
            free[chosen] = finish
            finishes[chosen].append(finish)

        # --- run every shard on its sub-workload (global clock) ---
        shard_query_ids = [np.asarray(ids, dtype=int) for ids in shard_ids]
        shard_results: List[ServingResult] = []
        shard_tracers: List[Optional[RecordingTracer]] = []
        fleet_live = tracer.live if traced else None
        self.shard_lives = []
        for shard in range(n_shards):
            ids = shard_query_ids[shard]
            sub = ServingWorkload(
                arrivals=workload.arrivals[ids],
                deadlines=workload.deadlines[ids],
                sample_indices=workload.sample_indices[ids],
                quality=workload.quality,
                utilities=workload.utilities,
            )
            shard_tracer = None
            if traced:
                shard_live = None
                if fleet_live is not None:
                    # One live plane per shard (same knobs as the
                    # fleet's); the rollup below merges their snapshot
                    # streams boundary-by-boundary.
                    shard_live = LiveTelemetry(
                        fleet_live.config, source=f"shard{shard}"
                    )
                    self.shard_lives.append(shard_live)
                shard_tracer = RecordingTracer(live=shard_live)
            server = EnsembleServer.from_config(
                self.latencies,
                self.policies[shard],
                cfg.shards[shard],
                workers=self.workers,
                tracer=shard_tracer,
            )
            shard_results.append(server.run(sub))
            shard_tracers.append(shard_tracer)

        # --- merge: remap ids, tag shards, replay through the tracer ---
        shard_spans: Optional[List[List[Span]]] = None
        if traced:
            per_shard_workers = self._workers_per_shard()
            shard_spans = []
            streams = [[(span.time, -1, i, span)
                        for i, span in enumerate(front_spans)]]
            for shard, shard_tracer in enumerate(shard_tracers):
                ids = shard_query_ids[shard]
                offset = shard * per_shard_workers
                remapped = []
                for span in shard_tracer.spans:
                    attrs = dict(span.attrs)
                    attrs["shard"] = shard
                    if "worker" in attrs:
                        attrs["worker"] = int(attrs["worker"]) + offset
                    gid = (
                        int(ids[span.query_id])
                        if span.query_id >= 0 else -1
                    )
                    remapped.append(Span(span.kind, span.time, gid, attrs))
                shard_spans.append(remapped)
                streams.append([
                    (span.time, shard, i, span)
                    for i, span in enumerate(remapped)
                ])
            merged_stream = sorted(
                (entry for stream in streams for entry in stream),
                key=lambda entry: entry[:3],
            )
            for _, _, _, span in merged_stream:
                tracer.emit(span.kind, span.time, span.query_id, **span.attrs)
            end = max(
                [t.end_time for t in shard_tracers if t is not None],
                default=0.0,
            )
            if front_spans:
                end = max(end, front_spans[-1].time)
            tracer.finalize(end)

        shard_snapshots: Optional[List[List[TelemetrySnapshot]]] = None
        fleet_snapshots: Optional[List[TelemetrySnapshot]] = None
        if self.shard_lives:
            shard_snapshots = [
                list(live.snapshots) for live in self.shard_lives
            ]
            fleet_snapshots = rollup_snapshots(shard_snapshots)

        merged = self._merge_results(
            workload, assignments, shard_results, shard_query_ids
        )
        return FleetResult(
            merged=merged,
            shard_results=shard_results,
            shard_query_ids=shard_query_ids,
            shard_spans=shard_spans,
            assignments=assignments,
            router=self.router.name,
            n_shed=n_shed,
            shard_snapshots=shard_snapshots,
            fleet_snapshots=fleet_snapshots,
        )

    def _run_controlled(self, workload: ServingWorkload) -> FleetResult:
        """Epoch-interleaved run with the SLO control loop closed.

        The static path runs front end and shards as two sequential
        passes, so nothing can react mid-run. Here the fleet advances
        in epochs of ``control.interval`` simulated seconds:

        1. **admit** the epoch's arrivals through router + admission
           (under the *current* queue limit) and offer them to the
           shards' streaming :class:`~repro.serving.server.ServingSession`s;
        2. **advance** every session to the epoch boundary;
        3. **harvest** the outcomes the shards resolved this epoch
           (completions, rejections, plus the front end's sheds) into
           the live :class:`~repro.obs.slo.SLOMonitor`, in global
           ``(time, shard, seq)`` order;
        4. **tick** the :class:`~repro.control.controller.Controller`
           and apply its actions: replica sets added with ``warmup``
           provisioning latency / retired LIFO, admission tightened or
           relaxed, plans clamped to the cheap subset or restored.

        After the last arrival the loop keeps epoch-stepping until the
        shards are drained *and* the controller has unwound every
        actuation (bounded by the alert window plus a full cooldown
        unwind, as a safety net). Everything is deterministic — seeded
        router and rotation, fluid arithmetic, event-ordered monitor —
        so a fixed (trace, seed) replays to a byte-identical
        ``control_log``.
        """
        cfg = self.config
        control = cfg.control
        n_shards = cfg.n_shards
        n = workload.n_queries
        tracer = self.tracer
        traced = tracer.enabled

        self.router.reset()
        self._redirect_rr = cfg.seed % n_shards
        ranks = self._score_ranks(workload)
        costs = self._query_costs(ranks)

        monitor = SLOMonitor(control.slo)
        controller = Controller(control, monitor, n_shards)
        # Monitor breach/recovery spans and controller decision spans
        # share one side stream, in emission order.
        ctrl_tracer = RecordingTracer()
        monitor.bind(ctrl_tracer)

        # Shards always record internally: the harvest step reads their
        # COMPLETE/REJECT spans to feed the monitor mid-run. When the
        # fleet tracer carries a live plane, each shard gets its own
        # (ticked per epoch by session.advance, so `top` sees genuine
        # mid-run state) and the controller's action log is attached to
        # the fleet plane for incident bundles.
        fleet_live = tracer.live if traced else None
        self.shard_lives = []
        shard_tracers = []
        for shard in range(n_shards):
            shard_live = None
            if fleet_live is not None:
                shard_live = LiveTelemetry(
                    fleet_live.config, source=f"shard{shard}"
                )
                self.shard_lives.append(shard_live)
            shard_tracers.append(RecordingTracer(live=shard_live))
        if fleet_live is not None:
            fleet_live.attach_control_log(controller.log)
        servers = [
            EnsembleServer.from_config(
                self.latencies,
                self.policies[shard],
                cfg.shards[shard],
                workers=self.workers,
                tracer=shard_tracers[shard],
            )
            for shard in range(n_shards)
        ]
        if any(server._faulty for server in servers):
            raise ValueError(
                "controlled mode requires fault-free shard configs "
                "(replica scaling drives the reliable worker pool)"
            )
        sessions = [server.session() for server in servers]

        # Fluid front-end state, capacity-aware: an admitted query's
        # virtual service time shrinks with the shard's active replica
        # sets, so the backlog estimate tracks scaled capacity. Sets
        # the controller adds only count once their warmup elapses.
        free = [0.0] * n_shards
        finishes: List[List[float]] = [[] for _ in range(n_shards)]
        heads = [0] * n_shards
        backlogs = [0] * n_shards
        capacity = [1] * n_shards
        pending_cap: List[Tuple[float, int]] = []  # (activate_time, shard)

        def activate(until: float) -> None:
            while pending_cap and pending_cap[0][0] <= until:
                capacity[pending_cap.pop(0)[1]] += 1

        assignments = np.full(n, -1, dtype=int)
        shard_ids: List[List[int]] = [[] for _ in range(n_shards)]
        front_spans: List[Span] = []
        consumed = [0] * n_shards
        n_shed = 0
        eff_limit = cfg.queue_limit
        cheap_mask = (
            control.cheap_mask
            if control.cheap_mask is not None
            else 1 << int(np.argmin(self.latencies))
        )
        # In degraded mode every dispatch is clamped to the cheap
        # subset, whose members run in parallel on distinct workers —
        # the fluid service estimate drops to the subset's bottleneck
        # latency so admission tracks what the shards actually execute
        # (pricing full-quality work would keep shedding queries the
        # degraded fleet can absorb).
        cheap_cost = float(max(
            self.latencies[k]
            for k in range(self.latencies.shape[0])
            if (cheap_mask >> k) & 1
        ))
        degraded = False
        interval = control.interval

        def harvest(into: List[Tuple]) -> None:
            """Collect outcomes the shards resolved since last call."""
            for shard in range(n_shards):
                spans = shard_tracers[shard].spans
                for i in range(consumed[shard], len(spans)):
                    span = spans[i]
                    if span.kind == sp.COMPLETE:
                        into.append((
                            span.time, shard, i,
                            float(span.attrs.get("slack", 0.0)) < 0.0,
                            bool(span.attrs.get("degraded", False)),
                        ))
                    elif span.kind == sp.REJECT:
                        into.append((span.time, shard, i, True, False))
                consumed[shard] = len(spans)

        qi = 0
        epoch = 0
        idle_since = None
        while True:
            t_end = epoch * interval + interval
            activate(epoch * interval)
            outcomes: List[Tuple] = []

            # -- 1. admit this epoch's arrivals through the front end --
            while qi < n and float(workload.arrivals[qi]) < t_end:
                qid = qi
                qi += 1
                now = float(workload.arrivals[qid])
                activate(now)
                for shard in range(n_shards):
                    done = finishes[shard]
                    head = heads[shard]
                    while head < len(done) and done[head] <= now:
                        head += 1
                    heads[shard] = head
                    backlogs[shard] = len(done) - head
                chosen = self.router.choose(
                    qid,
                    int(workload.sample_indices[qid]),
                    float(ranks[qid]),
                    backlogs,
                )
                redirected = False
                if backlogs[chosen] >= eff_limit:
                    fallback = self._redirect_target(backlogs)
                    if backlogs[fallback] < eff_limit:
                        chosen = fallback
                        redirected = True
                    else:
                        n_shed += 1
                        front_spans.append(Span(sp.SHED, now, qid, {
                            "policy": self.router.name,
                            "backlog": backlogs[chosen],
                        }))
                        front_spans.append(Span(sp.REJECT, now, qid, {
                            "reason": "shed",
                        }))
                        outcomes.append(
                            (now, -1, len(front_spans), True, False)
                        )
                        continue
                assignments[qid] = chosen
                front_spans.append(Span(sp.ROUTE, now, qid, {
                    "shard": chosen,
                    "backlog": backlogs[chosen],
                    "policy": self.router.name,
                    "redirected": redirected,
                }))
                shard_ids[chosen].append(qid)
                start = max(free[chosen], now)
                cost = (
                    min(float(costs[qid]), cheap_cost)
                    if degraded else float(costs[qid])
                )
                finish = start + cost / capacity[chosen]
                free[chosen] = finish
                finishes[chosen].append(finish)
                sessions[chosen].offer(
                    now,
                    float(workload.deadlines[qid]),
                    int(workload.sample_indices[qid]),
                )

            # -- 2. advance every shard to the epoch boundary --
            for session in sessions:
                session.advance(t_end)

            # -- 3. harvest resolved outcomes into the monitor --
            harvest(outcomes)
            outcomes.sort(key=lambda o: o[:3])
            for t_o, _, _, missed, was_degraded in outcomes:
                monitor.observe(t_o, missed=missed, degraded=was_degraded)

            # -- 4. decide and actuate --
            for action in controller.tick(t_end):
                kind = action.kind
                if kind == sp.SCALE_UP:
                    servers[action.shard].add_replica_set(
                        t_end, warmup=control.warmup
                    )
                    pending_cap.append(
                        (t_end + control.warmup, action.shard)
                    )
                    ctrl_tracer.emit(
                        sp.SCALE_UP, t_end, shard=action.shard,
                        level=action.level, burn=action.burn,
                    )
                elif kind == sp.SCALE_DOWN:
                    servers[action.shard].retire_replica_set()
                    # Retirement is LIFO and activations are
                    # time-ordered, so the retired set is pending iff
                    # it is the newest pending entry.
                    if pending_cap and pending_cap[-1][1] == action.shard:
                        pending_cap.pop()
                    else:
                        capacity[action.shard] = max(
                            1, capacity[action.shard] - 1
                        )
                    ctrl_tracer.emit(
                        sp.SCALE_DOWN, t_end, shard=action.shard,
                        level=action.level, burn=action.burn,
                    )
                elif kind == sp.DEGRADE_MODE:
                    degraded = True
                    for server in servers:
                        server.set_cheap_mask(cheap_mask)
                    ctrl_tracer.emit(
                        sp.DEGRADE_MODE, t_end,
                        cheap_mask=cheap_mask, burn=action.burn,
                    )
                elif kind == sp.RESTORE:
                    degraded = False
                    for server in servers:
                        server.set_cheap_mask(None)
                    ctrl_tracer.emit(sp.RESTORE, t_end, burn=action.burn)
                elif kind == sp.ADMISSION_CHANGE:
                    tightened = action.queue_limit == -1
                    eff_limit = (
                        control.tightened_limit(cfg.queue_limit)
                        if tightened else cfg.queue_limit
                    )
                    ctrl_tracer.emit(
                        sp.ADMISSION_CHANGE, t_end,
                        queue_limit=eff_limit, tightened=tightened,
                    )

            epoch += 1
            if qi >= n and not any(s.pending for s in sessions):
                if idle_since is None:
                    idle_since = t_end
                if controller.settled:
                    break
                # Safety bound: alert window drains, then a full
                # cooldown-paced capacity unwind — the controller is
                # guaranteed to settle well within this.
                if t_end - idle_since > (
                    control.slo.alert_window
                    + control.cooldown * (control.max_extra_replicas + 2)
                    + interval
                ):
                    break

        shard_results = [session.finish() for session in sessions]
        # Fold outcomes resolved during finish (unserved rejects).
        tail: List[Tuple] = []
        harvest(tail)
        tail.sort(key=lambda o: o[:3])
        for t_o, _, _, missed, was_degraded in tail:
            monitor.observe(t_o, missed=missed, degraded=was_degraded)

        end = max(
            [t.end_time for t in shard_tracers]
            + [span.time for span in ctrl_tracer.spans[-1:]]
            + [span.time for span in front_spans[-1:]],
            default=0.0,
        )
        monitor.finalize(end)
        ctrl_tracer.finalize(end)

        # -- merge: remap ids, tag shards, replay through the tracer --
        shard_query_ids = [np.asarray(ids, dtype=int) for ids in shard_ids]
        shard_spans: Optional[List[List[Span]]] = None
        if traced:
            # Scaled shards have different worker counts, so worker-id
            # offsets are cumulative over the final deployments.
            offsets = []
            total = 0
            for server in servers:
                offsets.append(total)
                total += server.n_workers
            shard_spans = []
            streams = [[(span.time, -1, i, span)
                        for i, span in enumerate(front_spans)]]
            for shard, shard_tracer in enumerate(shard_tracers):
                ids = shard_query_ids[shard]
                offset = offsets[shard]
                remapped = []
                for span in shard_tracer.spans:
                    attrs = dict(span.attrs)
                    attrs["shard"] = shard
                    if "worker" in attrs:
                        attrs["worker"] = int(attrs["worker"]) + offset
                    gid = (
                        int(ids[span.query_id])
                        if span.query_id >= 0 else -1
                    )
                    remapped.append(Span(span.kind, span.time, gid, attrs))
                shard_spans.append(remapped)
                streams.append([
                    (span.time, shard, i, span)
                    for i, span in enumerate(remapped)
                ])
            # The control-plane stream (breach/recovery + decisions)
            # sorts after every shard at the same instant.
            streams.append([
                (span.time, n_shards, i, span)
                for i, span in enumerate(ctrl_tracer.spans)
            ])
            merged_stream = sorted(
                (entry for stream in streams for entry in stream),
                key=lambda entry: entry[:3],
            )
            for _, _, _, span in merged_stream:
                tracer.emit(span.kind, span.time, span.query_id, **span.attrs)
            tracer.finalize(end)

        shard_snapshots: Optional[List[List[TelemetrySnapshot]]] = None
        fleet_snapshots: Optional[List[TelemetrySnapshot]] = None
        if self.shard_lives:
            shard_snapshots = [
                list(live.snapshots) for live in self.shard_lives
            ]
            fleet_snapshots = rollup_snapshots(shard_snapshots)

        merged = self._merge_results(
            workload, assignments, shard_results, shard_query_ids
        )
        return FleetResult(
            merged=merged,
            shard_results=shard_results,
            shard_query_ids=shard_query_ids,
            shard_spans=shard_spans,
            assignments=assignments,
            router=self.router.name,
            n_shed=n_shed,
            control_log=controller.log,
            monitor=monitor,
            shard_snapshots=shard_snapshots,
            fleet_snapshots=fleet_snapshots,
        )

    def _merge_results(
        self, workload, assignments, shard_results, shard_query_ids
    ) -> ServingResult:
        """Fleet-wide :class:`ServingResult` in global query order."""
        records: List[Optional[QueryRecord]] = [None] * workload.n_queries
        for shard, result in enumerate(shard_results):
            ids = shard_query_ids[shard]
            for local, record in enumerate(result.records):
                records[int(ids[local])] = dc_replace(
                    record, query_id=int(ids[local])
                )
        for qid in range(workload.n_queries):
            if records[qid] is None:  # shed at admission
                records[qid] = QueryRecord(
                    query_id=qid,
                    sample_index=int(workload.sample_indices[qid]),
                    arrival=float(workload.arrivals[qid]),
                    deadline=float(
                        workload.arrivals[qid] + workload.deadlines[qid]
                    ),
                    rejected=True,
                )
        return ServingResult(
            records=records,
            policy_name=(
                f"{self.policy.name}@fleet"
                f"[{self.router.name}x{self.n_shards}]"
            ),
            scheduler_invocations=sum(
                r.scheduler_invocations for r in shard_results
            ),
            scheduler_work_units=sum(
                r.scheduler_work_units for r in shard_results
            ),
            scheduler_wall_time=sum(
                r.scheduler_wall_time for r in shard_results
            ),
            metrics=self.tracer.metrics,
        )
