"""Multi-replica fleet serving: route, admit, shard, merge.

:class:`FleetServer` scales the single-server simulator horizontally
without touching its event loop: N shards each run the existing
:class:`~repro.serving.server.EnsembleServer` *unmodified*, fed by a
front-end pass that replays the workload's arrival sequence through a
pluggable router (:mod:`repro.fleet.routers`) and fleet-wide admission
control.

The front end never simulates the shards — that would couple it to the
event loop it is supposed to stay out of. Instead it tracks a *fluid*
per-shard backlog: each admitted query is modelled as one job on a
virtual single-queue shard whose service time interpolates between the
fastest model (an easy query the scheduler will give a small subset)
and the whole ensemble's summed latency (a hard query), weighted by
the query's difficulty rank. Backlog(t) = jobs whose estimated finish
is still in the future. Admission control reads that backlog: a query
routed to a full shard (backlog >= ``queue_limit``) is redirected once
to the least-loaded shard, and shed outright if that shard is full too
— so overload is refused at the door, before any per-shard buffer
blows up. Shed queries emit a ``shed`` span plus a ``reject`` span
(``reason="shed"``), making them visible to the SLO monitor and the
fleet metrics without any shard ever seeing them.

After the shards run (each over its own sub-workload, on the global
clock), the fleet merges the per-shard span streams into one
fleet-wide stream: local query ids are mapped back to global ids,
worker ids are offset per shard, every span gains a ``shard``
attribute, and the whole merged stream is replayed through the fleet's
tracer — so ``profile``/``slo``/``diff`` work on the fleet exactly as
on a single server, and per shard via the untouched shard results.

Determinism: the routers are seeded, the fluid model is pure
arithmetic, and each shard is the deterministic single-server
simulator — a fixed (seed, trace) replays to byte-identical
assignments and records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import List, Optional, Sequence

import numpy as np

from repro.fleet.config import FleetConfig
from repro.fleet.routers import make_router
from repro.obs import spans as sp
from repro.obs.spans import Span
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.serving.policies import ServingPolicy
from repro.serving.records import QueryRecord, ServingResult
from repro.serving.server import EnsembleServer, WorkerSpec
from repro.serving.workload import ServingWorkload


@dataclass
class FleetResult:
    """Outcome of one fleet run: per-shard results plus the merged view.

    Attributes:
        merged: Fleet-wide :class:`ServingResult` — records in global
            query order (shed queries appear as rejected records),
            scheduler stats summed over shards, metrics from the
            fleet's merged span stream.
        shard_results: The untouched per-shard results (local query
            ids; index with ``shard_query_ids`` to go global).
        shard_query_ids: Global query ids served by each shard, in
            local order.
        shard_spans: Per-shard span lists remapped to global query and
            worker ids (with a ``shard`` attribute); ``None`` when the
            fleet ran untraced.
        assignments: Global-order shard index per query, ``-1`` = shed.
        router: Routing policy name the run used.
        n_shed: Queries refused by admission control.
    """

    merged: ServingResult
    shard_results: List[ServingResult]
    shard_query_ids: List[np.ndarray]
    shard_spans: Optional[List[List[Span]]]
    assignments: np.ndarray
    router: str
    n_shed: int

    @property
    def n_shards(self) -> int:
        """Fleet size."""
        return len(self.shard_results)

    def shed_rate(self) -> float:
        """Fraction of the workload refused at admission."""
        if self.assignments.size == 0:
            return 0.0
        return self.n_shed / self.assignments.size


class FleetServer:
    """N-shard front end over unmodified :class:`EnsembleServer` loops.

    Args:
        latencies: Per-base-model inference time (shared by all shards
            — the fleet replicates one deployment).
        policy: Serving policy every shard runs (see ``policies`` for
            per-shard overrides).
        config: Frozen :class:`FleetConfig`: one
            :class:`~repro.serving.config.ServerConfig` per shard plus
            the router/admission knobs.
        workers: Optional explicit per-shard deployment (the same
            worker list is applied to every shard); defaults to one
            worker per base model per shard.
        tracer: Fleet-level observability hook; when enabled, each
            shard runs under its own :class:`RecordingTracer` and the
            merged, remapped stream is replayed through this tracer.
        policies: Optional per-shard policy overrides (length must
            equal ``config.n_shards``); each shard may then schedule
            differently while the front end stays shared.
    """

    def __init__(
        self,
        latencies: Sequence[float],
        policy: ServingPolicy,
        config: Optional[FleetConfig] = None,
        *,
        workers: Optional[Sequence[WorkerSpec]] = None,
        tracer: Optional[Tracer] = None,
        policies: Optional[Sequence[ServingPolicy]] = None,
    ):
        self.config = config if config is not None else FleetConfig()
        if not isinstance(self.config, FleetConfig):
            raise TypeError(
                f"config must be a FleetConfig, got "
                f"{type(self.config).__name__}"
            )
        self.latencies = np.asarray(latencies, dtype=float)
        if self.latencies.ndim != 1 or np.any(self.latencies <= 0):
            raise ValueError("latencies must be a 1-d array of positives")
        self.policy = policy
        if policies is not None:
            if len(policies) != self.config.n_shards:
                raise ValueError(
                    f"policies must name one policy per shard "
                    f"({self.config.n_shards}), got {len(policies)}"
                )
            self.policies = list(policies)
        else:
            self.policies = [policy] * self.config.n_shards
        self.workers = list(workers) if workers is not None else None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        cfg = self.config
        self.router = make_router(
            cfg.router,
            cfg.n_shards,
            seed=cfg.seed,
            hash_replicas=cfg.hash_replicas,
            hard_quantile=cfg.hard_quantile,
        )

    @classmethod
    def from_config(
        cls,
        latencies: Sequence[float],
        policy: ServingPolicy,
        config: FleetConfig,
        *,
        workers: Optional[Sequence[WorkerSpec]] = None,
        tracer: Optional[Tracer] = None,
        policies: Optional[Sequence[ServingPolicy]] = None,
    ) -> "FleetServer":
        """Build a fleet from a validated :class:`FleetConfig`
        (mirrors :meth:`EnsembleServer.from_config`)."""
        return cls(
            latencies, policy, config,
            workers=workers, tracer=tracer, policies=policies,
        )

    @property
    def n_shards(self) -> int:
        """Fleet size."""
        return self.config.n_shards

    def _workers_per_shard(self) -> int:
        return (
            len(self.workers)
            if self.workers is not None
            else self.latencies.shape[0]
        )

    def _score_ranks(self, workload: ServingWorkload) -> np.ndarray:
        """Per-query difficulty percentile rank in ``[0, 1]``.

        Derived from the policy's pool-wide difficulty scores (the
        same signal the in-shard scheduler uses); constant or missing
        scores rank every query 0.5 so score-aware routing degrades
        to pure hash affinity instead of stampeding one shard.
        """
        scores = getattr(self.policy, "scores", None)
        n = workload.n_queries
        if scores is None:
            return np.full(n, 0.5)
        scores = np.asarray(scores, dtype=float)
        if scores.size == 0 or float(scores.min()) == float(scores.max()):
            return np.full(n, 0.5)
        pool_sorted = np.sort(scores)
        per_query = scores[workload.sample_indices]
        left = np.searchsorted(pool_sorted, per_query, side="left")
        right = np.searchsorted(pool_sorted, per_query, side="right")
        return (left + right) / (2.0 * scores.size)

    def _query_costs(self, ranks: np.ndarray) -> np.ndarray:
        """Fluid-model service estimate per query (seconds of work).

        Interpolates between the fastest model (rank 0: the scheduler
        will give an easy query a small subset) and the summed
        ensemble latency (rank 1: a hard query expands into the full
        pool, and summed work is what a shard's queue absorbs). The
        estimate is deliberately conservative — it prices the work the
        scheduler would spend at full quality, not the degraded subsets
        it falls back to under pressure — so admission throttles a
        shard to the rate it can serve *well*, instead of the much
        higher rate it could absorb by shredding quality. Queries the
        estimate refuses would have been served late or degraded; the
        queue_limit knob tunes how much burst the fleet rides out
        before it starts refusing.
        """
        fastest = float(self.latencies.min())
        total = float(self.latencies.sum())
        return fastest + ranks * (total - fastest)

    def run(self, workload: ServingWorkload) -> FleetResult:
        """Route, admit, run every shard, and merge the results."""
        if workload.n_models != self.latencies.shape[0]:
            raise ValueError(
                f"workload encodes {workload.n_models} models, fleet has "
                f"{self.latencies.shape[0]}"
            )
        cfg = self.config
        n_shards = cfg.n_shards
        n = workload.n_queries
        tracer = self.tracer
        traced = tracer.enabled

        self.router.reset()
        ranks = self._score_ranks(workload)
        costs = self._query_costs(ranks)

        # --- front-end pass: route + admission over the fluid model ---
        assignments = np.full(n, -1, dtype=int)
        shard_ids: List[List[int]] = [[] for _ in range(n_shards)]
        # Virtual single-queue shard state: next-free time plus the
        # (monotone) finish times of jobs still in the system.
        free = [0.0] * n_shards
        finishes: List[List[float]] = [[] for _ in range(n_shards)]
        heads = [0] * n_shards  # drained prefix of each finish list
        backlogs = [0] * n_shards
        front_spans: List[Span] = []
        n_shed = 0

        for qid in range(n):
            now = float(workload.arrivals[qid])
            for shard in range(n_shards):
                done = finishes[shard]
                head = heads[shard]
                while head < len(done) and done[head] <= now:
                    head += 1
                heads[shard] = head
                backlogs[shard] = len(done) - head
            chosen = self.router.choose(
                qid,
                int(workload.sample_indices[qid]),
                float(ranks[qid]),
                backlogs,
            )
            redirected = False
            if backlogs[chosen] >= cfg.queue_limit:
                # Admission control: one redirect to the least-loaded
                # shard, then shed. Never admit onto a full shard.
                fallback = int(np.argmin(backlogs))
                if backlogs[fallback] < cfg.queue_limit:
                    chosen = fallback
                    redirected = True
                else:
                    n_shed += 1
                    if traced:
                        front_spans.append(Span(sp.SHED, now, qid, {
                            "policy": self.router.name,
                            "backlog": backlogs[chosen],
                        }))
                        front_spans.append(Span(sp.REJECT, now, qid, {
                            "reason": "shed",
                        }))
                    continue
            assignments[qid] = chosen
            if traced:
                front_spans.append(Span(sp.ROUTE, now, qid, {
                    "shard": chosen,
                    "backlog": backlogs[chosen],
                    "policy": self.router.name,
                    "redirected": redirected,
                }))
            shard_ids[chosen].append(qid)
            start = max(free[chosen], now)
            finish = start + float(costs[qid])
            free[chosen] = finish
            finishes[chosen].append(finish)

        # --- run every shard on its sub-workload (global clock) ---
        shard_query_ids = [np.asarray(ids, dtype=int) for ids in shard_ids]
        shard_results: List[ServingResult] = []
        shard_tracers: List[Optional[RecordingTracer]] = []
        for shard in range(n_shards):
            ids = shard_query_ids[shard]
            sub = ServingWorkload(
                arrivals=workload.arrivals[ids],
                deadlines=workload.deadlines[ids],
                sample_indices=workload.sample_indices[ids],
                quality=workload.quality,
                utilities=workload.utilities,
            )
            shard_tracer = RecordingTracer() if traced else None
            server = EnsembleServer.from_config(
                self.latencies,
                self.policies[shard],
                cfg.shards[shard],
                workers=self.workers,
                tracer=shard_tracer,
            )
            shard_results.append(server.run(sub))
            shard_tracers.append(shard_tracer)

        # --- merge: remap ids, tag shards, replay through the tracer ---
        shard_spans: Optional[List[List[Span]]] = None
        if traced:
            per_shard_workers = self._workers_per_shard()
            shard_spans = []
            streams = [[(span.time, -1, i, span)
                        for i, span in enumerate(front_spans)]]
            for shard, shard_tracer in enumerate(shard_tracers):
                ids = shard_query_ids[shard]
                offset = shard * per_shard_workers
                remapped = []
                for span in shard_tracer.spans:
                    attrs = dict(span.attrs)
                    attrs["shard"] = shard
                    if "worker" in attrs:
                        attrs["worker"] = int(attrs["worker"]) + offset
                    gid = (
                        int(ids[span.query_id])
                        if span.query_id >= 0 else -1
                    )
                    remapped.append(Span(span.kind, span.time, gid, attrs))
                shard_spans.append(remapped)
                streams.append([
                    (span.time, shard, i, span)
                    for i, span in enumerate(remapped)
                ])
            merged_stream = sorted(
                (entry for stream in streams for entry in stream),
                key=lambda entry: entry[:3],
            )
            for _, _, _, span in merged_stream:
                tracer.emit(span.kind, span.time, span.query_id, **span.attrs)
            end = max(
                [t.end_time for t in shard_tracers if t is not None],
                default=0.0,
            )
            if front_spans:
                end = max(end, front_spans[-1].time)
            tracer.finalize(end)

        merged = self._merge_results(
            workload, assignments, shard_results, shard_query_ids
        )
        return FleetResult(
            merged=merged,
            shard_results=shard_results,
            shard_query_ids=shard_query_ids,
            shard_spans=shard_spans,
            assignments=assignments,
            router=self.router.name,
            n_shed=n_shed,
        )

    def _merge_results(
        self, workload, assignments, shard_results, shard_query_ids
    ) -> ServingResult:
        """Fleet-wide :class:`ServingResult` in global query order."""
        records: List[Optional[QueryRecord]] = [None] * workload.n_queries
        for shard, result in enumerate(shard_results):
            ids = shard_query_ids[shard]
            for local, record in enumerate(result.records):
                records[int(ids[local])] = dc_replace(
                    record, query_id=int(ids[local])
                )
        for qid in range(workload.n_queries):
            if records[qid] is None:  # shed at admission
                records[qid] = QueryRecord(
                    query_id=qid,
                    sample_index=int(workload.sample_indices[qid]),
                    arrival=float(workload.arrivals[qid]),
                    deadline=float(
                        workload.arrivals[qid] + workload.deadlines[qid]
                    ),
                    rejected=True,
                )
        return ServingResult(
            records=records,
            policy_name=(
                f"{self.policy.name}@fleet"
                f"[{self.router.name}x{self.n_shards}]"
            ),
            scheduler_invocations=sum(
                r.scheduler_invocations for r in shard_results
            ),
            scheduler_work_units=sum(
                r.scheduler_work_units for r in shard_results
            ),
            scheduler_wall_time=sum(
                r.scheduler_wall_time for r in shard_results
            ),
            metrics=self.tracer.metrics,
        )
