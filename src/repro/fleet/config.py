"""Fleet configuration: a frozen composition of :class:`ServerConfig`.

A fleet is N independent shards, each running the existing
:class:`~repro.serving.server.EnsembleServer` event loop unmodified,
behind one front-end router with admission control. This module
extends the PR-2 construction pattern one level up: ``FleetConfig``
composes per-shard ``ServerConfig`` instances exactly the way
``ServerConfig`` composes serving knobs — frozen, validated in
``__post_init__``, copy-on-write via :meth:`FleetConfig.replace`::

    fleet = FleetConfig.uniform(4, ServerConfig(max_buffer=32))
    server = FleetServer.from_config(latencies, policy, fleet)
    bigger = fleet.replace(queue_limit=128, router="score_aware")

All validation lives here; :class:`~repro.fleet.server.FleetServer`
trusts a ``FleetConfig`` completely.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.control.config import ControlConfig
from repro.fleet.routers import ROUTERS
from repro.serving.config import ServerConfig


@dataclass(frozen=True)
class FleetConfig:
    """Every fleet-level knob of :class:`~repro.fleet.server.FleetServer`.

    Attributes:
        shards: One :class:`ServerConfig` per shard (any iterable is
            normalised to a tuple). Each shard runs its own unmodified
            ``EnsembleServer`` with exactly this config.
        router: Placement policy name, one of the
            :data:`~repro.fleet.routers.ROUTERS` registry keys
            (``"hash"``, ``"power_of_two"``, ``"score_aware"``).
        queue_limit: Admission capacity per shard, in queries: the
            front end admits a query onto a shard only while its
            estimated backlog is below this. A full policy-chosen
            shard triggers one redirect to the least-loaded shard;
            if that is full too the query is shed before any shard
            buffers it.
        hash_replicas: Virtual nodes per shard on the consistent-hash
            ring (used by ``"hash"`` and the affinity half of
            ``"score_aware"``).
        hard_quantile: Difficulty-rank threshold for
            ``"score_aware"``: queries at or above it are routed to
            the least-loaded shard.
        seed: Router seed (ring salt and power-of-two RNG); the fleet
            is byte-identical across runs for a fixed seed.
        control: Optional :class:`~repro.control.config.ControlConfig`.
            When set, the fleet runs in *controlled* mode: admission
            and the shard event loops are interleaved in epochs of
            ``control.interval`` seconds and an SLO-driven controller
            scales replica sets, tightens admission, and degrades
            ensemble quality mid-run (see :mod:`repro.control`).
            ``None`` (the default) keeps the original static two-pass
            run, byte-identical to before this knob existed.
    """

    shards: Tuple[ServerConfig, ...] = (ServerConfig(), ServerConfig())
    router: str = "power_of_two"
    queue_limit: int = 64
    hash_replicas: int = 64
    hard_quantile: float = 0.75
    seed: int = 0
    control: Optional[ControlConfig] = None

    def __post_init__(self):
        shards = tuple(self.shards)
        object.__setattr__(self, "shards", shards)
        if not shards:
            raise ValueError("shards must name at least one ServerConfig")
        for index, shard in enumerate(shards):
            if not isinstance(shard, ServerConfig):
                raise TypeError(
                    f"shards[{index}] must be a ServerConfig, got "
                    f"{type(shard).__name__}"
                )
        if self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; choose from "
                f"{sorted(ROUTERS)}"
            )
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.hash_replicas < 1:
            raise ValueError(
                f"hash_replicas must be >= 1, got {self.hash_replicas}"
            )
        if not 0.0 <= self.hard_quantile <= 1.0:
            raise ValueError(
                f"hard_quantile must be in [0, 1], got {self.hard_quantile}"
            )
        if self.control is not None and not isinstance(
            self.control, ControlConfig
        ):
            raise TypeError(
                f"control must be a ControlConfig or None, got "
                f"{type(self.control).__name__}"
            )

    @property
    def n_shards(self) -> int:
        """Fleet size."""
        return len(self.shards)

    @classmethod
    def uniform(
        cls, n_shards: int, server: Optional[ServerConfig] = None, **changes
    ) -> "FleetConfig":
        """A fleet of ``n_shards`` identical shards.

        ``server`` defaults to ``ServerConfig()``; ``changes`` are
        fleet-level knobs (``router=``, ``queue_limit=``, ...).
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        shard = server if server is not None else ServerConfig()
        return cls(shards=(shard,) * n_shards, **changes)

    def replace(self, **changes) -> "FleetConfig":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
