"""Greedy scheduling baselines (Exp-4).

Processes queries in a chosen order (EDF/FIFO/SJF) and, for each query,
picks the feasible subset with the highest reward — ignoring the queries
still behind it, which is exactly the myopia the DP algorithm fixes.
"""

from __future__ import annotations

from repro.scheduling.orders import ORDERS
from repro.scheduling.problem import (
    ScheduleDecision,
    ScheduleResult,
    SchedulingInstance,
)


class GreedyScheduler:
    """Greedy subset choice under a fixed execution order.

    Args:
        order: ``"edf"``, ``"fifo"`` or ``"sjf"``.
    """

    def __init__(self, order: str = "edf"):
        if order not in ORDERS:
            raise ValueError(
                f"unknown order {order!r}; choose from {sorted(ORDERS)}"
            )
        self.order = order
        self.name = f"greedy+{order}"

    def schedule(self, instance: SchedulingInstance) -> ScheduleResult:
        """Pick the highest-reward feasible subset per query in order."""
        if instance.n_queries == 0:
            return ScheduleResult(decisions=[], total_utility=0.0, work_units=0)

        order = ORDERS[self.order](instance.queries)
        queries = [instance.queries[i] for i in order]
        latencies = instance.latencies
        n_models = instance.n_models
        n_masks = 1 << n_models
        times = list(float(t) for t in instance.busy_until)

        decisions = []
        total = 0.0
        work_units = 0
        for query in queries:
            relative_deadline = query.deadline - instance.now
            best_mask = 0
            best_reward = 0.0
            best_span = 0.0
            for mask in range(1, n_masks):
                work_units += 1
                completion = 0.0
                for k in range(n_models):
                    if (mask >> k) & 1:
                        finish = times[k] + latencies[k]
                        if finish > completion:
                            completion = finish
                if completion > relative_deadline + 1e-12:
                    continue
                reward = float(query.utilities[mask])
                # Prefer higher reward; break ties toward faster subsets.
                if reward > best_reward + 1e-12 or (
                    abs(reward - best_reward) <= 1e-12
                    and best_mask
                    and completion < best_span
                ):
                    best_mask = mask
                    best_reward = reward
                    best_span = completion
            if best_mask:
                for k in range(n_models):
                    if (best_mask >> k) & 1:
                        times[k] += latencies[k]
                total += best_reward
            decisions.append(
                ScheduleDecision(query_id=query.query_id, mask=best_mask)
            )
        return ScheduleResult(
            decisions=decisions, total_utility=total, work_units=work_units
        )
