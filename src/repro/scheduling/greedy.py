"""Greedy scheduling baselines (Exp-4).

Processes queries in a chosen order (EDF/FIFO/SJF) and, for each query,
picks the feasible subset with the highest reward — ignoring the queries
still behind it, which is exactly the myopia the DP algorithm fixes.

The per-query subset search is vectorized over the whole mask grid using
the instance's shared membership/increment tables, and the selection is
fully deterministic: highest reward, then earliest completion, then
lowest mask. (The loop form's tie-break depended on mask enumeration
order when an equal-reward, equal-completion subset appeared later —
the plan could differ between otherwise identical runs of the search.)
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.orders import ORDERS
from repro.scheduling.problem import (
    ScheduleDecision,
    ScheduleResult,
    SchedulingInstance,
)

_EPS = 1e-12


class GreedyScheduler:
    """Greedy subset choice under a fixed execution order.

    Args:
        order: ``"edf"``, ``"fifo"`` or ``"sjf"``.
    """

    def __init__(self, order: str = "edf"):
        if order not in ORDERS:
            raise ValueError(
                f"unknown order {order!r}; choose from {sorted(ORDERS)}"
            )
        self.order = order
        self.name = f"greedy+{order}"

    def schedule(self, instance: SchedulingInstance) -> ScheduleResult:
        """Pick the highest-reward feasible subset per query in order."""
        if instance.n_queries == 0:
            return ScheduleResult(decisions=[], total_utility=0.0, work_units=0)

        order = ORDERS[self.order](instance.queries)
        queries = [instance.queries[i] for i in order]
        n_masks = 1 << instance.n_models
        membership = instance.mask_membership  # (n_masks, m) bool
        increments = instance.mask_increments  # (n_masks, m) float
        masks = np.arange(n_masks)
        times = instance.busy_until.astype(float, copy=True)

        decisions = []
        total = 0.0
        # Unified accounting: one unit per non-empty subset evaluated.
        work_units = instance.n_queries * (n_masks - 1)
        for query in queries:
            relative_deadline = query.deadline - instance.now
            completion = np.where(
                membership, times[None, :] + increments, -np.inf
            ).max(axis=1)  # (n_masks,); mask 0 -> -inf
            rewards = query.utilities
            eligible = (
                (masks > 0)
                & (completion <= relative_deadline + _EPS)
                & (rewards > _EPS)
            )
            best_mask = 0
            if np.any(eligible):
                # Deterministic tie-break: reward (within eps), then
                # completion (within eps), then lowest mask.
                contenders = rewards >= rewards[eligible].max() - _EPS
                contenders &= eligible
                fastest = completion[contenders].min()
                contenders &= completion <= fastest + _EPS
                best_mask = int(masks[contenders][0])
            if best_mask:
                times = times + increments[best_mask]
                total += float(rewards[best_mask])
            decisions.append(
                ScheduleDecision(query_id=query.query_id, mask=best_mask)
            )
        return ScheduleResult(
            decisions=decisions, total_utility=total, work_units=work_units
        )
