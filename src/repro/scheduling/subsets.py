"""Model-subset bitmask conventions.

A subset of an ``m``-model ensemble is an ``int`` bitmask in
``[0, 2**m)``; bit ``k`` set means base model ``k`` is executed. Mask 0
(the empty set) means the query is skipped/rejected. Every module that
talks about model combinations — the profiler's utility tables, the DP
table, the serving policies — shares this encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class MaskTables:
    """Precomputed per-mask structure shared by every scheduler.

    The DP, greedy and brute-force schedulers all need "which models does
    mask ``j`` contain" in bulk; deriving it privately per call was both
    a hot-path cost and three chances to diverge. ``membership`` is the
    canonical boolean incidence matrix; ``members`` keeps the classic
    index-list view for code that walks one mask at a time.

    Attributes:
        n_models: Ensemble size ``m``.
        membership: Bool array ``(2**m, n_models)``; ``membership[j, k]``
            iff model ``k`` is in mask ``j``.
        members: Tuple of per-mask model-index tuples (row ``j`` lists
            the set bits of ``j`` in ascending order).
        sizes: Int array ``(2**m,)`` of popcounts.
    """

    n_models: int
    membership: np.ndarray
    members: Tuple[Tuple[int, ...], ...]
    sizes: np.ndarray

    @property
    def n_masks(self) -> int:
        return 1 << self.n_models

    def increments(self, latencies: np.ndarray) -> np.ndarray:
        """Per-mask finish-time increments, shape ``(2**m, n_models)``:
        ``latencies[k]`` where model ``k`` is a member, else exactly 0.0
        (so adding a row to a busy vector leaves non-members bit-identical)."""
        return np.where(self.membership, np.asarray(latencies, dtype=float), 0.0)


#: Distinct ensemble sizes the process-wide table cache keeps. Tables
#: for an ``m``-model ensemble are ``O(m * 2**m)``; a long fleet run
#: that cycles through many deployments must not grow memory without
#: bound, so the cache is LRU-bounded (a 12-model table is ~50 KB and
#: real deployments use a handful of sizes, so 32 never evicts in
#: practice — the bound is a safety rail, not a tuning knob).
MASK_TABLES_CACHE_SIZE = 32


@lru_cache(maxsize=MASK_TABLES_CACHE_SIZE)
def mask_tables(n_models: int) -> MaskTables:
    """The (cached) :class:`MaskTables` for an ``n_models`` ensemble."""
    if n_models < 1:
        raise ValueError(f"n_models must be >= 1, got {n_models}")
    n_masks = 1 << n_models
    masks = np.arange(n_masks, dtype=np.int64)
    membership = ((masks[:, None] >> np.arange(n_models)[None, :]) & 1) == 1
    membership.setflags(write=False)
    members = tuple(
        tuple(int(k) for k in np.nonzero(membership[j])[0])
        for j in range(n_masks)
    )
    sizes = membership.sum(axis=1)
    sizes.setflags(write=False)
    return MaskTables(
        n_models=n_models, membership=membership, members=members, sizes=sizes
    )


def mask_tables_cache_info():
    """``functools.lru_cache`` statistics of the shared table cache —
    hits/misses/currsize/maxsize, for memory tracing on long
    multi-ensemble runs."""
    return mask_tables.cache_info()


def iter_masks(n_models: int, include_empty: bool = False) -> Iterator[int]:
    """Yield every subset mask for ``n_models`` base models."""
    if n_models < 1:
        raise ValueError(f"n_models must be >= 1, got {n_models}")
    start = 0 if include_empty else 1
    yield from range(start, 1 << n_models)


def mask_members(mask: int) -> List[int]:
    """Model indices contained in ``mask``."""
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    members = []
    index = 0
    while mask:
        if mask & 1:
            members.append(index)
        mask >>= 1
        index += 1
    return members


def mask_size(mask: int) -> int:
    """Number of models in ``mask``."""
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    return bin(mask).count("1")


def mask_latency(mask: int, latencies: Sequence[float]) -> float:
    """Synchronous latency of executing ``mask`` on idle models: the
    slowest member (models run in parallel)."""
    members = mask_members(mask)
    if any(k >= len(latencies) for k in members):
        raise ValueError(
            f"mask {mask:b} references model beyond {len(latencies)} models"
        )
    if not members:
        return 0.0
    return max(latencies[k] for k in members)


def mask_contains(mask: int, model_index: int) -> bool:
    """Whether ``mask`` includes ``model_index``."""
    if model_index < 0:
        raise ValueError(f"model_index must be >= 0, got {model_index}")
    return bool((mask >> model_index) & 1)
