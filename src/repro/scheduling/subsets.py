"""Model-subset bitmask conventions.

A subset of an ``m``-model ensemble is an ``int`` bitmask in
``[0, 2**m)``; bit ``k`` set means base model ``k`` is executed. Mask 0
(the empty set) means the query is skipped/rejected. Every module that
talks about model combinations — the profiler's utility tables, the DP
table, the serving policies — shares this encoding.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


def iter_masks(n_models: int, include_empty: bool = False) -> Iterator[int]:
    """Yield every subset mask for ``n_models`` base models."""
    if n_models < 1:
        raise ValueError(f"n_models must be >= 1, got {n_models}")
    start = 0 if include_empty else 1
    yield from range(start, 1 << n_models)


def mask_members(mask: int) -> List[int]:
    """Model indices contained in ``mask``."""
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    members = []
    index = 0
    while mask:
        if mask & 1:
            members.append(index)
        mask >>= 1
        index += 1
    return members


def mask_size(mask: int) -> int:
    """Number of models in ``mask``."""
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    return bin(mask).count("1")


def mask_latency(mask: int, latencies: Sequence[float]) -> float:
    """Synchronous latency of executing ``mask`` on idle models: the
    slowest member (models run in parallel)."""
    members = mask_members(mask)
    if any(k >= len(latencies) for k in members):
        raise ValueError(
            f"mask {mask:b} references model beyond {len(latencies)} models"
        )
    if not members:
        return 0.0
    return max(latencies[k] for k in members)


def mask_contains(mask: int, model_index: int) -> bool:
    """Whether ``mask`` includes ``model_index``."""
    if model_index < 0:
        raise ValueError(f"model_index must be >= 0, got {model_index}")
    return bool((mask >> model_index) & 1)
