"""Query execution orders (Section VI-B / Exp-4).

Theorem 1 shows a consistent per-query order never hurts, and Theorem 2
shows EDF is optimal once tasks are fixed and feasible; FIFO and SJF are
the Exp-4 comparison orders.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.scheduling.problem import QueryRequest


def edf_order(queries: Sequence[QueryRequest]) -> List[int]:
    """Earliest Deadline First: indices sorted by deadline."""
    return sorted(range(len(queries)), key=lambda i: (queries[i].deadline, i))


def fifo_order(queries: Sequence[QueryRequest]) -> List[int]:
    """First In First Out: indices sorted by arrival time."""
    return sorted(range(len(queries)), key=lambda i: (queries[i].arrival, i))


def sjf_order(queries: Sequence[QueryRequest]) -> List[int]:
    """Shortest Job First: indices sorted by estimated discrepancy score
    (the paper's proxy for job size — easy queries run fewer models)."""
    return sorted(range(len(queries)), key=lambda i: (queries[i].score, i))


ORDERS = {"edf": edf_order, "fifo": fifo_order, "sjf": sjf_order}
