"""Exhaustive optimal scheduler for small instances.

Used only by tests and theory benches: it searches every subset
assignment (and optionally every processing order) to establish the true
optimum that Theorem 2 (EDF optimality) and Theorem 3 ((1 − ε)
approximation) are verified against.

Feasibility walks the instance's shared per-mask member tables, and
``work_units`` follows the unified accounting rule (one unit per
non-empty candidate subset evaluated — here, per non-empty mask in each
enumerated assignment), so brute-force overhead is charged on the same
scale as DP and greedy.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import List, Optional

from repro.scheduling.orders import edf_order
from repro.scheduling.problem import (
    ScheduleDecision,
    ScheduleResult,
    SchedulingInstance,
    evaluate_schedule,
)


class BruteForceScheduler:
    """Optimal local scheduling by exhaustive search.

    Args:
        search_orders: When True, also search every query permutation
            (exponential in both masks and orderings — keep N tiny);
            when False, EDF order is assumed.
        max_queries: Refuse instances larger than this.
    """

    name = "bruteforce"

    def __init__(self, search_orders: bool = False, max_queries: int = 6):
        self.search_orders = search_orders
        self.max_queries = max_queries

    def schedule(self, instance: SchedulingInstance) -> ScheduleResult:
        """Exhaustively search subset assignments (and orders)."""
        n = instance.n_queries
        if n == 0:
            return ScheduleResult(decisions=[], total_utility=0.0, work_units=0)
        if n > self.max_queries:
            raise ValueError(
                f"brute force limited to {self.max_queries} queries, got {n}"
            )
        n_masks = 1 << instance.n_models
        base_order = edf_order(instance.queries)
        orders = (
            list(permutations(range(n))) if self.search_orders else [tuple(base_order)]
        )

        best_total = -1.0
        best_decisions: Optional[List[ScheduleDecision]] = None
        work_units = 0
        for order in orders:
            ordered = [instance.queries[i] for i in order]
            for assignment in product(range(n_masks), repeat=n):
                work_units += sum(1 for mask in assignment if mask)
                decisions = [
                    ScheduleDecision(query_id=q.query_id, mask=mask)
                    for q, mask in zip(ordered, assignment)
                ]
                # Feasibility: every non-empty mask must meet its deadline.
                if not self._feasible(instance, ordered, assignment):
                    continue
                total = evaluate_schedule(instance, decisions)
                if total > best_total:
                    best_total = total
                    best_decisions = decisions
        assert best_decisions is not None  # mask 0 everywhere is feasible
        return ScheduleResult(
            decisions=best_decisions,
            total_utility=best_total,
            work_units=work_units,
        )

    @staticmethod
    def _feasible(instance, ordered, assignment) -> bool:
        members = instance.masks.members
        latencies = instance.latencies
        times = list(float(t) for t in instance.busy_until)
        for query, mask in zip(ordered, assignment):
            if mask == 0:
                continue
            completion = 0.0
            for k in members[mask]:
                times[k] += latencies[k]
                if times[k] > completion:
                    completion = times[k]
            if instance.now + completion > query.deadline + 1e-12:
                return False
        return True
