"""DecisionLog -> feature-matrix distillation pipeline (the DP oracle's
imitation-learning data path).

The vectorized Alg. 1 DP is exact but exponential in ensemble size; at
buffer >= 64 with 6+ models one ``schedule()`` call costs tens of
seconds and dominates step time. Following NRL's CRM-task-scheduling
(a supervised policy learned from branch-and-bound schedules) and
"Robust Scheduling with GFlowNets", this module turns the opt-in
:class:`~repro.obs.explain.DecisionLog` from an all-DP serving run into
supervised training data: one row per (scheduling round, query) with
the features the scheduler saw — difficulty score, deadline slack,
position and size of the buffer snapshot, per-model ``busy_until``
backlog and per-model headroom — and the DP-chosen subset mask as the
per-model-bit target. :func:`distill_policy` fits both a per-bit
:class:`~repro.trees.gbdt.GradientBoostingRegressor` ensemble and a
multi-output :class:`~repro.nn.models.MLPRegressor` on that matrix,
keeps whichever wins exact-mask validation accuracy, trains the
predicted-regret model that gates the serve-time DP fallback, and
freezes everything into a
:class:`~repro.scheduling.policy_fast.PolicyModel` artifact.

Feature extraction is deterministic: rounds come out ordered by
``decided_at`` (the server serializes scheduler invocations, so round
times are strictly increasing) and queries within a round keep the
committed plan's EDF order, so the same log — in memory or round-tripped
through JSONL — always yields the same matrices. The feature-name
schema is locked by tests so logged runs stay trainable across
versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.obs.explain import DecisionLog
from repro.scheduling.problem import QueryRequest, SchedulingInstance
from repro.scheduling.subsets import mask_tables
from repro.trees.gbdt import GradientBoostingRegressor

__all__ = [
    "BUSY_CLAMP",
    "FEATURE_BASE",
    "REGRET_FEATURE_NAMES",
    "SchedulingRound",
    "feature_names",
    "query_features",
    "extract_rounds",
    "round_feature_matrix",
    "build_training_set",
    "round_instance",
    "regret_features",
    "distill_policy",
]

#: Finite stand-in for an infinite backlog (a downed model): features
#: must stay finite for the tree/MLP substrates, and any value beyond
#: every reachable deadline is equivalent to "never".
BUSY_CLAMP = 1e6

#: Per-query scalar features, before the per-model blocks.
FEATURE_BASE = ("score", "slack", "batch_index", "batch_size")

#: Instance-level features of the regret model that gates the DP
#: fallback (see :func:`regret_features`).
REGRET_FEATURE_NAMES = (
    "n_queries",
    "score_mean",
    "score_max",
    "slack_min",
    "slack_mean",
    "busy_mean",
    "busy_max",
    "policy_utility",
    "bound_utility",
    "bound_gap",
)

#: DecisionRecord actions that belong to a buffered scheduling round.
#: ``fast_path``/``immediate`` decisions never ran the DP, so they
#: carry no oracle label.
_ROUND_ACTIONS = ("dispatch", "reject", "requeue", "fallback")


def feature_names(n_models: int) -> List[str]:
    """The locked per-query feature schema for an ``n_models`` ensemble.

    ``busy_m{k}`` is model ``k``'s committed backlog at decision time
    (clamped to :data:`BUSY_CLAMP`); ``headroom_m{k}`` is
    ``slack - busy_m{k} - latency_k`` — positive iff model ``k`` alone
    could still meet the deadline, the single most predictive bit-k
    signal.
    """
    if n_models < 1:
        raise ValueError(f"n_models must be >= 1, got {n_models}")
    return (
        list(FEATURE_BASE)
        + [f"busy_m{k}" for k in range(n_models)]
        + [f"headroom_m{k}" for k in range(n_models)]
    )


def query_features(
    score: float,
    slack: float,
    batch_index: int,
    batch_size: int,
    busy: np.ndarray,
    latencies: np.ndarray,
) -> np.ndarray:
    """One feature row in :func:`feature_names` order."""
    busy = np.minimum(np.asarray(busy, dtype=float), BUSY_CLAMP)
    headroom = np.clip(
        slack - busy - np.asarray(latencies, dtype=float),
        -BUSY_CLAMP, BUSY_CLAMP,
    )
    return np.concatenate((
        np.array(
            [score, slack, float(batch_index), float(batch_size)],
            dtype=float,
        ),
        busy,
        headroom,
    ))


@dataclass(frozen=True)
class SchedulingRound:
    """One reconstructed scheduler invocation: the buffer snapshot the
    DP saw, in the committed plan's (EDF) order, with the DP-chosen
    mask per query as the imitation target.

    ``target_masks`` holds the *oracle's* choice: a ``fallback`` record
    means the DP chose mask 0 and the server forced the fastest model
    (``allow_rejection=False``), so its target is 0, not the forced
    mask that was recorded.
    """

    decided_at: float
    batch_size: int
    buffer_depth: int
    busy_until: Tuple[float, ...]
    query_ids: Tuple[int, ...]
    scores: Tuple[float, ...]
    deadlines: Tuple[float, ...]
    actions: Tuple[str, ...]
    target_masks: Tuple[int, ...]

    @property
    def n_queries(self) -> int:
        return len(self.query_ids)


def extract_rounds(log: DecisionLog, n_models: int) -> List[SchedulingRound]:
    """Group a decision log into scheduling rounds.

    The server serializes scheduler invocations (``scheduling_busy``),
    so every buffered round has a distinct, strictly increasing
    ``decided_at``; records within a round arrive in plan order. Records
    from the fast path / immediate policies (no buffer snapshot) and
    records whose ``busy_until`` does not match ``n_models`` (a log from
    a different deployment) are skipped.
    """
    groups: Dict[float, List] = {}
    order: List[float] = []
    for record in log.records:
        if record.action not in _ROUND_ACTIONS or record.batch_size <= 0:
            continue
        if len(record.busy_until) != n_models:
            continue
        key = float(record.decided_at)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record)
    rounds = []
    for key in sorted(order):
        records = groups[key]
        first = records[0]
        rounds.append(SchedulingRound(
            decided_at=float(first.decided_at),
            batch_size=int(first.batch_size),
            buffer_depth=int(first.buffer_depth),
            busy_until=tuple(float(b) for b in first.busy_until),
            query_ids=tuple(int(r.query_id) for r in records),
            scores=tuple(float(r.score) for r in records),
            deadlines=tuple(float(r.deadline) for r in records),
            actions=tuple(str(r.action) for r in records),
            target_masks=tuple(
                int(r.chosen_mask) if r.action in ("dispatch", "requeue")
                else 0
                for r in records
            ),
        ))
    return rounds


def round_feature_matrix(
    round_: SchedulingRound, latencies: np.ndarray
) -> np.ndarray:
    """Per-query feature rows for one round, teacher-forced: the busy
    vector rolls forward with the *oracle's* masks, exactly the state
    the DP's own plan implies when it reaches each query."""
    latencies = np.asarray(latencies, dtype=float)
    busy = np.array(round_.busy_until, dtype=float)
    rows = np.empty(
        (round_.n_queries, len(feature_names(latencies.shape[0])))
    )
    for i in range(round_.n_queries):
        slack = round_.deadlines[i] - round_.decided_at
        rows[i] = query_features(
            round_.scores[i], slack, i, round_.batch_size, busy, latencies
        )
        mask = round_.target_masks[i]
        if mask:
            member = (mask >> np.arange(latencies.shape[0])) & 1
            busy = busy + np.where(member == 1, latencies, 0.0)
    return rows


def build_training_set(
    log: DecisionLog, latencies: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, List[SchedulingRound], np.ndarray]:
    """``(X, bits, rounds, row_round)``: stacked feature rows, the
    per-model 0/1 target matrix (bit ``k`` of the oracle mask), the
    extracted rounds, and each row's round index."""
    latencies = np.asarray(latencies, dtype=float)
    m = latencies.shape[0]
    rounds = extract_rounds(log, m)
    n_feat = len(feature_names(m))
    if not rounds:
        return (
            np.zeros((0, n_feat)), np.zeros((0, m), dtype=int),
            rounds, np.zeros(0, dtype=int),
        )
    blocks = [round_feature_matrix(r, latencies) for r in rounds]
    X = np.vstack(blocks)
    masks = np.concatenate(
        [np.asarray(r.target_masks, dtype=np.int64) for r in rounds]
    )
    bits = ((masks[:, None] >> np.arange(m)[None, :]) & 1).astype(int)
    row_round = np.concatenate([
        np.full(r.n_queries, i, dtype=int) for i, r in enumerate(rounds)
    ])
    return X, bits, rounds, row_round


def round_instance(
    round_: SchedulingRound,
    latencies: np.ndarray,
    utilities_fn: Callable[[np.ndarray], np.ndarray],
) -> SchedulingInstance:
    """Rebuild the :class:`SchedulingInstance` a round's scheduler saw.

    The log stores each query's difficulty score, not its utility row;
    ``utilities_fn`` (e.g. ``setup.schemble.utilities``) maps scores
    back to ``(n, 2**m)`` reward rows — the pipeline derives utilities
    deterministically from scores, so the reconstruction is exact.
    """
    latencies = np.asarray(latencies, dtype=float)
    rows = np.asarray(
        utilities_fn(np.asarray(round_.scores, dtype=float)), dtype=float
    )
    queries = [
        QueryRequest(
            query_id=round_.query_ids[i],
            # Arrival is not logged (and not used by any scheduler);
            # it only needs to satisfy arrival <= deadline.
            arrival=min(round_.decided_at, round_.deadlines[i]),
            deadline=round_.deadlines[i],
            utilities=rows[i],
            score=round_.scores[i],
        )
        for i in range(round_.n_queries)
    ]
    return SchedulingInstance(
        queries=queries,
        latencies=latencies,
        busy_until=np.array(round_.busy_until, dtype=float),
        now=round_.decided_at,
    )


def regret_features(
    instance: SchedulingInstance, policy_utility: float
) -> np.ndarray:
    """Instance-level features of the predicted-regret gate, in
    :data:`REGRET_FEATURE_NAMES` order.

    ``bound_utility`` is the contention-free optimistic bound: each
    query's best feasible reward against the snapshot backlog alone.
    The DP can never exceed it, so ``bound_gap = bound - policy``
    upper-bounds the true regret — the single strongest regressor
    input.
    """
    n = instance.n_queries
    if n == 0:
        return np.zeros(len(REGRET_FEATURE_NAMES))
    scores = np.array([q.score for q in instance.queries], dtype=float)
    slacks = np.array(
        [q.deadline - instance.now for q in instance.queries], dtype=float
    )
    busy = np.minimum(instance.busy_until, BUSY_CLAMP)
    # Per-mask completion on the snapshot backlog (no contention).
    tables = mask_tables(instance.n_models)
    completion = np.where(
        tables.membership,
        instance.busy_until[None, :] + instance.latencies[None, :],
        -np.inf,
    ).max(axis=1)  # (2**m,); mask 0 -> -inf (always feasible, reward 0)
    bound = 0.0
    for i, query in enumerate(instance.queries):
        feasible = completion <= slacks[i] + 1e-12
        if np.any(feasible):
            bound += float(query.utilities[feasible].max())
    return np.array([
        float(n),
        float(scores.mean()),
        float(scores.max()),
        float(slacks.min()),
        float(slacks.mean()),
        float(busy.mean()),
        float(busy.max()),
        float(policy_utility),
        float(bound),
        float(bound - policy_utility),
    ])


class _BitsGBDT:
    """Per-model-bit gradient-boosted probability heads.

    One least-squares :class:`GradientBoostingRegressor` per ensemble
    member, fit on the 0/1 bit indicator (L2Boost on indicators — the
    predicted value approximates the bit probability). Keeping one
    binary head per model instead of a ``2**m``-class classifier is
    what makes serving O(models): prediction cost grows linearly in
    ensemble size, never exponentially.
    """

    kind = "gbdt"

    def __init__(self, models: Sequence[GradientBoostingRegressor]):
        self.models = list(models)

    @classmethod
    def fit(
        cls,
        X: np.ndarray,
        bits: np.ndarray,
        n_estimators: int = 30,
        learning_rate: float = 0.15,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
    ) -> "_BitsGBDT":
        models = []
        for k in range(bits.shape[1]):
            model = GradientBoostingRegressor(
                n_estimators=n_estimators,
                learning_rate=learning_rate,
                max_depth=max_depth,
                min_samples_leaf=min_samples_leaf,
            )
            models.append(model.fit(X, bits[:, k].astype(float)))
        return cls(models)

    def predict_bits(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        out = np.empty((X.shape[0], len(self.models)))
        for k, model in enumerate(self.models):
            out[:, k] = model.predict(X)
        return np.clip(out, 0.0, 1.0)


class _BitsMLP:
    """Multi-output MLP probability head (one sigmoid-less regressor
    over all bits; predictions are clipped into [0, 1])."""

    kind = "mlp"

    def __init__(self, model):
        self.model = model

    @classmethod
    def fit(
        cls,
        X: np.ndarray,
        bits: np.ndarray,
        hidden: Tuple[int, ...] = (32,),
        epochs: int = 120,
        lr: float = 5e-3,
        seed: int = 0,
    ) -> "_BitsMLP":
        from repro.nn.models import MLPRegressor

        model = MLPRegressor(
            in_features=X.shape[1],
            out_features=bits.shape[1],
            hidden=hidden,
            epochs=epochs,
            lr=lr,
            batch_size=min(64, max(8, X.shape[0])),
            seed=seed,
        )
        model.fit(X, bits.astype(float))
        return cls(model)

    def predict_bits(self, X: np.ndarray) -> np.ndarray:
        return np.clip(self.model.predict(np.asarray(X, dtype=float)), 0.0, 1.0)


def _exact_mask_accuracy(bits_model, X, bits) -> float:
    if X.shape[0] == 0:
        return 0.0
    predicted = bits_model.predict_bits(X) > 0.5
    return float(np.all(predicted == (bits > 0), axis=1).mean())


def distill_policy(
    log: DecisionLog,
    latencies: np.ndarray,
    utilities_fn: Callable[[np.ndarray], np.ndarray],
    model: str = "auto",
    val_fraction: float = 0.25,
    seed: int = 0,
    mlp_hidden: Tuple[int, ...] = (32,),
    gbdt_estimators: int = 30,
):
    """Train a frozen fast-path policy from an all-DP decision log.

    Splits rounds (not rows — rows within a round share state) into
    train/validation, fits the requested mask-bit model(s) on the
    training rows, picks the winner by exact-mask validation accuracy,
    then trains the regret regressor: for every round, the label is
    ``oracle plan utility - policy rollout utility`` on the
    reconstructed instance, and the features are the instance-level
    :func:`regret_features` the serve-time gate can compute in
    O(queries * masks).

    Args:
        log: Decision log from a DP-scheduled serving run.
        latencies: Per-model inference times of the logged deployment.
        utilities_fn: ``scores -> (n, 2**m)`` utility rows (the
            pipeline's score-to-reward mapping, e.g.
            ``setup.schemble.utilities``).
        model: ``"auto"`` (fit both, keep the validation winner),
            ``"gbdt"`` or ``"mlp"``.

    Returns:
        A :class:`~repro.scheduling.policy_fast.PolicyModel`.
    """
    from repro.scheduling.policy_fast import PolicyModel, rollout_plan

    if model not in ("auto", "gbdt", "mlp"):
        raise ValueError(f"model must be auto|gbdt|mlp, got {model!r}")
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(
            f"val_fraction must be in (0, 1), got {val_fraction}"
        )
    latencies = np.asarray(latencies, dtype=float)
    m = latencies.shape[0]
    X, bits, rounds, row_round = build_training_set(log, latencies)
    if len(rounds) < 4:
        raise ValueError(
            f"need at least 4 scheduling rounds to distill, got "
            f"{len(rounds)} (run a longer DP-scheduled trace)"
        )
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(len(rounds))
    n_val = max(1, int(round(val_fraction * len(rounds))))
    val_rounds = set(int(i) for i in permutation[:n_val])
    val_rows = np.isin(row_round, sorted(val_rounds))
    X_train, bits_train = X[~val_rows], bits[~val_rows]
    X_val, bits_val = X[val_rows], bits[val_rows]

    candidates = []
    if model in ("auto", "gbdt"):
        candidates.append(_BitsGBDT.fit(
            X_train, bits_train, n_estimators=gbdt_estimators
        ))
    if model in ("auto", "mlp"):
        candidates.append(_BitsMLP.fit(
            X_train, bits_train, hidden=mlp_hidden, seed=seed
        ))
    accuracies = {
        c.kind: _exact_mask_accuracy(c, X_val, bits_val) for c in candidates
    }
    # Deterministic winner: best validation accuracy, GBDT on ties
    # (cheaper to serialize, no epoch-order nondeterminism risk).
    best = max(candidates, key=lambda c: (accuracies[c.kind], c.kind == "gbdt"))

    # Regret labels: oracle plan utility minus the chosen policy's
    # rollout utility, per reconstructed round instance.
    regret_X = np.empty((len(rounds), len(REGRET_FEATURE_NAMES)))
    regret_y = np.empty(len(rounds))
    for i, round_ in enumerate(rounds):
        instance = round_instance(round_, latencies, utilities_fn)
        oracle_utility = sum(
            float(q.utilities[mask])
            for q, mask in zip(instance.queries, round_.target_masks)
        )
        _, policy_utility, _ = rollout_plan(best, instance)
        regret_X[i] = regret_features(instance, policy_utility)
        regret_y[i] = oracle_utility - policy_utility
    regret_model = GradientBoostingRegressor(
        n_estimators=30, learning_rate=0.1, max_depth=3, min_samples_leaf=2
    ).fit(regret_X, regret_y)
    regret_mae = float(
        np.abs(regret_model.predict(regret_X) - regret_y).mean()
    )

    metadata = {
        "rounds": len(rounds),
        "rows": int(X.shape[0]),
        "val_rounds": len(val_rounds),
        "val_rows": int(X_val.shape[0]),
        "val_accuracy": accuracies,
        "chosen": best.kind,
        "mean_regret": float(regret_y.mean()),
        "max_regret": float(regret_y.max()),
        "regret_mae": regret_mae,
        "seed": int(seed),
    }
    return PolicyModel(
        n_models=m,
        feature_names=feature_names(m),
        regret_feature_names=list(REGRET_FEATURE_NAMES),
        bits_model=best,
        regret_model=regret_model,
        metadata=metadata,
    )
