"""Task scheduling: the DP algorithm of Section VI and its baselines."""

from repro.scheduling.subsets import (
    MaskTables,
    iter_masks,
    mask_latency,
    mask_members,
    mask_size,
    mask_tables,
)
from repro.scheduling.problem import QueryRequest, ScheduleDecision, SchedulingInstance
from repro.scheduling.dp import DPScheduler
from repro.scheduling.dp_reference import DPReferenceScheduler
from repro.scheduling.greedy import GreedyScheduler
from repro.scheduling.orders import edf_order, fifo_order, sjf_order
from repro.scheduling.bruteforce import BruteForceScheduler

__all__ = [
    "MaskTables",
    "iter_masks",
    "mask_members",
    "mask_size",
    "mask_latency",
    "mask_tables",
    "QueryRequest",
    "ScheduleDecision",
    "SchedulingInstance",
    "DPScheduler",
    "DPReferenceScheduler",
    "GreedyScheduler",
    "BruteForceScheduler",
    "edf_order",
    "fifo_order",
    "sjf_order",
]
