"""Task scheduling: the DP algorithm of Section VI and its baselines."""

from repro.scheduling.subsets import (
    MaskTables,
    iter_masks,
    mask_latency,
    mask_members,
    mask_size,
    mask_tables,
    mask_tables_cache_info,
)
from repro.scheduling.problem import QueryRequest, ScheduleDecision, SchedulingInstance
from repro.scheduling.dp import DPScheduler
from repro.scheduling.dp_reference import DPReferenceScheduler
from repro.scheduling.greedy import GreedyScheduler
from repro.scheduling.orders import edf_order, fifo_order, sjf_order
from repro.scheduling.bruteforce import BruteForceScheduler
from repro.scheduling.policy_fast import LearnedScheduler, PolicyModel

__all__ = [
    "MaskTables",
    "iter_masks",
    "mask_members",
    "mask_size",
    "mask_latency",
    "mask_tables",
    "mask_tables_cache_info",
    "LearnedScheduler",
    "PolicyModel",
    "QueryRequest",
    "ScheduleDecision",
    "SchedulingInstance",
    "DPScheduler",
    "DPReferenceScheduler",
    "GreedyScheduler",
    "BruteForceScheduler",
    "edf_order",
    "fifo_order",
    "sjf_order",
]
