"""Dynamic-programming scheduling (Algorithm 1, Section VI-B).

Queries in the buffer are indexed in EDF order (Theorem 2). The DP table
is keyed by (query index, quantised cumulative reward); each cell keeps
the Pareto frontier of per-model finish-time vectors achieving exactly
that reward, pruning dominated vectors every step. The best plan is the
non-empty cell with the largest reward after the last query.

Quantising rewards to multiples of δ bounds the table size; Theorem 3
shows the result is a (1 − ε) approximation of the optimal local plan
for δ = ε/N.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.scheduling.orders import edf_order
from repro.scheduling.problem import (
    ScheduleDecision,
    ScheduleResult,
    SchedulingInstance,
)
from repro.utils.validation import check_positive

# A table cell holds Pareto-minimal (finish-times, choices) pairs.
_Solution = Tuple[Tuple[float, ...], Tuple[int, ...]]


def _prune(solutions: List[_Solution]) -> List[_Solution]:
    """Drop solutions whose finish-time vector is dominated by another.

    Vector A dominates B when A is componentwise <= B: any continuation
    feasible from B is feasible from A at equal reward.
    """
    if len(solutions) <= 1:
        return solutions
    solutions = sorted(solutions, key=lambda s: (sum(s[0]), s[0]))
    kept: List[_Solution] = []
    for times, choices in solutions:
        dominated = False
        for kept_times, _ in kept:
            if all(kt <= t + 1e-12 for kt, t in zip(kept_times, times)):
                dominated = True
                break
        if not dominated:
            kept.append((times, choices))
    return kept


class DPScheduler:
    """Near-optimal local scheduler with quantisation step δ.

    Args:
        delta: Reward quantisation step (paper default 0.01; Fig. 12 and
            Fig. 21 sweep it). Pass ``None`` to derive δ adaptively from
            ``epsilon`` as Theorem 3 prescribes: δ = ε/N for a buffer of
            N queries, guaranteeing a (1 − ε) approximation at every
            buffer size instead of only at one.
        epsilon: Approximation target used when ``delta`` is None.
        max_solutions_per_cell: Safety cap on a cell's Pareto frontier;
            cells are pruned to the fastest vectors beyond it.
    """

    name = "dp"

    def __init__(
        self,
        delta: Optional[float] = 0.01,
        epsilon: float = 0.1,
        max_solutions_per_cell: int = 8,
    ):
        self.delta = None if delta is None else check_positive("delta", delta)
        self.epsilon = check_positive("epsilon", epsilon)
        if max_solutions_per_cell < 1:
            raise ValueError(
                f"max_solutions_per_cell must be >= 1, got "
                f"{max_solutions_per_cell}"
            )
        self.max_solutions_per_cell = max_solutions_per_cell

    def step_for(self, n_queries: int) -> float:
        """The quantisation step used for a buffer of ``n_queries``."""
        if self.delta is not None:
            return self.delta
        return self.epsilon / max(n_queries, 1)

    def schedule(self, instance: SchedulingInstance) -> ScheduleResult:
        """Solve the local subproblem; decisions come back in EDF order."""
        if instance.n_queries == 0:
            return ScheduleResult(decisions=[], total_utility=0.0, work_units=0)

        step = self.step_for(instance.n_queries)
        order = edf_order(instance.queries)
        queries = [instance.queries[i] for i in order]
        latencies = instance.latencies
        n_models = instance.n_models
        n_masks = 1 << n_models
        start = tuple(float(t) for t in instance.busy_until)

        # Precompute quantised rewards and per-mask latency increments.
        member_lists = [
            [k for k in range(n_models) if (mask >> k) & 1]
            for mask in range(n_masks)
        ]

        table: Dict[int, List[_Solution]] = {0: [(start, ())]}
        work_units = 0
        for query in queries:
            relative_deadline = query.deadline - instance.now
            rewards = query.utilities
            quantised = np.floor(rewards / step).astype(int)
            new_table: Dict[int, List[_Solution]] = {}
            for u, solutions in table.items():
                for mask in range(n_masks):
                    members = member_lists[mask]
                    du = int(quantised[mask]) if mask else 0
                    for times, choices in solutions:
                        work_units += 1
                        if mask == 0:
                            candidate = (times, choices + (0,))
                        else:
                            new_times = list(times)
                            completion = 0.0
                            for k in members:
                                new_times[k] += latencies[k]
                                if new_times[k] > completion:
                                    completion = new_times[k]
                            if completion > relative_deadline + 1e-12:
                                continue
                            candidate = (tuple(new_times), choices + (mask,))
                        new_table.setdefault(u + du, []).append(candidate)
            table = {}
            for u, solutions in new_table.items():
                pruned = _prune(solutions)
                if len(pruned) > self.max_solutions_per_cell:
                    pruned = sorted(pruned, key=lambda s: sum(s[0]))[
                        : self.max_solutions_per_cell
                    ]
                table[u] = pruned

        best_u = max(table)
        choices = table[best_u][0][1]
        decisions = [
            ScheduleDecision(query_id=query.query_id, mask=mask)
            for query, mask in zip(queries, choices)
        ]
        # Report the unquantised reward of the chosen plan.
        total = sum(
            float(q.utilities[mask]) for q, mask in zip(queries, choices)
        )
        return ScheduleResult(
            decisions=decisions, total_utility=total, work_units=work_units
        )
