"""Dynamic-programming scheduling (Algorithm 1, Section VI-B) —
vectorized hot path.

Queries in the buffer are indexed in EDF order (Theorem 2). The DP table
is keyed by quantised cumulative reward; each cell keeps the Pareto
frontier of per-model finish-time vectors achieving exactly that reward.
Quantising rewards to multiples of δ bounds the table size; Theorem 3
shows the result is a (1 − ε) approximation of the optimal local plan
for δ = ε/N.

This module is the numpy kernel form of the algorithm. The whole DP
table lives in flat, cell-contiguous arrays (finish times, quantised
reward, and parent pointers for plan reconstruction). Per query it:

1. extends all ``S × 2**m`` candidates in a single broadcast add
   against the instance's shared per-mask increment table;
2. computes completion times and deadline feasibility for the whole
   frontier × mask grid at once;
3. buckets the surviving candidates into their target cells with one
   ``lexsort`` on ``(cell, sum, finish_times, parent_rank, mask)`` —
   the candidate's flat parent-row index and mask double as the
   canonical tie-break keys, so bit-identical finish-time vectors
   (common: any two plans running each model the same number of times
   collide) cost nothing extra to order;
4. Pareto-prunes every bucket simultaneously: each sweep keeps each
   bucket's first surviving candidate and eliminates its victims
   bucket-wide, at most ``max_solutions_per_cell`` sweeps total.

The chosen plan is reconstructed by walking the parent pointers — the
per-candidate choice matrices the loop implementation carried (and
re-copied every step) never exist.

The output is **bit-exact** with the pure-Python
:class:`~repro.scheduling.dp_reference.DPReferenceScheduler`: identical
decisions, total utility, and work units on every instance (randomized
parity is enforced by ``benchmarks/bench_sched_throughput.py`` and
``tests/scheduling/test_dp_vectorized.py``). Both share the canonical
ordering, the unified work-unit accounting (one unit per non-empty
candidate subset per frontier entry; skips are free) and the
unquantised-reward tie-break for the final plan — see
``dp_reference.py`` for the rationale. Keep the two in lockstep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.scheduling.orders import edf_order
from repro.scheduling.problem import (
    ScheduleDecision,
    ScheduleResult,
    SchedulingInstance,
)
from repro.utils.validation import check_positive

_EPS = 1e-12


def _left_to_right_sum(matrix: np.ndarray) -> np.ndarray:
    """Row sums accumulated column-by-column, matching Python's built-in
    ``sum(tuple)`` rounding so canonical-order ties resolve identically
    in the reference and vectorized paths."""
    total = np.zeros(matrix.shape[0])
    for k in range(matrix.shape[1]):
        total = total + matrix[:, k]
    return total


def _prune_buckets(
    times: np.ndarray, bucket_starts: np.ndarray, cap: int
) -> np.ndarray:
    """Pareto-prune every cell's candidate bucket simultaneously.

    ``times`` holds all candidates, bucket-contiguous and in canonical
    (sum, finish_times, choices) order within each bucket;
    ``bucket_starts`` are the bucket boundaries (ending with ``len``).
    Returns a keep-mask with at most ``cap`` survivors per bucket.

    A vector is dominated when some kept vector in its bucket is
    componentwise ``<= + eps``; canonical order guarantees dominators
    precede their victims. Sweep ``k`` keeps each bucket's first
    still-alive candidate (its ``k``-th frontier entry) and eliminates
    that entry's victims bucket-wide — one ``reduceat`` + one
    broadcast comparison per sweep, at most ``cap`` sweeps, no
    per-bucket Python. This reproduces the reference's sequential
    greedy prune exactly: after sweep ``k`` every alive candidate has
    been tested against its bucket's first ``k`` kept entries.
    """
    total = times.shape[0]
    starts = bucket_starts[:-1]
    sizes = np.diff(bucket_starts)
    positions = np.arange(total)
    # Sentinel row: +inf never dominates, so dead buckets sweep nothing.
    times_ext = np.concatenate([times, np.full((1, times.shape[1]), np.inf)])
    alive = np.ones(total, dtype=bool)
    kept = np.zeros(total, dtype=bool)
    for _ in range(cap):
        heads = np.minimum.reduceat(
            np.where(alive, positions, total), starts
        )
        live = heads[heads < total]
        if live.size == 0:
            break
        kept[live] = True
        dominator = np.repeat(heads, sizes)
        dominated = np.all(
            times_ext[dominator] <= times + _EPS, axis=1
        )
        alive &= ~dominated
    return kept


def _backtrack(
    parents: List[np.ndarray], masks: List[np.ndarray], row: int, level: int
) -> Tuple[int, ...]:
    """The mask choices of entry ``row`` at table level ``level``
    (levels index ``parents``/``masks``; level -1 is the empty plan)."""
    choices: List[int] = []
    while level >= 0:
        choices.append(int(masks[level][row]))
        row = int(parents[level][row])
        level -= 1
    return tuple(reversed(choices))


@dataclass
class ScheduleStats:
    """Explainability snapshot of one ``schedule()`` call.

    Populated only when :attr:`DPScheduler.collect_stats` is True (the
    decision-explain path); the default scheduling path never builds it.

    Attributes:
        frontier_sizes: Pareto-frontier entries after each DP level —
            one value per query, in EDF order (the order decisions are
            returned in).
        n_cells: Distinct quantised-reward cells in the final frontier.
        candidate_masks: Per query (EDF order), the masks that were
            deadline-feasible from at least one frontier entry. Mask 0
            (skip) is always a candidate.
        phase_wall: Real wall-clock seconds per internal step phase for
            this call (see :data:`DP_PHASES`); empty unless
            :attr:`DPScheduler.profile` was also on.
    """

    frontier_sizes: List[int] = field(default_factory=list)
    n_cells: int = 0
    candidate_masks: List[List[int]] = field(default_factory=list)
    phase_wall: Dict[str, float] = field(default_factory=dict)


#: Internal step phases of one ``DPScheduler.schedule()`` call, in
#: execution order: shared mask/utility table access, broadcast
#: candidate extension + feasibility, lexsort + all-cell Pareto prune,
#: and parent-pointer plan reconstruction.
DP_PHASES = ("mask_tables", "extend", "prune", "backtrack")


class DPScheduler:
    """Near-optimal local scheduler with quantisation step δ.

    Args:
        delta: Reward quantisation step (paper default 0.01; Fig. 12 and
            Fig. 21 sweep it). Pass ``None`` to derive δ adaptively from
            ``epsilon`` as Theorem 3 prescribes: δ = ε/N for a buffer of
            N queries, guaranteeing a (1 − ε) approximation at every
            buffer size instead of only at one.
        epsilon: Approximation target used when ``delta`` is None.
        max_solutions_per_cell: Safety cap on a cell's Pareto frontier;
            the first entries in canonical order are kept.

    Setting :attr:`collect_stats` makes each ``schedule()`` call leave
    a :class:`ScheduleStats` in :attr:`last_stats` (frontier sizes,
    reward cells, per-query candidate masks). The flag is checked once
    per call plus once per query, so the disabled path — the default —
    costs two predictable branches and stays bit-identical.

    Setting :attr:`profile` additionally wraps the four internal step
    phases (:data:`DP_PHASES`) in ``perf_counter`` timers. Each call
    leaves its per-phase wall clock in :attr:`last_phase_wall` and
    accumulates run totals into :attr:`phase_wall`; when
    ``collect_stats`` is also on the same dict lands on
    ``last_stats.phase_wall``. Timers only *read* the clock — they
    never touch the DP state, so profiled plans stay bit-identical.
    """

    name = "dp"

    def __init__(
        self,
        delta: Optional[float] = 0.01,
        epsilon: float = 0.1,
        max_solutions_per_cell: int = 8,
    ):
        self.delta = None if delta is None else check_positive("delta", delta)
        self.epsilon = check_positive("epsilon", epsilon)
        if max_solutions_per_cell < 1:
            raise ValueError(
                f"max_solutions_per_cell must be >= 1, got "
                f"{max_solutions_per_cell}"
            )
        self.max_solutions_per_cell = max_solutions_per_cell
        self.collect_stats = False
        self.last_stats: Optional[ScheduleStats] = None
        self.profile = False
        self.phase_wall: Dict[str, float] = {p: 0.0 for p in DP_PHASES}
        self.last_phase_wall: Optional[Dict[str, float]] = None

    def step_for(self, n_queries: int) -> float:
        """The quantisation step used for a buffer of ``n_queries``."""
        if self.delta is not None:
            return self.delta
        return self.epsilon / max(n_queries, 1)

    def schedule(self, instance: SchedulingInstance) -> ScheduleResult:
        """Solve the local subproblem; decisions come back in EDF order."""
        n = instance.n_queries
        collect = self.collect_stats
        if collect:
            self.last_stats = ScheduleStats()
        profile = self.profile
        phases: Dict[str, float] = {}
        if profile:
            # One shared dict: last_phase_wall, last_stats.phase_wall
            # and the emitters all see the same totals for this call.
            phases = {p: 0.0 for p in DP_PHASES}
            self.last_phase_wall = phases
            if collect:
                self.last_stats.phase_wall = phases
        if n == 0:
            return ScheduleResult(decisions=[], total_utility=0.0, work_units=0)

        if profile:
            t_mark = time.perf_counter()
        step = self.step_for(n)
        order = edf_order(instance.queries)
        queries = [instance.queries[i] for i in order]
        n_models = instance.n_models
        n_masks = 1 << n_models
        membership = instance.mask_membership  # (n_masks, m) bool
        increments = instance.mask_increments  # (n_masks, m) float
        quantised = instance.quantised_utilities(step)[np.asarray(order)]
        cap = self.max_solutions_per_cell
        if profile:
            phases["mask_tables"] = time.perf_counter() - t_mark

        frontier = instance.busy_until.astype(float, copy=True)[None, :]
        cell_u = np.zeros(1, dtype=np.int64)
        parents: List[np.ndarray] = []
        masks: List[np.ndarray] = []
        work_units = 0
        for qi, query in enumerate(queries):
            relative_deadline = query.deadline - instance.now
            du = quantised[qi]  # (n_masks,) int64
            work_units += frontier.shape[0] * (n_masks - 1)

            # Extend every frontier entry by every mask in one shot.
            # Increment row 0 is all zeros, so the skip continuation
            # keeps its parent's finish times bit-identically.
            if profile:
                t_mark = time.perf_counter()
            cand = frontier[:, None, :] + increments[None, :, :]
            completion = np.where(
                membership[None, :, :], cand, -np.inf
            ).max(axis=2)
            feasible = completion <= relative_deadline + _EPS
            feasible[:, 0] = True  # skipping is always allowed
            if profile:
                phases["extend"] += time.perf_counter() - t_mark
            if collect:
                self.last_stats.candidate_masks.append(
                    np.nonzero(feasible.any(axis=0))[0].tolist()
                )

            if profile:
                t_mark = time.perf_counter()
            sol_idx, mask_idx = np.nonzero(feasible)
            cand_times = cand[sol_idx, mask_idx, :]
            target_u = cell_u[sol_idx] + du[mask_idx]
            sums = _left_to_right_sum(cand_times)
            if profile:
                phases["extend"] += time.perf_counter() - t_mark

            # One sort: primary target cell, then the full canonical
            # (sum, finish_times, parent_rank, mask) order within it
            # (np.lexsort's last key is the most significant). The
            # frontier rows are already in ascending-cell canonical
            # order, so ``sol_idx`` *is* the parent rank.
            if profile:
                t_mark = time.perf_counter()
            by_cell = np.lexsort(
                [mask_idx, sol_idx]
                + [cand_times[:, k] for k in range(n_models - 1, -1, -1)]
                + [sums, target_u]
            )
            sol_s = sol_idx[by_cell]
            mask_s = mask_idx[by_cell]
            times_s = cand_times[by_cell]
            u_s = target_u[by_cell]
            bucket_starts = np.concatenate(
                [[0], np.nonzero(np.diff(u_s))[0] + 1, [u_s.shape[0]]]
            )
            kept = _prune_buckets(times_s, bucket_starts, cap)
            frontier = times_s[kept]
            cell_u = u_s[kept]
            parents.append(sol_s[kept])
            masks.append(mask_s[kept])
            if profile:
                phases["prune"] += time.perf_counter() - t_mark
            if collect:
                self.last_stats.frontier_sizes.append(
                    int(frontier.shape[0])
                )

        # Quantised ties hide unquantised differences: among the best
        # cell's frontier, maximise the true reward, then prefer the
        # smaller finish-time sum, then the canonical-first entry.
        if profile:
            t_mark = time.perf_counter()
        rows = np.nonzero(cell_u == cell_u.max())[0]
        spans = _left_to_right_sum(frontier[rows])
        best_plan = None
        best_reward = best_span = 0.0
        for row, span in zip(rows, spans):
            plan = _backtrack(parents, masks, int(row), n - 1)
            reward = sum(
                float(q.utilities[mask]) for q, mask in zip(queries, plan)
            )
            if best_plan is None or reward > best_reward or (
                reward == best_reward and span < best_span
            ):
                best_plan, best_reward, best_span = plan, reward, span
        if profile:
            phases["backtrack"] = time.perf_counter() - t_mark
            for p in DP_PHASES:
                self.phase_wall[p] += phases[p]
        if collect:
            self.last_stats.n_cells = int(np.unique(cell_u).size)
        decisions = [
            ScheduleDecision(query_id=query.query_id, mask=mask)
            for query, mask in zip(queries, best_plan)
        ]
        return ScheduleResult(
            decisions=decisions,
            total_utility=best_reward,
            work_units=work_units,
        )
