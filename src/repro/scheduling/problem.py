"""Scheduling problem types (Section VI-A).

A scheduler sees the queries currently waiting in the buffer, each with
an absolute deadline and a per-subset utility row (from the accuracy
profiler), plus the per-model inference times and each model's remaining
busy time. It returns a subset mask per query and the processing order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class QueryRequest:
    """One pending query in the scheduling buffer.

    Attributes:
        query_id: Stable identifier (index into the serving run).
        arrival: Absolute arrival time (seconds).
        deadline: Absolute completion deadline (seconds).
        utilities: Reward per subset mask, shape ``(2**m,)``; entry 0
            (empty subset) must be 0.
        score: Estimated discrepancy score (used by SJF ordering).
        sample_index: Pool sample this query replays (serving detail).
    """

    query_id: int
    arrival: float
    deadline: float
    utilities: np.ndarray
    score: float = 0.0
    sample_index: int = -1

    def __post_init__(self):
        self.utilities = np.asarray(self.utilities, dtype=float)
        if self.utilities.ndim != 1:
            raise ValueError(
                f"utilities must be 1-d, got shape {self.utilities.shape}"
            )
        if self.deadline < self.arrival:
            raise ValueError(
                f"deadline {self.deadline} precedes arrival {self.arrival}"
            )
        if abs(float(self.utilities[0])) > 1e-9:
            raise ValueError("utility of the empty subset must be 0")


@dataclass
class ScheduleDecision:
    """Chosen subset for one query; ``mask == 0`` rejects the query."""

    query_id: int
    mask: int

    def __post_init__(self):
        if self.mask < 0:
            raise ValueError(f"mask must be non-negative, got {self.mask}")


@dataclass
class ScheduleResult:
    """Scheduler output: decisions in processing order plus run stats.

    ``work_units`` counts inner-loop iterations; the serving simulator
    converts it into scheduling overhead time so that very small δ
    (huge DP tables) pays its cost, as in Exp-4/Fig. 21.
    """

    decisions: List[ScheduleDecision]
    total_utility: float = 0.0
    work_units: int = 0

    def mask_for(self, query_id: int) -> int:
        for decision in self.decisions:
            if decision.query_id == query_id:
                return decision.mask
        raise KeyError(f"no decision for query {query_id}")


@dataclass
class SchedulingInstance:
    """A local scheduling subproblem (the buffer at one moment).

    Attributes:
        queries: Pending queries (any order; schedulers sort internally).
        latencies: Per-model inference times ``T_k``.
        busy_until: Per-model remaining execution time ``t_k^(0)``
            measured from ``now`` (0 for idle models). Under fault
            injection this is an *estimate* that may shrink between
            invocations (a crash revokes commitments) or be ``inf``
            (every worker for the model is down/undeployed) — schedulers
            must treat an ``inf`` entry as "no feasible subset uses this
            model", never as an error.
        now: Current absolute time.
    """

    queries: List[QueryRequest]
    latencies: np.ndarray
    busy_until: np.ndarray
    now: float = 0.0

    def __post_init__(self):
        self.latencies = np.asarray(self.latencies, dtype=float)
        self.busy_until = np.asarray(self.busy_until, dtype=float)
        if self.latencies.ndim != 1 or self.latencies.size == 0:
            raise ValueError("latencies must be a non-empty 1-d array")
        if np.any(self.latencies <= 0):
            raise ValueError("latencies must be positive")
        if self.busy_until.shape != self.latencies.shape:
            raise ValueError(
                f"busy_until shape {self.busy_until.shape} must match "
                f"latencies shape {self.latencies.shape}"
            )
        if np.any(np.isnan(self.busy_until)):
            raise ValueError("busy_until entries must not be NaN")
        if np.any(self.busy_until < 0):
            raise ValueError("busy_until entries must be non-negative")
        n_masks = 1 << self.n_models
        for query in self.queries:
            if query.utilities.shape[0] != n_masks:
                raise ValueError(
                    f"query {query.query_id} has {query.utilities.shape[0]} "
                    f"utilities, expected {n_masks}"
                )

    @property
    def n_models(self) -> int:
        return int(self.latencies.shape[0])

    @property
    def n_queries(self) -> int:
        return len(self.queries)


def evaluate_schedule(
    instance: SchedulingInstance,
    decisions: Sequence[ScheduleDecision],
    order: Optional[Sequence[int]] = None,
) -> float:
    """Total reward of a schedule under the consistent-order execution
    model: queries are processed in ``decisions`` order (or ``order`` as
    indices into ``decisions``), each model runs its assigned tasks in
    that order, and a query earns its utility iff its completion time
    (max over assigned models) meets the deadline.

    Queries whose deadline is missed earn 0 (they are still executed —
    this evaluator is for comparing schedulers, and feasible schedulers
    never submit a missing query).
    """
    by_id = {q.query_id: q for q in instance.queries}
    times = instance.busy_until.copy()
    sequence = list(decisions) if order is None else [decisions[i] for i in order]
    total = 0.0
    for decision in sequence:
        query = by_id[decision.query_id]
        mask = decision.mask
        if mask == 0:
            continue
        completion = 0.0
        for k in range(instance.n_models):
            if (mask >> k) & 1:
                times[k] += instance.latencies[k]
                completion = max(completion, times[k])
        if instance.now + completion <= query.deadline + 1e-12:
            total += float(query.utilities[mask])
    return total
