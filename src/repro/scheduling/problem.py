"""Scheduling problem types (Section VI-A).

A scheduler sees the queries currently waiting in the buffer, each with
an absolute deadline and a per-subset utility row (from the accuracy
profiler), plus the per-model inference times and each model's remaining
busy time. It returns a subset mask per query and the processing order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.scheduling.subsets import MaskTables, mask_tables


@dataclass
class QueryRequest:
    """One pending query in the scheduling buffer.

    Attributes:
        query_id: Stable identifier (index into the serving run).
        arrival: Absolute arrival time (seconds).
        deadline: Absolute completion deadline (seconds).
        utilities: Reward per subset mask, shape ``(2**m,)``; entry 0
            (empty subset) must be 0.
        score: Estimated discrepancy score (used by SJF ordering).
        sample_index: Pool sample this query replays (serving detail).
    """

    query_id: int
    arrival: float
    deadline: float
    utilities: np.ndarray
    score: float = 0.0
    sample_index: int = -1
    _quantised: Dict[float, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self):
        self.utilities = np.asarray(self.utilities, dtype=float)
        if self.utilities.ndim != 1:
            raise ValueError(
                f"utilities must be 1-d, got shape {self.utilities.shape}"
            )
        if self.deadline < self.arrival:
            raise ValueError(
                f"deadline {self.deadline} precedes arrival {self.arrival}"
            )
        if abs(float(self.utilities[0])) > 1e-9:
            raise ValueError("utility of the empty subset must be 0")

    def quantised_utilities(self, step: float) -> np.ndarray:
        """``floor(utilities / step)`` memoised per step.

        A buffered policy re-plans the same queries many times while they
        wait (every idle tick re-floors the same reward rows); the cache
        lives on the request so overlapping buffers pay once per query,
        not once per ``schedule()`` call. The returned array is shared —
        callers must not mutate it.
        """
        key = float(step)
        cached = self._quantised.get(key)
        if cached is None:
            cached = np.floor(self.utilities / key).astype(np.int64)
            self._quantised[key] = cached
        return cached


@dataclass
class ScheduleDecision:
    """Chosen subset for one query; ``mask == 0`` rejects the query."""

    query_id: int
    mask: int

    def __post_init__(self):
        if self.mask < 0:
            raise ValueError(f"mask must be non-negative, got {self.mask}")


@dataclass
class ScheduleResult:
    """Scheduler output: decisions in processing order plus run stats.

    ``work_units`` measures how much work the scheduler did; the serving
    simulator converts it into scheduling overhead time
    (``overhead_base + overhead_per_unit * work_units``) so that very
    small δ (huge DP tables) pays its cost, as in Exp-4/Fig. 21.

    **Unified accounting rule** (shared by every scheduler so the same
    plan is charged the same overhead regardless of policy): one work
    unit is one *non-empty* candidate subset evaluated for
    feasibility/reward against one partial plan.

    * Greedy evaluates ``2**m - 1`` subsets per query.
    * The DP evaluates ``2**m - 1`` subsets per Pareto-frontier entry
      per table cell per query. The ``mask == 0`` (skip) continuation is
      free — it performs no feasibility work, exactly like greedy's
      implicit "reject" default.
    * Brute force charges each non-empty mask appearing in each
      enumerated assignment.

    (Historically the DP also charged the skip continuation, so DP-based
    policies paid ``2**m / (2**m - 1)``× more simulated overhead than
    greedy for identical candidate evaluations.)
    """

    decisions: List[ScheduleDecision]
    total_utility: float = 0.0
    work_units: int = 0

    def mask_for(self, query_id: int) -> int:
        for decision in self.decisions:
            if decision.query_id == query_id:
                return decision.mask
        raise KeyError(f"no decision for query {query_id}")


@dataclass
class SchedulingInstance:
    """A local scheduling subproblem (the buffer at one moment).

    Attributes:
        queries: Pending queries (any order; schedulers sort internally).
        latencies: Per-model inference times ``T_k``.
        busy_until: Per-model remaining execution time ``t_k^(0)``
            measured from ``now`` (0 for idle models). Under fault
            injection this is an *estimate* that may shrink between
            invocations (a crash revokes commitments) or be ``inf``
            (every worker for the model is down/undeployed) — schedulers
            must treat an ``inf`` entry as "no feasible subset uses this
            model", never as an error.
        now: Current absolute time.
    """

    queries: List[QueryRequest]
    latencies: np.ndarray
    busy_until: np.ndarray
    now: float = 0.0

    def __post_init__(self):
        self.latencies = np.asarray(self.latencies, dtype=float)
        self.busy_until = np.asarray(self.busy_until, dtype=float)
        if self.latencies.ndim != 1 or self.latencies.size == 0:
            raise ValueError("latencies must be a non-empty 1-d array")
        if np.any(self.latencies <= 0):
            raise ValueError("latencies must be positive")
        if self.busy_until.shape != self.latencies.shape:
            raise ValueError(
                f"busy_until shape {self.busy_until.shape} must match "
                f"latencies shape {self.latencies.shape}"
            )
        if np.any(np.isnan(self.busy_until)):
            raise ValueError("busy_until entries must not be NaN")
        if np.any(self.busy_until < 0):
            raise ValueError("busy_until entries must be non-negative")
        n_masks = 1 << self.n_models
        for query in self.queries:
            if query.utilities.shape[0] != n_masks:
                raise ValueError(
                    f"query {query.query_id} has {query.utilities.shape[0]} "
                    f"utilities, expected {n_masks}"
                )
        self._increments: Optional[np.ndarray] = None

    @property
    def n_models(self) -> int:
        return int(self.latencies.shape[0])

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    @property
    def masks(self) -> MaskTables:
        """Shared per-mask member tables (cached per ensemble size)."""
        return mask_tables(self.n_models)

    @property
    def mask_membership(self) -> np.ndarray:
        """Bool incidence matrix ``(2**m, m)``: mask j contains model k."""
        return self.masks.membership

    @property
    def mask_increments(self) -> np.ndarray:
        """Float ``(2**m, m)``: per-mask finish-time increments
        (``latencies[k]`` for members, exactly 0.0 otherwise), computed
        once per instance and shared by every scheduler that runs on it."""
        if self._increments is None:
            self._increments = self.masks.increments(self.latencies)
        return self._increments

    def quantised_utilities(self, step: float) -> np.ndarray:
        """Stacked ``floor(utilities / step)`` rows, shape
        ``(n_queries, 2**m)``, in ``self.queries`` order. Rows come from
        each request's memoised :meth:`QueryRequest.quantised_utilities`,
        so queries that survive across buffer ticks are floored once."""
        if not self.queries:
            return np.zeros((0, 1 << self.n_models), dtype=np.int64)
        return np.stack(
            [q.quantised_utilities(step) for q in self.queries]
        )


def evaluate_schedule(
    instance: SchedulingInstance,
    decisions: Sequence[ScheduleDecision],
    order: Optional[Sequence[int]] = None,
) -> float:
    """Total reward of a schedule under the consistent-order execution
    model: queries are processed in ``decisions`` order (or ``order`` as
    indices into ``decisions``), each model runs its assigned tasks in
    that order, and a query earns its utility iff its completion time
    (max over assigned models) meets the deadline.

    Queries whose deadline is missed earn 0 (they are still executed —
    this evaluator is for comparing schedulers, and feasible schedulers
    never submit a missing query).
    """
    by_id = {q.query_id: q for q in instance.queries}
    times = instance.busy_until.copy()
    sequence = list(decisions) if order is None else [decisions[i] for i in order]
    total = 0.0
    for decision in sequence:
        query = by_id[decision.query_id]
        mask = decision.mask
        if mask == 0:
            continue
        completion = 0.0
        for k in range(instance.n_models):
            if (mask >> k) & 1:
                times[k] += instance.latencies[k]
                completion = max(completion, times[k])
        if instance.now + completion <= query.deadline + 1e-12:
            total += float(query.utilities[mask])
    return total
