"""Reference (pure-Python) DP scheduler — the semantic oracle.

This is Algorithm 1 in its original loop-per-candidate form, kept so the
vectorized :class:`~repro.scheduling.dp.DPScheduler` has something to be
*bit-exact* against: ``benchmarks/bench_sched_throughput.py`` and
``tests/scheduling/test_dp_vectorized.py`` assert decision-for-decision,
work-unit-for-work-unit equality between the two on randomized
instances. Keep the two files in lockstep — any semantic change lands
here first, in the readable form, then in the vectorized kernel.

Shared semantics (identical in both implementations):

* **Canonical candidate order.** A cell's candidates are sorted by
  ``(sum(finish_times), finish_times, parent_rank, mask)`` before
  dominance pruning, and the frontier cap keeps the first
  ``max_solutions_per_cell`` survivors of that order. ``parent_rank``
  is the extended entry's position in the previous table flattened in
  ascending-cell order — a total tie-break that both implementations
  compute for free (two candidates can easily share bit-identical
  finish times: any two plans running each model the same number of
  times do). This makes the frontier a pure function of the candidate
  *set*, independent of enumeration order — the property the
  vectorized path relies on.
* **Unified work units.** One unit per non-empty candidate subset per
  frontier entry per query; the skip continuation is free (see
  :class:`~repro.scheduling.problem.ScheduleResult`).
* **Unquantised tie-break.** The final plan comes from the cell with
  the largest quantised reward, but among that cell's frontier entries
  ties are broken by the *unquantised* total reward, then by
  ``sum(finish_times)``, then by canonical order — two plans that floor
  identically no longer hide the strictly better one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.scheduling.orders import edf_order
from repro.scheduling.problem import (
    ScheduleDecision,
    ScheduleResult,
    SchedulingInstance,
)
from repro.utils.validation import check_positive

# A table cell holds canonically-ordered Pareto-minimal
# (finish-times, choices) pairs; candidates additionally carry the
# (parent_rank, mask) tie-break keys.
_Solution = Tuple[Tuple[float, ...], Tuple[int, ...]]
_Candidate = Tuple[Tuple[float, ...], Tuple[int, ...], int, int]

_EPS = 1e-12


def _prune(candidates: List[_Candidate], cap: int) -> List[_Solution]:
    """Canonical order + dominance prune + frontier cap.

    Vector A dominates B when A is componentwise <= B (+eps): any
    continuation feasible from B is feasible from A at equal reward.
    Sorting by (sum, times, parent_rank, mask) first means a kept
    vector can only be dominated by an earlier kept one, so a single
    forward pass suffices; the cap keeps the first ``cap`` survivors.
    """
    candidates = sorted(
        candidates, key=lambda s: (sum(s[0]), s[0], s[2], s[3])
    )
    kept: List[_Solution] = []
    for times, choices, _, _ in candidates:
        dominated = False
        for kept_times, _ in kept:
            if all(kt <= t + _EPS for kt, t in zip(kept_times, times)):
                dominated = True
                break
        if not dominated:
            kept.append((times, choices))
            if len(kept) == cap:
                break
    return kept


class DPReferenceScheduler:
    """Pure-Python Algorithm 1 with quantisation step δ.

    Same constructor surface and identical output as
    :class:`~repro.scheduling.dp.DPScheduler`; roughly an order of
    magnitude slower on realistic buffers. Use the vectorized class in
    serving code — this one exists for parity tests, benchmarks and as
    executable documentation of the algorithm.

    Args:
        delta: Reward quantisation step (paper default 0.01). ``None``
            derives δ = ε/N per buffer as Theorem 3 prescribes.
        epsilon: Approximation target used when ``delta`` is None.
        max_solutions_per_cell: Cap on a cell's Pareto frontier (first
            entries in canonical order are kept).
    """

    name = "dp-reference"

    def __init__(
        self,
        delta: Optional[float] = 0.01,
        epsilon: float = 0.1,
        max_solutions_per_cell: int = 8,
    ):
        self.delta = None if delta is None else check_positive("delta", delta)
        self.epsilon = check_positive("epsilon", epsilon)
        if max_solutions_per_cell < 1:
            raise ValueError(
                f"max_solutions_per_cell must be >= 1, got "
                f"{max_solutions_per_cell}"
            )
        self.max_solutions_per_cell = max_solutions_per_cell

    def step_for(self, n_queries: int) -> float:
        """The quantisation step used for a buffer of ``n_queries``."""
        if self.delta is not None:
            return self.delta
        return self.epsilon / max(n_queries, 1)

    def schedule(self, instance: SchedulingInstance) -> ScheduleResult:
        """Solve the local subproblem; decisions come back in EDF order."""
        if instance.n_queries == 0:
            return ScheduleResult(decisions=[], total_utility=0.0, work_units=0)

        step = self.step_for(instance.n_queries)
        order = edf_order(instance.queries)
        queries = [instance.queries[i] for i in order]
        latencies = instance.latencies
        n_models = instance.n_models
        n_masks = 1 << n_models
        member_lists = instance.masks.members
        start = tuple(float(t) for t in instance.busy_until)

        table: Dict[int, List[_Solution]] = {0: [(start, ())]}
        work_units = 0
        for query in queries:
            relative_deadline = query.deadline - instance.now
            quantised = query.quantised_utilities(step)
            new_table: Dict[int, List[_Candidate]] = {}
            # Entries are ranked by their position in the table
            # flattened in ascending-cell order — the vectorized path's
            # flat row index — so the tie-break keys agree bit-exactly.
            rank = 0
            for u in sorted(table):
                for times, choices in table[u]:
                    # The skip continuation is free; every non-empty
                    # mask below is one work unit (unified accounting).
                    work_units += n_masks - 1
                    new_table.setdefault(u, []).append(
                        (times, choices + (0,), rank, 0)
                    )
                    for mask in range(1, n_masks):
                        new_times = list(times)
                        completion = 0.0
                        for k in member_lists[mask]:
                            new_times[k] += latencies[k]
                            if new_times[k] > completion:
                                completion = new_times[k]
                        if completion > relative_deadline + _EPS:
                            continue
                        du = int(quantised[mask])
                        new_table.setdefault(u + du, []).append(
                            (tuple(new_times), choices + (mask,), rank, mask)
                        )
                    rank += 1
            table = {
                u: _prune(candidates, self.max_solutions_per_cell)
                for u, candidates in new_table.items()
            }

        best_u = max(table)
        best_times, best_choices = None, None
        best_reward = best_span = 0.0
        for times, choices in table[best_u]:
            # Left-to-right sums so ties resolve identically to the
            # vectorized path's column accumulation.
            reward = sum(
                float(q.utilities[mask]) for q, mask in zip(queries, choices)
            )
            span = sum(times)
            if best_choices is None or reward > best_reward or (
                reward == best_reward and span < best_span
            ):
                best_times, best_choices = times, choices
                best_reward, best_span = reward, span
        decisions = [
            ScheduleDecision(query_id=query.query_id, mask=mask)
            for query, mask in zip(queries, best_choices)
        ]
        return ScheduleResult(
            decisions=decisions,
            total_utility=best_reward,
            work_units=work_units,
        )
