"""Learned fast-path scheduler: an O(buffer * models) policy distilled
from the DP oracle, with a predicted-regret DP fallback.

:class:`LearnedScheduler` serves the same ``schedule(instance)``
contract as the DP, but replaces the exponential table build with one
EDF rollout: for each query it predicts the per-model bit probabilities
from the features in :mod:`repro.scheduling.distill`, repairs the
predicted subset against the rolled-forward backlog (dropping the
least-confident member until the deadline is met), and commits. Cost is
``O(n * m)`` model evaluations plus ``O(m)`` repair steps per query —
no ``2**m`` table, so step time at buffer >= 64 with 6 models drops
from tens of seconds to milliseconds (``BENCH_policy.json``).

Quality is insured by the **predicted-regret gate**: the artifact also
carries a regressor trained on ``oracle - policy`` utility gaps; when
the estimated gap for the current buffer reaches
``regret_threshold``, the scheduler throws the plan away and runs the
exact DP instead, so worst-case quality is DP quality. With
``regret_threshold <= 0`` the rollout is skipped entirely and every
invocation is exact DP — the result object is the fallback's verbatim
(same decisions, utility *and* work units), so a threshold-0 serving
run is bit-identical to an all-DP run.

:class:`PolicyModel` is the frozen artifact: the chosen mask-bit model
(per-bit GBDT heads or a multi-output MLP), the regret regressor, the
locked feature schemas and training metadata, JSON-serialized with
``save()``/``load()`` so a distilled policy outlives the process that
trained it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.scheduling.distill import (
    REGRET_FEATURE_NAMES,
    _BitsGBDT,
    _BitsMLP,
    feature_names,
    query_features,
    regret_features,
)
from repro.scheduling.dp import DPScheduler
from repro.scheduling.orders import edf_order
from repro.scheduling.problem import (
    ScheduleDecision,
    ScheduleResult,
    SchedulingInstance,
)
from repro.trees.decision_tree import DecisionTreeRegressor, _Node
from repro.trees.gbdt import GradientBoostingRegressor

__all__ = ["PolicyModel", "LearnedScheduler", "rollout_plan"]

_EPS = 1e-12

_SCHEMA = "repro.policy_model.v1"


# --- artifact serialization ----------------------------------------------

def _node_to_dict(node: _Node) -> Dict[str, object]:
    if node.is_leaf:
        return {"v": node.value}
    return {
        "f": node.feature,
        "t": node.threshold,
        "l": _node_to_dict(node.left),
        "r": _node_to_dict(node.right),
    }


def _node_from_dict(state: Dict[str, object]) -> _Node:
    if "v" in state:
        return _Node(value=float(state["v"]))
    return _Node(
        feature=int(state["f"]),
        threshold=float(state["t"]),
        left=_node_from_dict(state["l"]),
        right=_node_from_dict(state["r"]),
    )


def _tree_to_dict(tree: DecisionTreeRegressor) -> Dict[str, object]:
    return {
        "n_features": tree.n_features_,
        "root": _node_to_dict(tree._root),
    }


def _tree_from_dict(state: Dict[str, object]) -> DecisionTreeRegressor:
    tree = DecisionTreeRegressor()
    tree.n_features_ = int(state["n_features"])
    tree._root = _node_from_dict(state["root"])
    return tree


def _gbr_to_dict(model: GradientBoostingRegressor) -> Dict[str, object]:
    return {
        "base": model._base,
        "learning_rate": model.learning_rate,
        "trees": [_tree_to_dict(tree) for tree in model._trees],
    }


def _gbr_from_dict(state: Dict[str, object]) -> GradientBoostingRegressor:
    model = GradientBoostingRegressor(
        n_estimators=max(1, len(state["trees"])),
        learning_rate=float(state["learning_rate"]),
    )
    model._base = float(state["base"])
    model._trees = [_tree_from_dict(t) for t in state["trees"]]
    return model


def _bits_model_to_dict(bits_model) -> Dict[str, object]:
    if bits_model.kind == "gbdt":
        return {
            "kind": "gbdt",
            "models": [_gbr_to_dict(m) for m in bits_model.models],
        }
    if bits_model.kind == "mlp":
        params = bits_model.model.network.parameters()
        # Parameters alternate (weight, bias) per Dense layer in forward
        # order; the hidden widths are every weight's output dim but the
        # last.
        weights = [p.value for p in params if p.value.ndim == 2]
        return {
            "kind": "mlp",
            "in_features": bits_model.model.in_features,
            "out_features": bits_model.model.out_features,
            "hidden": [int(w.shape[1]) for w in weights[:-1]],
            "params": [p.value.tolist() for p in params],
        }
    raise ValueError(f"unknown bits model kind {bits_model.kind!r}")


def _bits_model_from_dict(state: Dict[str, object]):
    kind = state["kind"]
    if kind == "gbdt":
        return _BitsGBDT([_gbr_from_dict(m) for m in state["models"]])
    if kind == "mlp":
        from repro.nn.models import MLPRegressor

        model = MLPRegressor(
            in_features=int(state["in_features"]),
            out_features=int(state["out_features"]),
            hidden=tuple(int(h) for h in state["hidden"]),
            dropout=0.0,
            seed=0,
        )
        params = model.network.parameters()
        saved = state["params"]
        if len(params) != len(saved):
            raise ValueError(
                f"artifact has {len(saved)} parameter tensors, network "
                f"expects {len(params)}"
            )
        for parameter, value in zip(params, saved):
            value = np.asarray(value, dtype=float)
            if value.shape != parameter.value.shape:
                raise ValueError(
                    f"parameter shape mismatch: artifact {value.shape} vs "
                    f"network {parameter.value.shape}"
                )
            parameter.value = value
            parameter.grad = np.zeros_like(value)
        wrapped = _BitsMLP(model)
        return wrapped
    raise ValueError(f"unknown bits model kind {kind!r}")


@dataclass
class PolicyModel:
    """Frozen learned-scheduler artifact (see module docstring).

    Attributes:
        n_models: Ensemble size the policy was trained for; instances
            of any other size always fall back to the DP.
        feature_names: Locked per-query feature schema
            (:func:`repro.scheduling.distill.feature_names`).
        regret_feature_names: Locked instance-level schema of the
            regret gate.
        bits_model: Per-model bit-probability model (GBDT heads or MLP).
        regret_model: Regressor estimating ``oracle - policy`` utility
            gap from :func:`~repro.scheduling.distill.regret_features`.
        metadata: Training provenance (round/row counts, validation
            accuracy per candidate, chosen kind, regret stats).
    """

    n_models: int
    feature_names: List[str]
    regret_feature_names: List[str]
    bits_model: object
    regret_model: GradientBoostingRegressor
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        expected = feature_names(self.n_models)
        if list(self.feature_names) != expected:
            raise ValueError(
                f"feature_names do not match the locked schema for "
                f"{self.n_models} models: {self.feature_names} != {expected}"
            )
        if list(self.regret_feature_names) != list(REGRET_FEATURE_NAMES):
            raise ValueError(
                "regret_feature_names do not match the locked schema"
            )

    @property
    def kind(self) -> str:
        return self.bits_model.kind

    def predict_bits(self, X: np.ndarray) -> np.ndarray:
        """Per-model selection probabilities, shape ``(n, n_models)``."""
        return self.bits_model.predict_bits(X)

    def predict_regret(self, features: np.ndarray) -> float:
        """Estimated utility gap vs the DP (clamped to >= 0)."""
        value = float(
            self.regret_model.predict(
                np.asarray(features, dtype=float)[None, :]
            )[0]
        )
        return max(0.0, value)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": _SCHEMA,
            "n_models": self.n_models,
            "feature_names": list(self.feature_names),
            "regret_feature_names": list(self.regret_feature_names),
            "bits_model": _bits_model_to_dict(self.bits_model),
            "regret_model": _gbr_to_dict(self.regret_model),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "PolicyModel":
        if state.get("schema") != _SCHEMA:
            raise ValueError(
                f"not a policy model artifact (schema "
                f"{state.get('schema')!r}, expected {_SCHEMA!r})"
            )
        return cls(
            n_models=int(state["n_models"]),
            feature_names=list(state["feature_names"]),
            regret_feature_names=list(state["regret_feature_names"]),
            bits_model=_bits_model_from_dict(state["bits_model"]),
            regret_model=_gbr_from_dict(state["regret_model"]),
            metadata=dict(state.get("metadata", {})),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact as JSON (parent dirs are created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PolicyModel":
        """Load an artifact written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


# --- serve-time rollout --------------------------------------------------

def rollout_plan(
    bits_model, instance: SchedulingInstance
) -> Tuple[List[ScheduleDecision], float, int]:
    """One EDF pass of the learned policy over ``instance``.

    Returns ``(decisions, total_utility, work_units)`` with decisions in
    EDF order (the DP's result order). Work units follow the unified
    accounting rule: one unit per non-empty candidate subset evaluated
    for feasibility — the predicted mask plus each repair step, at most
    ``n_models`` per query; the skip is free.

    The repair loop first removes members that cannot individually meet
    the deadline (including downed models with infinite backlog), then
    drops the lowest-probability member until the subset's completion
    time fits the deadline. A surviving subset with zero reward is
    demoted to a skip — running it would burn capacity for nothing,
    which the oracle never does.
    """
    n = instance.n_queries
    if n == 0:
        return [], 0.0, 0
    order = edf_order(instance.queries)
    latencies = instance.latencies
    m = latencies.shape[0]
    model_indices = np.arange(m)
    busy = instance.busy_until.astype(float, copy=True)
    decisions: List[ScheduleDecision] = []
    total = 0.0
    units = 0
    for position, qi in enumerate(order):
        query = instance.queries[qi]
        slack = query.deadline - instance.now
        probs = bits_model.predict_bits(
            query_features(
                query.score, slack, position, n, busy, latencies
            )[None, :]
        )[0]
        selected = probs > 0.5
        # Members that can never finish in time alone can never be in
        # a feasible subset (completion is a max over members).
        selected &= busy + latencies <= slack + _EPS
        mask = 0
        if np.any(selected):
            units += 1
            while True:
                completion = float((busy + latencies)[selected].max())
                if completion <= slack + _EPS:
                    break
                drop = model_indices[selected][
                    int(np.argmin(probs[selected]))
                ]
                selected[drop] = False
                if not np.any(selected):
                    break
                units += 1
            if np.any(selected):
                mask = int(np.sum(1 << model_indices[selected]))
        if mask and float(query.utilities[mask]) <= _EPS:
            mask = 0
        if mask:
            busy = busy + np.where(selected, latencies, 0.0)
            total += float(query.utilities[mask])
        decisions.append(
            ScheduleDecision(query_id=query.query_id, mask=mask)
        )
    return decisions, total, units


class LearnedScheduler:
    """Drop-in scheduler serving the distilled policy with a DP safety
    net (see module docstring).

    Args:
        model: Frozen :class:`PolicyModel` artifact.
        regret_threshold: Estimated utility gap (same units as query
            utilities, summed over the buffer) at which a plan is
            discarded for the exact DP. ``<= 0`` disables the fast path
            entirely: every call is exact DP and returns the fallback's
            result verbatim. ``inf`` disables the gate (pure policy,
            structural fallbacks only).
        fallback: The exact scheduler to fall back to (default: a
            :class:`~repro.scheduling.dp.DPScheduler` with its default
            quantisation) — use the same δ as the all-DP baseline for
            threshold-0 bit-exactness.

    Counters (read by the server's ``sched_fallback`` span and the CI
    smoke): ``invocations``, ``fallbacks``, ``last_used_fallback``,
    ``last_predicted_regret``. The explain/profile hooks
    (``collect_stats`` / ``profile`` / ``last_stats`` /
    ``last_phase_wall``) delegate to the fallback DP, so explained or
    profiled runs keep working — fast-path invocations simply expose no
    DP frontier stats.
    """

    name = "learned"

    def __init__(
        self,
        model: PolicyModel,
        regret_threshold: float = 0.5,
        fallback: Optional[DPScheduler] = None,
    ):
        if not isinstance(model, PolicyModel):
            raise TypeError(
                f"model must be a PolicyModel, got {type(model).__name__}"
            )
        self.model = model
        self.regret_threshold = float(regret_threshold)
        self.fallback = fallback if fallback is not None else DPScheduler()
        self.invocations = 0
        self.fallbacks = 0
        self.last_used_fallback = False
        self.last_predicted_regret = 0.0

    # Explain/profile hooks delegate to the fallback DP so the server's
    # hasattr-based opt-ins see one coherent scheduler.
    @property
    def collect_stats(self) -> bool:
        return self.fallback.collect_stats

    @collect_stats.setter
    def collect_stats(self, value: bool) -> None:
        self.fallback.collect_stats = bool(value)

    @property
    def profile(self) -> bool:
        return self.fallback.profile

    @profile.setter
    def profile(self, value: bool) -> None:
        self.fallback.profile = bool(value)

    @property
    def last_stats(self):
        """DP frontier stats when the last call fell back, else None."""
        return self.fallback.last_stats if self.last_used_fallback else None

    @property
    def last_phase_wall(self):
        return (
            self.fallback.last_phase_wall
            if self.last_used_fallback else None
        )

    @property
    def fallback_rate(self) -> float:
        """Fraction of invocations served by the exact DP."""
        if self.invocations == 0:
            return 0.0
        return self.fallbacks / self.invocations

    def _fall_back(
        self, instance: SchedulingInstance, extra_units: int
    ) -> ScheduleResult:
        self.fallbacks += 1
        self.last_used_fallback = True
        result = self.fallback.schedule(instance)
        if extra_units:
            # The abandoned rollout's candidate evaluations still
            # happened; charge them on top of the DP's own work.
            return ScheduleResult(
                decisions=result.decisions,
                total_utility=result.total_utility,
                work_units=result.work_units + extra_units,
            )
        # Verbatim result: at threshold <= 0 the whole run must be
        # bit-identical to an all-DP run, including work units.
        return result

    def schedule(self, instance: SchedulingInstance) -> ScheduleResult:
        """Fast-path plan, or the exact DP when the gate fires."""
        self.invocations += 1
        self.last_used_fallback = False
        self.last_predicted_regret = 0.0
        if (
            self.regret_threshold <= 0.0
            or instance.n_models != self.model.n_models
        ):
            return self._fall_back(instance, extra_units=0)
        decisions, total, units = rollout_plan(self.model, instance)
        estimate = self.model.predict_regret(
            regret_features(instance, total)
        )
        self.last_predicted_regret = estimate
        if estimate >= self.regret_threshold:
            return self._fall_back(instance, extra_units=units)
        return ScheduleResult(
            decisions=decisions, total_utility=total, work_units=units
        )
