"""Offline budgeted ensemble selection (appendix Exp-4 / Fig. 16)."""

from repro.offline.budget import (
    budgeted_selection,
    budget_accuracy_curve,
    random_selection,
)

__all__ = [
    "budgeted_selection",
    "budget_accuracy_curve",
    "random_selection",
]
