"""Budget-constrained subset selection on offline datasets.

The appendix's Exp-4 compares difficulty measurements in the setting
prior work optimises: pick a model subset per sample to maximise total
accuracy under a *cumulative runtime* budget (no arrivals, no queues).
``Schemble*`` solves it with the profiled utility rows; the paper notes
the relaxation is solvable by linear programming — with per-sample
independent choices and a single budget constraint, the Lagrangian
(bisection on the runtime price) recovers that solution.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.scheduling.subsets import iter_masks, mask_members
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive


def mask_costs(latencies: Sequence[float]) -> np.ndarray:
    """Cumulative runtime of each subset: the *sum* of member latencies
    (offline execution occupies each model for its full inference)."""
    latencies = np.asarray(latencies, dtype=float)
    m = latencies.shape[0]
    costs = np.zeros(1 << m)
    for mask in iter_masks(m):
        costs[mask] = sum(latencies[k] for k in mask_members(mask))
    return costs


def _select_at_price(
    utilities: np.ndarray, costs: np.ndarray, price: float
) -> np.ndarray:
    """Per-sample argmax of ``U - price * cost`` (empty mask allowed)."""
    scores = utilities - price * costs[None, :]
    return np.argmax(scores, axis=1)


def budgeted_selection(
    utilities: np.ndarray,
    latencies: Sequence[float],
    budget: float,
    tolerance: float = 1e-4,
    max_iter: int = 60,
) -> Tuple[np.ndarray, float]:
    """Choose a subset per sample maximising utility within the budget.

    Args:
        utilities: ``(n, 2**m)`` per-sample subset utilities.
        latencies: Per-model runtimes.
        budget: Total runtime budget (same unit as latencies x samples).

    Returns:
        ``(masks, spent)`` — chosen mask per sample and total runtime.
    """
    check_positive("budget", budget)
    utilities = np.asarray(utilities, dtype=float)
    costs = mask_costs(latencies)

    masks = _select_at_price(utilities, costs, 0.0)
    if costs[masks].sum() <= budget:
        return masks, float(costs[masks].sum())

    # Bisect the runtime price until the spend meets the budget.
    low, high = 0.0, float(utilities.max() / max(costs[costs > 0].min(), 1e-9))
    for _ in range(max_iter):
        mid = 0.5 * (low + high)
        masks = _select_at_price(utilities, costs, mid)
        spent = costs[masks].sum()
        if spent > budget:
            low = mid
        else:
            high = mid
        if abs(spent - budget) <= tolerance * budget:
            break
    masks = _select_at_price(utilities, costs, high)
    return masks, float(costs[masks].sum())


def random_selection(
    n_samples: int,
    latencies: Sequence[float],
    budget: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Random baseline: add random model executions until budget is met."""
    check_positive("budget", budget)
    rng = as_rng(seed)
    m = len(latencies)
    masks = np.zeros(n_samples, dtype=int)
    spent = 0.0
    order = rng.permutation(n_samples * m)
    for flat in order:
        sample, model = divmod(int(flat), m)
        if masks[sample] >> model & 1:
            continue
        cost = float(latencies[model])
        if spent + cost > budget:
            break
        masks[sample] |= 1 << model
        spent += cost
    # Every sample executes at least the cheapest model so that each one
    # returns *some* answer (matching the paper's offline protocol).
    cheapest = int(np.argmin(latencies))
    masks[masks == 0] = 1 << cheapest
    return masks


def budget_accuracy_curve(
    utilities: np.ndarray,
    quality: np.ndarray,
    latencies: Sequence[float],
    budgets: Sequence[float],
) -> Dict[float, float]:
    """Accuracy achieved by Schemble*-style selection at each budget.

    ``utilities`` drives the selection (it may come from predicted,
    oracle or ensemble-agreement scores); ``quality`` scores the outcome.
    """
    quality = np.asarray(quality, dtype=float)
    results: Dict[float, float] = {}
    for budget in budgets:
        masks, _ = budgeted_selection(utilities, latencies, budget)
        picked = quality[np.arange(quality.shape[0]), masks]
        results[float(budget)] = float(picked.mean())
    return results
