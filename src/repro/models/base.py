"""Base-model abstraction wrapping trained predictors with cost profiles."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.calibration import TemperatureScaling
from repro.models.profiles import ModelProfile


class BaseModel:
    """One deployable base model of a deep ensemble.

    A base model couples a predictor with its serving cost profile and an
    optional *feature view*. The view (a fixed subset of input columns)
    is how we reproduce architectural heterogeneity: real base models
    attend to different aspects of the input, so their errors are only
    partially correlated — the property ensembling (and Schemble's
    redundancy analysis) relies on.
    """

    def __init__(
        self,
        profile: ModelProfile,
        feature_indices: Optional[np.ndarray] = None,
    ):
        self.profile = profile
        self.feature_indices = (
            None
            if feature_indices is None
            else np.asarray(feature_indices, dtype=int)
        )
        self.calibration: Optional[TemperatureScaling] = None

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def latency(self) -> float:
        return self.profile.latency

    @property
    def memory(self) -> float:
        return self.profile.memory

    def view(self, features: np.ndarray) -> np.ndarray:
        """Apply this model's feature view."""
        features = np.asarray(features, dtype=float)
        if self.feature_indices is None:
            return features
        return features[:, self.feature_indices]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Model output for raw dataset features.

        Classification models return a probability matrix ``(n, k)``
        (calibrated if a calibration has been fit); regression models
        return ``(n, k)`` real outputs.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class TrainedModel(BaseModel):
    """A base model backed by a trained numpy network (or tree model).

    ``predictor`` must expose ``predict_proba`` for classification tasks
    or ``predict`` for regression; ``task`` selects which is used.

    ``sharpen`` (< 1) raises classifier confidence by scaling log-probs,
    emulating the overconfidence of real deep networks (Guo et al.): a
    deep model near a decision boundary does not hedge toward uniform —
    it commits to a side, confidently. That per-sample overconfident
    *disagreement* between members on ambiguous inputs is exactly the
    structure the discrepancy score measures, and a global temperature
    calibration fit afterwards cannot (and should not) undo it.
    """

    def __init__(
        self,
        profile: ModelProfile,
        predictor,
        task: str,
        feature_indices: Optional[np.ndarray] = None,
        sharpen: float = 1.0,
    ):
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        if sharpen <= 0:
            raise ValueError(f"sharpen must be > 0, got {sharpen}")
        super().__init__(profile, feature_indices)
        self.predictor = predictor
        self.task = task
        self.sharpen = float(sharpen)

    def predict(self, features: np.ndarray) -> np.ndarray:
        viewed = self.view(features)
        if self.task == "classification":
            probs = self.predictor.predict_proba(viewed)
            if self.sharpen != 1.0:
                logp = np.log(np.clip(probs, 1e-12, None)) / self.sharpen
                shifted = np.exp(logp - logp.max(axis=1, keepdims=True))
                probs = shifted / shifted.sum(axis=1, keepdims=True)
            if self.calibration is not None:
                probs = self.calibration.transform(probs)
            return probs
        output = self.predictor.predict(viewed)
        output = np.asarray(output, dtype=float)
        if output.ndim == 1:
            output = output[:, None]
        return output

    def fit_calibration(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "TrainedModel":
        """Fit temperature scaling on held-out data (classification only).

        Section V-A applies temperature scaling so that heterogeneous
        base models' output distributions are comparable before
        divergence computation.
        """
        if self.task != "classification":
            raise ValueError("calibration only applies to classification models")
        probs = self.predictor.predict_proba(self.view(features))
        self.calibration = TemperatureScaling().fit(probs, labels)
        return self
