"""Precomputed per-model outputs for a fixed query pool.

Serving experiments replay a pool of test samples through the simulator
thousands of times (one per baseline per deadline setting). Computing
every model's output for every pool sample once and replaying lookups
keeps the experiments deterministic and fast, and it mirrors the paper's
methodology of recording historical inference results at low cost
(Section V-A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


class PredictionTable:
    """Outputs of every base model (and the full ensemble) on a pool.

    Attributes:
        model_names: Base model names in deployment order.
        outputs: ``model name -> (n, k)`` output array.
        ensemble_output: ``(n, k)`` full-ensemble output.
        n_samples: Pool size.
    """

    def __init__(
        self,
        model_names: Sequence[str],
        outputs: Dict[str, np.ndarray],
        ensemble_output: np.ndarray,
    ):
        self.model_names: List[str] = list(model_names)
        if not self.model_names:
            raise ValueError("need at least one model")
        missing = [m for m in self.model_names if m not in outputs]
        if missing:
            raise ValueError(f"outputs missing for models {missing}")
        sizes = {outputs[m].shape[0] for m in self.model_names}
        sizes.add(np.asarray(ensemble_output).shape[0])
        if len(sizes) != 1:
            raise ValueError(f"inconsistent sample counts across outputs: {sizes}")
        self.outputs = {m: np.asarray(outputs[m], dtype=float) for m in self.model_names}
        self.ensemble_output = np.asarray(ensemble_output, dtype=float)
        self.n_samples = int(self.ensemble_output.shape[0])

    @property
    def n_models(self) -> int:
        return len(self.model_names)

    def model_output(self, model: str, sample: int) -> np.ndarray:
        """Output of one model on one pool sample."""
        return self.outputs[model][sample]

    def stacked(self, samples: Optional[np.ndarray] = None) -> np.ndarray:
        """Outputs stacked to ``(n_models, n, k)`` (optionally row-subset)."""
        arrays = [self.outputs[m] for m in self.model_names]
        stacked = np.stack(arrays, axis=0)
        if samples is not None:
            stacked = stacked[:, np.asarray(samples, dtype=int)]
        return stacked

    @classmethod
    def from_models(cls, models: Sequence, features: np.ndarray, ensemble) -> "PredictionTable":
        """Run every model (and the ensemble aggregation) over ``features``."""
        outputs = {model.name: model.predict(features) for model in models}
        member_list = [outputs[model.name] for model in models]
        ensemble_output = ensemble.aggregate(member_list)
        return cls([m.name for m in models], outputs, ensemble_output)
