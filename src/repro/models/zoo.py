"""Builders assembling the paper's three application ensembles.

Heterogeneity between base models — different accuracy, latency and
error patterns — is what gives the discrepancy score its signal, so each
builder varies capacity, feature view and random seed per model, in the
spirit of the paper's BiLSTM/RoBERTa/BERT (text), EfficientDet/YOLOv5/
YOLOX (video) and DELG-R50/R101 (retrieval) line-ups.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.base import Dataset
from repro.ensemble.aggregation import MajorityVote, Stacking, WeightedAverage
from repro.ensemble.ensemble import DeepEnsemble
from repro.models.base import TrainedModel
from repro.models.profiles import (
    IMAGE_RETRIEVAL_PROFILES,
    TEXT_MATCHING_PROFILES,
    VEHICLE_COUNTING_PROFILES,
    ModelProfile,
)
from repro.nn.models import MLPClassifier, MLPRegressor
from repro.trees.gbdt import GradientBoostingClassifier
from repro.utils.rng import SeedLike, spawn_rngs


def _feature_view(
    n_features: int, keep_fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """A fixed random subset of feature columns for one model."""
    keep = max(2, int(round(keep_fraction * n_features)))
    return np.sort(rng.choice(n_features, size=min(keep, n_features), replace=False))


def build_text_matching_ensemble(
    train: Dataset,
    calibration: Optional[Dataset] = None,
    aggregation: str = "stacking",
    epochs: int = 25,
    seed: SeedLike = 0,
) -> DeepEnsemble:
    """Three heterogeneous matching classifiers + a boosted-tree stacker.

    Mirrors the paper's production ensemble: a fast low-capacity model
    ("BiLSTM") and two slower high-capacity ones ("RoBERTa", "BERT"),
    aggregated by XGBoost-style stacking.
    """
    if train.task != "classification":
        raise ValueError("text matching ensemble needs a classification dataset")
    rngs = spawn_rngs(seed if isinstance(seed, int) else None, 4)
    n_features = train.features.shape[1]

    configs = [
        # (profile, hidden sizes, feature keep fraction, epochs scale).
        # Heterogeneity comes from capacity, seed and bagging — not
        # feature starvation: a model blinded to the informative columns
        # becomes uniformly uncertain, and its distance-to-ensemble then
        # tracks the ensemble's confidence instead of sample difficulty.
        # The paper's base models are close in accuracy (80.9 / 85.5 /
        # 87.1 on the Q&A data) but far apart in latency; capacity
        # differences here mirror that mild accuracy spread. Sharpening
        # (last field) emulates deep-net overconfidence — see
        # TrainedModel.
        (TEXT_MATCHING_PROFILES[0], (16,), 1.0, 0.30),
        (TEXT_MATCHING_PROFILES[1], (24, 12), 1.0, 0.35),
        (TEXT_MATCHING_PROFILES[2], (32, 16), 1.0, 0.40),
    ]
    models = []
    for (profile, hidden, keep, sharpen), rng in zip(configs, rngs[:3]):
        view = _feature_view(n_features, keep, rng)
        # Bagging: each member trains on its own bootstrap subsample, so
        # members land on different sides of genuinely ambiguous samples
        # — the decorrelation the discrepancy score measures. The 60%
        # bags keep any single member from predicting the ensemble.
        bag = rng.choice(len(train.labels), size=int(0.6 * len(train.labels)),
                         replace=False)
        clf = MLPClassifier(
            in_features=view.shape[0],
            num_classes=train.num_classes,
            hidden=hidden,
            epochs=epochs,
            seed=rng,
        )
        clf.fit(train.features[bag][:, view], train.labels[bag])
        model = TrainedModel(
            profile, clf, "classification",
            feature_indices=view, sharpen=sharpen,
        )
        if calibration is not None:
            model.fit_calibration(calibration.features, calibration.labels)
        models.append(model)

    # The aggregator is fit on held-out data (the calibration split when
    # available): fitting it on the members' own training data would let
    # the meta-learner latch onto whichever member overfit hardest.
    holdout = calibration if calibration is not None else train
    aggregator = _make_classification_aggregator(aggregation, models, holdout)
    return DeepEnsemble(models, aggregator, task="classification")


def _make_classification_aggregator(
    aggregation: str,
    models: Sequence[TrainedModel],
    holdout: Dataset,
):
    if aggregation == "average":
        weights = [_validation_accuracy(m, holdout) for m in models]
        return WeightedAverage(weights)
    if aggregation == "vote":
        return MajorityVote()
    if aggregation == "stacking":
        meta = GradientBoostingClassifier(
            n_estimators=12, learning_rate=0.3, max_depth=2
        )
        stacker = Stacking(meta, task="classification")
        member_outputs = [m.predict(holdout.features) for m in models]
        stacker.fit(member_outputs, holdout.labels)
        return stacker
    raise ValueError(f"unknown aggregation {aggregation!r}")


def _validation_accuracy(model: TrainedModel, data: Dataset) -> float:
    probs = model.predict(data.features)
    return float((probs.argmax(axis=1) == data.labels).mean())


def build_vehicle_counting_ensemble(
    train: Dataset,
    epochs: int = 25,
    seed: SeedLike = 0,
) -> DeepEnsemble:
    """Three heterogeneous count regressors with weighted averaging."""
    if train.task != "regression":
        raise ValueError("vehicle counting ensemble needs a regression dataset")
    rngs = spawn_rngs(seed if isinstance(seed, int) else None, 3)
    n_features = train.features.shape[1]
    targets = train.labels

    configs = [
        (VEHICLE_COUNTING_PROFILES[0], (24, 12), 0.85),
        (VEHICLE_COUNTING_PROFILES[1], (32, 16), 0.95),
        (VEHICLE_COUNTING_PROFILES[2], (48, 24), 1.0),
    ]
    models = []
    errors = []
    for (profile, hidden, keep), rng in zip(configs, rngs):
        view = _feature_view(n_features, keep, rng)
        reg = MLPRegressor(
            in_features=view.shape[0],
            out_features=targets.shape[1],
            hidden=hidden,
            lr=3e-3,
            epochs=max(epochs, 15),
            seed=rng,
        )
        reg.fit(train.features[:, view], targets)
        models.append(
            TrainedModel(profile, reg, "regression", feature_indices=view)
        )
        residual = reg.predict(train.features[:, view]) - targets
        errors.append(float(np.mean(residual**2)))

    # Inverse-RMSE weights keep weaker models contributing; raw inverse
    # MSE would collapse the ensemble onto its single best member.
    weights = [1.0 / np.sqrt(max(err, 1e-6)) for err in errors]
    return DeepEnsemble(models, WeightedAverage(weights), task="regression")


def build_image_retrieval_ensemble(
    train: Dataset,
    epochs: int = 25,
    seed: SeedLike = 0,
) -> DeepEnsemble:
    """Two embedding regressors (DELG-R50 / DELG-R101 stand-ins)."""
    if train.task != "retrieval":
        raise ValueError("image retrieval ensemble needs a retrieval dataset")
    rngs = spawn_rngs(seed if isinstance(seed, int) else None, 2)
    n_features = train.features.shape[1]
    embeddings = train.labels

    # Partial feature views + bagging give the two backbones genuinely
    # complementary errors, so the ensemble beats either member by a
    # real margin (the paper's DELG pair has the same structure: static
    # single-model serving loses ~4 mAP points to Schemble).
    configs = [
        (IMAGE_RETRIEVAL_PROFILES[0], (24, 12), 0.70),
        (IMAGE_RETRIEVAL_PROFILES[1], (48, 24), 0.80),
    ]
    models = []
    errors = []
    for (profile, hidden, keep), rng in zip(configs, rngs):
        view = _feature_view(n_features, keep, rng)
        bag = rng.choice(len(train.labels), size=int(0.7 * len(train.labels)),
                        replace=False)
        # Embedding regression needs more optimisation than the other
        # tasks' heads; a floor on epochs keeps small presets usable.
        reg = MLPRegressor(
            in_features=view.shape[0],
            out_features=embeddings.shape[1],
            hidden=hidden,
            lr=3e-3,
            epochs=max(epochs, 20),
            seed=rng,
        )
        reg.fit(train.features[bag][:, view], embeddings[bag])
        models.append(
            TrainedModel(profile, reg, "regression", feature_indices=view)
        )
        residual = reg.predict(train.features[:, view]) - embeddings
        errors.append(float(np.mean(residual**2)))

    weights = [1.0 / max(err, 1e-6) for err in errors]
    # Retrieval is served as embedding regression; mAP is computed
    # downstream from the aggregated embedding.
    return DeepEnsemble(models, WeightedAverage(weights), task="regression")


CIFAR_ARCHITECTURES: Tuple[Tuple[str, Tuple[int, ...], float], ...] = (
    ("VGG16", (64, 32), 0.8),
    ("ResNet18", (32, 32), 0.7),
    ("ResNet101", (96, 48), 1.0),
    ("DenseNet121", (48, 48, 24), 0.9),
    ("InceptionV3", (72, 24), 0.85),
    ("ResNeXt50", (56, 28), 0.75),
)


def build_cifar_like_models(
    train: Dataset,
    architectures: Sequence[Tuple[str, Tuple[int, ...], float]] = CIFAR_ARCHITECTURES,
    epochs: int = 20,
    seed: SeedLike = 0,
) -> DeepEnsemble:
    """Six classifiers named after the paper's Fig. 5 architectures.

    Passing a different ``seed`` retrains every architecture with fresh
    initialisation and feature views — the "same architecture, different
    random seed" axis of the preference-variance study.
    """
    if train.task != "classification":
        raise ValueError("cifar-like models need a classification dataset")
    rngs = spawn_rngs(seed if isinstance(seed, int) else None, len(architectures))
    n_features = train.features.shape[1]
    models = []
    for (name, hidden, keep), rng in zip(architectures, rngs):
        view = _feature_view(n_features, keep, rng)
        clf = MLPClassifier(
            in_features=view.shape[0],
            num_classes=train.num_classes,
            hidden=hidden,
            epochs=epochs,
            seed=rng,
        )
        clf.fit(train.features[:, view], train.labels)
        profile = ModelProfile(name, latency=0.05, memory=800.0)
        models.append(
            TrainedModel(profile, clf, "classification", feature_indices=view)
        )
    return DeepEnsemble(models, WeightedAverage(), task="classification")
