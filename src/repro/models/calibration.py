"""Temperature scaling (Guo et al., 2017).

Deep networks are poorly calibrated: the confidence of the predicted
class does not match its correctness likelihood, and the mismatch
differs per architecture. The paper applies temperature scaling to every
classifier before computing divergences (Section V-A) so that the
discrepancy score is not dominated by one model's over-confidence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import one_hot, softmax


def expected_calibration_error(
    probs: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: confidence-weighted gap between accuracy and confidence."""
    probs = np.asarray(probs, dtype=float)
    labels = np.asarray(labels, dtype=int)
    confidence = probs.max(axis=1)
    predicted = probs.argmax(axis=1)
    correct = (predicted == labels).astype(float)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    ece = 0.0
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (confidence > low) & (confidence <= high)
        if not mask.any():
            continue
        gap = abs(correct[mask].mean() - confidence[mask].mean())
        ece += mask.mean() * gap
    return float(ece)


class TemperatureScaling:
    """Post-hoc single-parameter calibration.

    Fits a temperature ``T`` minimising negative log-likelihood of
    ``softmax(log(p) / T)`` on held-out data. Operating on log-probs
    rather than raw logits lets the transform wrap any probabilistic
    predictor, including the boosted-tree aggregator.
    """

    def __init__(self, grid: Optional[np.ndarray] = None):
        self.grid = (
            np.geomspace(0.1, 10.0, 61) if grid is None else np.asarray(grid)
        )
        if np.any(self.grid <= 0):
            raise ValueError("temperatures must be positive")
        self.temperature_: Optional[float] = None

    @staticmethod
    def _nll(log_probs: np.ndarray, targets: np.ndarray, temperature: float) -> float:
        scaled = softmax(log_probs / temperature)
        picked = np.clip((scaled * targets).sum(axis=1), 1e-12, None)
        return float(-np.log(picked).mean())

    def fit(self, probs: np.ndarray, labels: np.ndarray) -> "TemperatureScaling":
        """Grid-search the temperature minimising held-out NLL."""
        probs = np.asarray(probs, dtype=float)
        if probs.ndim != 2:
            raise ValueError(f"probs must be 2-d, got shape {probs.shape}")
        labels = np.asarray(labels)
        targets = (
            one_hot(labels, probs.shape[1]) if labels.ndim == 1 else labels
        )
        log_probs = np.log(np.clip(probs, 1e-12, None))
        best_t, best_nll = 1.0, np.inf
        for temperature in self.grid:
            nll = self._nll(log_probs, targets, float(temperature))
            if nll < best_nll:
                best_nll = nll
                best_t = float(temperature)
        self.temperature_ = best_t
        return self

    def transform(self, probs: np.ndarray) -> np.ndarray:
        """Rescale probabilities with the fitted temperature."""
        if self.temperature_ is None:
            raise RuntimeError("transform called before fit")
        log_probs = np.log(np.clip(np.asarray(probs, dtype=float), 1e-12, None))
        return softmax(log_probs / self.temperature_)
