"""Base models: wrappers, cost profiles, calibration and builders."""

from repro.models.profiles import (
    IMAGE_RETRIEVAL_PROFILES,
    TEXT_MATCHING_PROFILES,
    VEHICLE_COUNTING_PROFILES,
    ModelProfile,
)
from repro.models.base import BaseModel, TrainedModel
from repro.models.calibration import TemperatureScaling
from repro.models.prediction_table import PredictionTable

_ZOO_EXPORTS = (
    "build_text_matching_ensemble",
    "build_vehicle_counting_ensemble",
    "build_image_retrieval_ensemble",
    "build_cifar_like_models",
)


def __getattr__(name):
    # The zoo builders import repro.ensemble, which imports this package;
    # loading them lazily breaks the cycle (PEP 562).
    if name in _ZOO_EXPORTS:
        from repro.models import zoo

        return getattr(zoo, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ModelProfile",
    "TEXT_MATCHING_PROFILES",
    "VEHICLE_COUNTING_PROFILES",
    "IMAGE_RETRIEVAL_PROFILES",
    "BaseModel",
    "TrainedModel",
    "TemperatureScaling",
    "PredictionTable",
    "build_text_matching_ensemble",
    "build_vehicle_counting_ensemble",
    "build_image_retrieval_ensemble",
    "build_cifar_like_models",
]
