"""Latency and memory cost profiles for base models.

The paper's scheduling behaviour depends on *relative* model costs
(queue blocking arises because a query occupies every model for the
slowest model's latency), so the profiles below keep the published
relative scale of the real models on a P100:

* text matching — BiLSTM is several times faster than the transformers,
  BERT slightly slower than RoBERTa; deadlines (~100 ms) sit just above
  the slowest model.
* vehicle counting — EfficientDet-D0 fastest, YOLOX slowest.
* image retrieval — two DELG backbones, R101 roughly 2x R50.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ModelProfile:
    """Serving cost profile of one base model.

    Attributes:
        name: Model name (matches the paper's base model where relevant).
        latency: Per-query inference time in seconds (approximately
            constant for deep models, as the paper assumes).
        memory: Deployed memory footprint in MB; static selection uses it
            to decide how many replicas fit.
    """

    name: str
    latency: float
    memory: float

    def __post_init__(self):
        check_positive("latency", self.latency)
        check_positive("memory", self.memory)


TEXT_MATCHING_PROFILES = (
    ModelProfile("BiLSTM", latency=0.018, memory=400.0),
    ModelProfile("RoBERTa", latency=0.072, memory=1300.0),
    ModelProfile("BERT", latency=0.090, memory=1400.0),
)

VEHICLE_COUNTING_PROFILES = (
    ModelProfile("EfficientDet-D0", latency=0.030, memory=500.0),
    ModelProfile("YOLOv5l", latency=0.055, memory=900.0),
    ModelProfile("YOLOX", latency=0.075, memory=1000.0),
)

IMAGE_RETRIEVAL_PROFILES = (
    ModelProfile("DELG-R50", latency=0.065, memory=1100.0),
    ModelProfile("DELG-R101", latency=0.120, memory=1800.0),
)

# The paper's discrepancy predictor costs ~6.5% of the ensemble's
# runtime and 0.4-2% of its memory (Fig. 13); profiles for the predictor
# are derived from these ratios in repro.difficulty.predictor.
PREDICTOR_RUNTIME_FRACTION = 0.065
PREDICTOR_MEMORY_FRACTION = 0.015
