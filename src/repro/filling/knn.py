"""KNN filling of missing base-model outputs (Section VII, Stacking).

When the scheduler executes only a subset of base models, stacking
aggregation still needs a full output vector for its meta-classifier.
The paper fills missing outputs from the ``k`` most similar *historical*
full inference results, weighting neighbours by inverse distance on the
observed coordinates.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np



class KNNFiller:
    """Fill missing per-model outputs from historical full outputs.

    The history is a tensor ``(n_history, n_models, k)`` of full-ensemble
    inference records. To fill a partial observation, distance is
    computed only over the models that *were* executed, and each missing
    model's output is the distance-weighted average of its outputs in the
    ``k`` nearest records.
    """

    def __init__(self, k: int = 10):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._history: Optional[np.ndarray] = None

    def fit(self, history: np.ndarray) -> "KNNFiller":
        """Store historical full outputs ``(n_history, n_models, dim)``."""
        history = np.asarray(history, dtype=float)
        if history.ndim != 3:
            raise ValueError(
                f"history must have shape (n, models, dim), got {history.shape}"
            )
        if history.shape[0] < 1:
            raise ValueError("history must contain at least one record")
        self._history = history
        return self

    @property
    def history_size(self) -> int:
        if self._history is None:
            raise RuntimeError("fit has not been called")
        return int(self._history.shape[0])

    def fill(
        self, partial: np.ndarray, present_mask: Sequence[bool]
    ) -> np.ndarray:
        """Return ``partial`` with missing model rows filled.

        Args:
            partial: ``(n_models, dim)`` outputs; rows for unexecuted
                models may hold anything (they are ignored).
            present_mask: Boolean per-model flags; True means executed.
        """
        if self._history is None:
            raise RuntimeError("fit has not been called")
        partial = np.asarray(partial, dtype=float)
        mask = np.asarray(present_mask, dtype=bool)
        if partial.shape != self._history.shape[1:]:
            raise ValueError(
                f"partial shape {partial.shape} does not match history "
                f"record shape {self._history.shape[1:]}"
            )
        if mask.shape[0] != partial.shape[0]:
            raise ValueError("present_mask length must equal n_models")
        if mask.all():
            return partial.copy()
        if not mask.any():
            # Nothing observed: there is no anchor for a neighbour
            # search, and silently inventing an answer (e.g. the history
            # mean) would hide a fully-failed query. Degraded serving
            # must never reach this point — a query with every task
            # failed is rejected, not filled.
            raise ValueError(
                "cannot fill a record with no observed model outputs: "
                "present_mask is all False"
            )

        observed = self._history[:, mask, :].reshape(self.history_size, -1)
        target = partial[mask].ravel()
        distances = np.linalg.norm(observed - target, axis=1)
        k = min(self.k, self.history_size)
        neighbours = np.argpartition(distances, k - 1)[:k]
        # Inverse-distance weights; an exact match dominates.
        weights = 1.0 / (distances[neighbours] + 1e-9)
        weights = weights / weights.sum()

        filled = partial.copy()
        missing = ~mask
        neighbour_outputs = self._history[neighbours][:, missing, :]
        filled[missing] = np.tensordot(weights, neighbour_outputs, axes=(0, 0))
        return filled

    def fill_batch(
        self, partials: np.ndarray, present_masks: np.ndarray
    ) -> np.ndarray:
        """Vectorised convenience wrapper over :meth:`fill`."""
        partials = np.asarray(partials, dtype=float)
        present_masks = np.asarray(present_masks, dtype=bool)
        if partials.shape[0] != present_masks.shape[0]:
            raise ValueError("partials and present_masks disagree on count")
        return np.stack(
            [
                self.fill(partials[i], present_masks[i])
                for i in range(partials.shape[0])
            ]
        )
