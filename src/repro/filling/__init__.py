"""Missing-output handling for partially executed ensembles (Section VII)."""

from repro.filling.knn import KNNFiller

__all__ = ["KNNFiller"]
