"""Counters, time-keyed gauges and streaming histograms.

The serving simulator samples these in *simulated* time (buffer depth,
utilization) and in *real* time (scheduler invocation wall-clock). All
metrics are bounded-memory: gauges store their samples (one per event,
linear in trace size), histograms keep exact summary moments plus a
mergeable :class:`~repro.obs.digest.QuantileDigest` so quantiles stay
accurate without retaining every observation — the property that lets a
100k-query day trace run with tracing on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.digest import QuantileDigest


class Counter:
    """A monotonically increasing (float-valued) event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def summary(self) -> Dict[str, float]:
        """One-key summary used by the registry dump."""
        return {"count": float(self.value)}


class Gauge:
    """A value sampled over (simulated) time: ``(t, value)`` pairs."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def sample(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t`` (times need not be distinct)."""
        self._times.append(float(t))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def last(self) -> Optional[float]:
        """Most recently sampled value (None when never sampled)."""
        return self._values[-1] if self._values else None

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` as float arrays, in sample order."""
        return (
            np.asarray(self._times, dtype=float),
            np.asarray(self._values, dtype=float),
        )

    def binned_max(self, duration: float, n_bins: int) -> np.ndarray:
        """Max sampled value per equal time bin over ``[0, duration]``.

        Bins with no sample report 0 — for buffer depth that reads as
        "empty", which is the quantity the report plots over time.
        """
        if duration <= 0 or n_bins < 1:
            raise ValueError("duration must be > 0 and n_bins >= 1")
        out = np.zeros(n_bins)
        times, values = self.as_arrays()
        if times.size == 0:
            return out
        bins = np.minimum(
            (times / duration * n_bins).astype(int), n_bins - 1
        )
        np.maximum.at(out, bins, values)
        return out

    def summary(self) -> Dict[str, float]:
        """Mean / max / last over all samples (NaN when empty)."""
        if not self._values:
            return {"mean": float("nan"), "max": float("nan"),
                    "last": float("nan"), "samples": 0.0}
        values = np.asarray(self._values)
        return {
            "mean": float(values.mean()),
            "max": float(values.max()),
            "last": float(values[-1]),
            "samples": float(values.size),
        }


class StreamingHistogram:
    """Bounded-memory distribution sketch with t-digest quantiles.

    Backed by a :class:`~repro.obs.digest.QuantileDigest`: exact
    count/sum/min/max for every observation, plus ``O(compression)``
    weighted centroids for quantiles. Unlike the reservoir sketch this
    replaced, it is fully deterministic (no sampling), mergeable across
    histograms, and holds the report percentiles within ~1% relative
    error at a fraction of the memory (see ``repro.obs.digest``).
    """

    def __init__(self, name: str, compression: int = 128):
        self.name = name
        self._digest = QuantileDigest(compression=compression)

    @property
    def compression(self) -> int:
        """Digest accuracy/memory knob δ (see :class:`QuantileDigest`)."""
        return self._digest.compression

    @property
    def count(self) -> int:
        """Exact number of observations."""
        return self._digest.count

    @property
    def total(self) -> float:
        """Exact sum of observations."""
        return self._digest.total

    @property
    def min(self) -> float:
        """Exact minimum (``inf`` when empty)."""
        return self._digest.min

    @property
    def max(self) -> float:
        """Exact maximum (``-inf`` when empty)."""
        return self._digest.max

    def add(self, value: float) -> None:
        """Fold one observation into the sketch."""
        self._digest.add(value)

    def merge(self, other: "StreamingHistogram") -> None:
        """Absorb ``other``'s observations (digest-level merge)."""
        self._digest.merge(other._digest)

    def checkpoint(self) -> Dict[str, object]:
        """Full mergeable digest state (``QuantileDigest.to_dict``) —
        the unit live telemetry snapshots carry so per-shard sketches
        roll up into fleet quantiles without the raw observations."""
        return self._digest.to_dict()

    def n_retained(self) -> int:
        """Values currently held (centroids + buffer) — the memory bound."""
        return self._digest.n_centroids()

    @property
    def mean(self) -> float:
        """Exact mean of all observations (NaN when empty)."""
        return self._digest.mean

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact min/max at q ∈ {0, 1})."""
        return self._digest.quantile(q)

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p95 / p99 / min / max."""
        if self.count == 0:
            nan = float("nan")
            return {"count": 0.0, "mean": nan, "p50": nan, "p95": nan,
                    "p99": nan, "min": nan, "max": nan}
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    One registry collects everything a serving run observes; the
    conventional metric names are documented in README.md's
    Observability section.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, compression: int = 128
    ) -> StreamingHistogram:
        """Get or create the streaming histogram ``name``."""
        return self._get(name, StreamingHistogram, compression=compression)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The metric registered under ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Nested ``{metric: {stat: value}}`` dump of every metric."""
        return {
            name: self._metrics[name].summary() for name in self.names()
        }
