"""Live telemetry plane: streaming snapshots, flight recorder, incidents.

Everything observability built before this module is post-hoc: spans,
digests, SLO episodes and profiles are only materialized after
``run()`` returns. :class:`LiveTelemetry` turns the same span stream
into an *operable* surface while the run is still going:

* **Snapshots** — at a configurable simulated-time cadence the stream
  is cut into windows; each boundary emits a
  :class:`TelemetrySnapshot` holding delta-encoded counters (what
  happened *this* window), cumulative totals, last gauge values and
  full mergeable digest checkpoints
  (:meth:`~repro.obs.digest.QuantileDigest.to_dict` state, so shard
  snapshots roll up into fleet snapshots by digest merge — see
  :func:`rollup_snapshots`).
* **Flight recorder** — a bounded ring of the most recent spans,
  always on at O(1) per span. Trigger spans (``slo_breach``, control
  ``scale_up``/``degrade``, ``worker_down``) and the anomaly watchdog
  freeze the ring into an **incident bundle**: the breach-window span
  slice, the control-log slice, recent snapshots, and the top-K
  offender queries via :meth:`~repro.obs.profile.LatencyAttributor.blame`.
* **Anomaly watchdog** — per snapshot window, compares the window's
  latency digest and miss rate against a baseline accumulated from the
  prior clean windows; a window whose p95 latency or miss rate blows
  past its factor fires an ``anomaly`` span and the recorder.

Determinism contract: every quantity in a bundle is simulated-time or
derived from the deterministic span stream, so a fixed (trace, seed)
freezes byte-identical bundles — except the real-wall-clock ``wall_s``
attributes riding on ``schedule`` spans. :func:`incident_fingerprint`
canonicalizes a bundle with those scrubbed; the test suite and the
overhead benchmark compare fingerprints, not raw bytes.

Attachment: pass a :class:`LiveTelemetry` to
``RecordingTracer(live=...)``. The tracer forwards every span before
folding it, so window attribution is exact; when ``live`` is ``None``
(the default) the tracer path is unchanged and a disabled run stays
bit-identical to pre-live behaviour (proved by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.digest import QuantileDigest
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.spans import (
    ANOMALY,
    COMPLETE,
    DEGRADE_MODE,
    INCIDENT,
    KINDS,
    REJECT,
    SCALE_UP,
    SLO_BREACH,
    SNAPSHOT,
    WORKER_DOWN,
    Span,
)

#: Schema tag stamped into every incident bundle (the
#: ``repro.profile/1`` pattern); bump on breaking layout changes.
INCIDENT_SCHEMA = "repro.incident/1"

#: Default trigger span kinds that freeze the flight recorder.
DEFAULT_TRIGGERS = (SLO_BREACH, SCALE_UP, DEGRADE_MODE, WORKER_DOWN, ANOMALY)

#: Kinds the live plane emits about itself — never re-ingested into the
#: ring or the watchdog (a fleet tracer replaying shard streams sees
#: shard-level snapshot spans go by).
META_KINDS = frozenset((SNAPSHOT, ANOMALY, INCIDENT))

#: Trigger kinds ``RecordingTracer``'s fold chain carries inline hooks
#: for (``anomaly`` fires from the watchdog at the boundary, not from a
#: span). Span-backed mode requires the configured triggers to be a
#: subset; an exotic trigger set falls back to the per-span deque path.
_INLINE_TRIGGERS = frozenset(
    (SLO_BREACH, SCALE_UP, DEGRADE_MODE, WORKER_DOWN, ANOMALY)
)

# Hot-path kind classification flags: on_span folds its meta/outcome/
# trigger membership tests into one dict lookup (see _kind_flags).
_F_META = 1
_F_COMPLETE = 2
_F_REJECT = 4
_F_TRIGGER = 8


@dataclass(frozen=True)
class LiveConfig:
    """Knobs of the live telemetry plane.

    Attributes:
        cadence: Simulated seconds between snapshot boundaries.
        ring_capacity: Spans the flight recorder retains.
        triggers: Span kinds that freeze the ring into a bundle
            (``anomaly`` covers the watchdog; drop it to disarm).
        watchdog: Master switch for the anomaly watchdog.
        baseline_windows: Clean windows the watchdog accumulates before
            it arms (warm-up).
        anomaly_min_events: Resolved queries a window needs before the
            watchdog may judge it.
        anomaly_latency_factor: Window p95 latency vs baseline p95
            blow-up that flags a latency anomaly.
        anomaly_miss_factor: Window miss rate vs baseline miss rate
            blow-up that flags a burn anomaly.
        anomaly_miss_floor: Absolute window miss rate below which the
            burn signal never fires (a 3x blow-up of nearly zero is
            still nearly zero).
        incident_cooldown: Simulated seconds between frozen bundles;
            triggers inside the cooldown are counted as suppressed.
        max_incidents: Hard cap on bundles per run.
        max_snapshots: Snapshots retained in memory (oldest dropped).
        snapshots_per_incident: Most recent snapshots copied into each
            bundle.
        top_k: Offender queries blamed per bundle.
        compression: t-digest compression of the watchdog's window and
            baseline latency sketches.
    """

    cadence: float = 1.0
    ring_capacity: int = 2048
    triggers: Tuple[str, ...] = DEFAULT_TRIGGERS
    watchdog: bool = True
    baseline_windows: int = 5
    anomaly_min_events: int = 20
    anomaly_latency_factor: float = 2.5
    anomaly_miss_factor: float = 3.0
    anomaly_miss_floor: float = 0.2
    incident_cooldown: float = 10.0
    max_incidents: int = 8
    max_snapshots: int = 4096
    snapshots_per_incident: int = 3
    top_k: int = 5
    compression: int = 64

    def __post_init__(self):
        if self.cadence <= 0:
            raise ValueError(f"cadence must be > 0, got {self.cadence}")
        if self.ring_capacity < 1:
            raise ValueError(
                f"ring_capacity must be >= 1, got {self.ring_capacity}"
            )
        if self.anomaly_latency_factor <= 1.0 or self.anomaly_miss_factor <= 1.0:
            raise ValueError("anomaly factors must exceed 1.0")
        unknown = set(self.triggers) - set(KINDS)
        if unknown:
            raise ValueError(
                f"unknown trigger span kinds: {sorted(unknown)}"
            )


@dataclass
class TelemetrySnapshot:
    """One cadence window of a run, delta-encoded and mergeable.

    Attributes:
        seq: Snapshot index (0-based, per source).
        time: Window end boundary (simulated seconds).
        source: Producer tag (``server``, ``shard3``, ``fleet``).
        counters: Counter deltas over this window (zero deltas
            omitted).
        totals: Cumulative counter values at the boundary.
        gauges: Last sampled value of each gauge at the boundary.
        digests: Cumulative :class:`QuantileDigest` checkpoints per
            histogram — mergeable across sources, so fleet rollups
            keep accurate quantiles.
    """

    seq: int
    time: float
    source: str = "server"
    counters: Dict[str, float] = field(default_factory=dict)
    totals: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    digests: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation with deterministic key order."""
        return {
            "seq": self.seq,
            "time": self.time,
            "source": self.source,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "totals": {k: self.totals[k] for k in sorted(self.totals)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "digests": {k: self.digests[k] for k in sorted(self.digests)},
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "TelemetrySnapshot":
        """Rebuild a snapshot serialized by :meth:`to_dict`."""
        return cls(
            seq=int(state["seq"]),
            time=float(state["time"]),
            source=str(state.get("source", "server")),
            counters=dict(state.get("counters", {})),
            totals=dict(state.get("totals", {})),
            gauges=dict(state.get("gauges", {})),
            digests=dict(state.get("digests", {})),
        )

    def quantile(self, name: str, q: float) -> float:
        """Quantile ``q`` of the checkpointed digest ``name``
        (NaN when the histogram is absent or empty)."""
        state = self.digests.get(name)
        if state is None or not state.get("count"):
            return float("nan")
        return QuantileDigest.from_dict(state).quantile(q)

    @classmethod
    def rollup(
        cls, snapshots: Sequence["TelemetrySnapshot"], source: str = "fleet"
    ) -> "TelemetrySnapshot":
        """Merge same-boundary snapshots from several sources into one.

        Counters/totals/gauges sum (gauges are extensive here — buffer
        depth, replica level — so the fleet value is the shard sum);
        digest checkpoints merge losslessly at the centroid level.
        """
        if not snapshots:
            raise ValueError("rollup needs at least one snapshot")
        counters: Dict[str, float] = {}
        totals: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        merged: Dict[str, QuantileDigest] = {}
        for snap in snapshots:
            for name, value in snap.counters.items():
                counters[name] = counters.get(name, 0.0) + value
            for name, value in snap.totals.items():
                totals[name] = totals.get(name, 0.0) + value
            for name, value in snap.gauges.items():
                gauges[name] = gauges.get(name, 0.0) + value
            for name, state in snap.digests.items():
                digest = QuantileDigest.from_dict(state)
                if name in merged:
                    merged[name].merge(digest)
                else:
                    merged[name] = digest
        return cls(
            seq=snapshots[0].seq,
            time=max(snap.time for snap in snapshots),
            source=source,
            counters=counters,
            totals=totals,
            gauges=gauges,
            digests={
                name: digest.to_dict() for name, digest in merged.items()
            },
        )


def rollup_snapshots(
    per_source: Sequence[Sequence[TelemetrySnapshot]], source: str = "fleet"
) -> List[TelemetrySnapshot]:
    """Fleet rollup: align per-source snapshot streams on ``seq`` and
    merge each boundary via :meth:`TelemetrySnapshot.rollup`.

    Sources that flushed fewer boundaries (a shard that drained early)
    simply stop contributing; the rollup covers every seq any source
    reached.
    """
    by_seq: Dict[int, List[TelemetrySnapshot]] = {}
    for stream in per_source:
        for snap in stream:
            by_seq.setdefault(snap.seq, []).append(snap)
    return [
        TelemetrySnapshot.rollup(by_seq[seq], source=source)
        for seq in sorted(by_seq)
    ]


class AnomalyWatchdog:
    """Window-vs-baseline detector over resolved-query outcomes.

    Each snapshot window accumulates a latency digest plus event/miss
    counts. At the boundary the window is judged against the baseline
    (the digest-merge of all prior *clean* windows): a p95 latency
    blow-up or a miss-rate blow-up past the configured factors flags
    the window. Flagged windows are excluded from the baseline so a
    sustained incident cannot normalize itself away.
    """

    def __init__(self, config: LiveConfig):
        self._config = config
        self.windows_closed = 0
        self.anomalies = 0
        self._win_events = 0
        self._win_misses = 0
        self._win_digest = QuantileDigest(compression=config.compression)
        self._base_events = 0
        self._base_misses = 0
        self._base_digest = QuantileDigest(compression=config.compression)

    @property
    def armed(self) -> bool:
        """True once the warm-up baseline has accumulated."""
        return self.windows_closed >= self._config.baseline_windows

    def ingest(self, missed: bool, latency: Optional[float]) -> None:
        """Fold one resolved query into the current window."""
        self._win_events += 1
        if missed:
            self._win_misses += 1
        if latency is not None:
            self._win_digest.add(latency)

    def close_window(self) -> Optional[Dict[str, float]]:
        """Judge and retire the current window at a snapshot boundary.

        Returns the anomaly attributes when the window is flagged
        (``signal``, window and baseline stats), else ``None``.
        """
        config = self._config
        verdict: Optional[Dict[str, float]] = None
        events = self._win_events
        if self.armed and events >= config.anomaly_min_events:
            miss_rate = self._win_misses / events
            base_rate = (
                self._base_misses / self._base_events
                if self._base_events else 0.0
            )
            if (
                miss_rate >= config.anomaly_miss_floor
                and miss_rate > config.anomaly_miss_factor
                * max(base_rate, 1.0 / max(self._base_events, 1))
            ):
                verdict = {
                    "signal": "miss_rate",
                    "window_miss_rate": miss_rate,
                    "baseline_miss_rate": base_rate,
                    "window_events": float(events),
                }
            elif self._win_digest.count and self._base_digest.count:
                win_p95 = self._win_digest.quantile(0.95)
                base_p95 = self._base_digest.quantile(0.95)
                if base_p95 > 0 and win_p95 > (
                    config.anomaly_latency_factor * base_p95
                ):
                    verdict = {
                        "signal": "latency",
                        "window_p95": win_p95,
                        "baseline_p95": base_p95,
                        "window_events": float(events),
                    }
        if verdict is None:
            # Clean window: fold it into the baseline.
            self._base_events += events
            self._base_misses += self._win_misses
            self._base_digest.merge(self._win_digest)
        else:
            self.anomalies += 1
        self.windows_closed += 1
        self._win_events = 0
        self._win_misses = 0
        self._win_digest = QuantileDigest(compression=config.compression)
        return verdict


class FlightRecorder:
    """Bounded ring of recent spans plus the freeze-to-bundle logic.

    Two storage modes:

    * **Deque mode** (default): the ring stores ``(kind, time,
      query_id, attrs)`` tuples appended per span — the attrs dict is
      shared with the tracer's span, never copied on the hot path.
    * **Span-list mode** (:meth:`use_span_list`): when the tracer
      already keeps its full span stream, the ring is a *view* over
      the tail of that list — the per-span append disappears entirely,
      which is what keeps the always-on recorder inside the 5%
      overhead gate of ``bench_obs_overhead.py``.

    Either way :meth:`spans` yields the same window (last
    ``ring_capacity`` non-meta spans) and :meth:`freeze` materializes
    :class:`Span` objects only when a trigger actually fires.
    """

    def __init__(self, config: LiveConfig):
        self._config = config
        self._ring: Deque[Tuple[str, float, int, Dict[str, object]]] = (
            deque(maxlen=config.ring_capacity)
        )
        self._span_list: Optional[List[Span]] = None
        self.append = self._ring.append  # hot-path bound method

    def use_span_list(self, spans: List[Span]) -> None:
        """Back the ring by the tracer's own (growing) span list."""
        self._span_list = spans

    def __len__(self) -> int:
        if self._span_list is not None:
            return len(self.spans())
        return len(self._ring)

    def spans(self) -> List[Span]:
        """The retained window as :class:`Span` objects (oldest first)."""
        if self._span_list is not None:
            # Walk the tail backwards; the live plane's own meta spans
            # are in the tracer's list but never part of the ring.
            cap = self._config.ring_capacity
            tail: List[Span] = []
            for span in reversed(self._span_list):
                if span.kind not in META_KINDS:
                    tail.append(span)
                    if len(tail) == cap:
                        break
            return [
                Span(s.kind, s.time, s.query_id, dict(s.attrs))
                for s in reversed(tail)
            ]
        return [
            Span(kind, time, qid, dict(attrs))
            for kind, time, qid, attrs in self._ring
        ]

    def freeze(
        self,
        trigger_kind: str,
        time: float,
        query_id: int,
        attrs: Dict[str, object],
        *,
        seq: int,
        source: str,
        totals: Dict[str, float],
        snapshots: Sequence[TelemetrySnapshot],
        control: Optional[List[Dict[str, object]]] = None,
        decisions: Optional[Dict[int, List[Dict[str, object]]]] = None,
        ring_spans: Optional[List[Span]] = None,
    ) -> Dict[str, object]:
        """Materialize the ring into a schema-tagged incident bundle."""
        from repro.obs.profile import LatencyAttributor

        if ring_spans is None:
            ring_spans = self.spans()
        window_start = ring_spans[0].time if ring_spans else time
        attributor = LatencyAttributor(
            compression=self._config.compression
        )
        attributor.attribute(ring_spans)
        blame = [
            {
                "query_id": a.query_id,
                "latency": a.latency,
                "slack": a.slack,
                "dominant_phase": a.dominant_phase,
                "phases": {k: a.phases[k] for k in sorted(a.phases)},
                "degraded": bool(a.degraded),
                "retries": a.retries,
            }
            for a in attributor.blame(self._config.top_k)
        ]
        keep = self._config.snapshots_per_incident
        return {
            "schema": INCIDENT_SCHEMA,
            "seq": seq,
            "source": source,
            "trigger": {
                "kind": trigger_kind,
                "time": time,
                "query_id": query_id,
                "attrs": {k: attrs[k] for k in sorted(attrs)},
            },
            "window": {
                "start": window_start,
                "end": time,
                "spans": len(ring_spans),
            },
            "totals": {k: totals[k] for k in sorted(totals)},
            "snapshots": [
                snap.to_dict() for snap in list(snapshots)[-keep:]
            ],
            "blame": blame,
            "control": control if control is not None else [],
            "decisions": (
                {
                    str(qid): decisions[qid]
                    for qid in sorted(decisions)
                }
                if decisions else {}
            ),
            "spans": [span.to_dict() for span in ring_spans],
        }


class LiveTelemetry:
    """The live plane one tracer carries: snapshots + recorder + watchdog.

    Construct, hand to ``RecordingTracer(live=...)``, run. The tracer
    calls :meth:`bind` when attached and forwards every span through
    :meth:`on_span` before folding it; :meth:`tick` lets epoch drivers
    (``ServingSession.advance``, the fleet control loop) flush
    boundaries through quiet stretches with no spans.

    State is plain attribute reads, so a background thread (the
    ``--serve-metrics`` endpoint, the ``top`` console) can sample
    :attr:`latest`, :attr:`snapshots` and :attr:`incidents` mid-run
    without locks — readers see a consistent recent prefix.
    """

    def __init__(
        self, config: Optional[LiveConfig] = None, source: str = "server"
    ):
        self.config = config if config is not None else LiveConfig()
        self.source = source
        self.snapshots: Deque[TelemetrySnapshot] = deque(
            maxlen=self.config.max_snapshots
        )
        self.incidents: List[Dict[str, object]] = []
        self.suppressed = 0
        self.recorder = FlightRecorder(self.config)
        self.watchdog = (
            AnomalyWatchdog(self.config) if self.config.watchdog else None
        )
        self._tracer = None
        self._metrics: Optional[MetricsRegistry] = None
        self._control_log = None
        self._decisions = None
        self._prev_totals: Dict[str, float] = {}
        self._next_due = self.config.cadence
        self._n_snapshots = 0
        self._last_incident: Optional[float] = None
        self._trigger_set = frozenset(self.config.triggers)
        self._emitting = False
        self._finalized = False
        # Hot-path accelerators: one bound append (skips two attribute
        # hops per span) and one flags-dict lookup replacing the
        # meta/complete/reject/trigger membership cascade. Kinds absent
        # from the dict (the overwhelming majority of spans) take the
        # shortest path: append to the ring and return.
        self._ring_append = self.recorder.append
        flags: Dict[str, int] = {kind: _F_META for kind in META_KINDS}
        flags[COMPLETE] = flags.get(COMPLETE, 0) | _F_COMPLETE
        flags[REJECT] = flags.get(REJECT, 0) | _F_REJECT
        for kind in self._trigger_set:
            flags[kind] = flags.get(kind, 0) | _F_TRIGGER
        self._kind_flags = flags
        self._flags_get = flags.get

    # -- attachment ----------------------------------------------------

    def bind(self, tracer) -> None:
        """Called by the tracer when attached; one tracer per plane."""
        if self._tracer is not None and self._tracer is not tracer:
            raise ValueError(
                "LiveTelemetry is already bound to a tracer — build one "
                "plane per RecordingTracer"
            )
        self._tracer = tracer
        self._metrics = tracer.metrics
        if (
            getattr(tracer, "keep_spans", False)
            and self._trigger_set <= _INLINE_TRIGGERS
        ):
            # The tracer's own span list doubles as the flight ring:
            # plain spans then cost the live plane nothing per span,
            # and the outcome/trigger kinds are handled by the tracer's
            # fold chain (which dispatches on kind anyway).
            self.recorder.use_span_list(tracer.spans)
            self._ring_append = None

    def attach_control_log(self, log) -> None:
        """Attach the controller's action log; bundles then carry the
        breach-window slice of it."""
        self._control_log = log

    def attach_decisions(self, log) -> None:
        """Attach a :class:`~repro.obs.explain.DecisionLog`; bundles
        then carry the blamed queries' decision records."""
        self._decisions = log

    # -- hot path ------------------------------------------------------

    def on_span(self, kind: str, time: float, query_id: int, attrs) -> None:
        """Observe one span (called by the tracer before folding it).

        Hot path: ~245k calls on a 2-minute simulated run, so the
        common case (a plain lifecycle span inside the current window)
        does the minimum — boundary compare, one bound ``dict.get``,
        and (deque mode only) tuple build + bound ``deque.append``.
        ``RecordingTracer.emit`` inlines this body (the extra Python
        call per span is the single largest live-plane cost) — the
        boundary compare plus, in deque mode, the flags dispatch; in
        span-backed mode the flagged kinds ride the tracer's own fold
        chain (``_live_chain`` hooks) so a plain span pays only the
        compare. Keep the copies in lockstep. The re-entrancy guard
        only needs checking at a boundary: the plane's own spans are
        all meta kinds (filtered below) and ``_flush`` advances
        ``_next_due`` before emitting, so a re-entered call can never
        flush again.
        """
        if time >= self._next_due and not self._emitting:
            self._flush(time)
        flags = self._flags_get(kind)
        if flags is not None:
            if not flags & _F_META:
                self._on_flagged(kind, time, query_id, attrs, flags)
        elif self._ring_append is not None:
            self._ring_append((kind, time, query_id, attrs))

    def _on_flagged(
        self, kind: str, time: float, query_id: int, attrs, flags: int
    ) -> None:
        """Rare-path half of :meth:`on_span`: outcome + trigger kinds."""
        if self._ring_append is not None:
            self._ring_append((kind, time, query_id, attrs))
        if flags & _F_COMPLETE:
            if self.watchdog is not None:
                self.watchdog.ingest(
                    missed=float(attrs.get("slack", 0.0)) < 0.0,
                    latency=float(attrs.get("latency", 0.0)),
                )
        elif flags & _F_REJECT:
            if self.watchdog is not None:
                self.watchdog.ingest(missed=True, latency=None)
        if flags & _F_TRIGGER:
            self._freeze(kind, time, query_id, dict(attrs))

    def _maybe_trigger(
        self, kind: str, time: float, query_id: int, attrs
    ) -> None:
        """Span-backed-mode trigger hook, called from the tracer's fold
        chain on the ``_INLINE_TRIGGERS`` kinds."""
        if kind in self._trigger_set:
            self._freeze(kind, time, query_id, dict(attrs))

    def tick(self, now: float) -> None:
        """Flush every snapshot boundary at or before ``now``."""
        if now >= self._next_due:
            self._flush(now)

    def finalize(self, end_time: float) -> None:
        """Flush due boundaries and cut one final partial snapshot."""
        if self._finalized:
            return
        self._finalized = True
        self.tick(end_time)
        if self._metrics is not None and end_time > (
            self._next_due - self.config.cadence
        ):
            self._emit_snapshot(end_time)

    # -- read side -----------------------------------------------------

    @property
    def latest(self) -> Optional[TelemetrySnapshot]:
        """Most recent snapshot (None before the first boundary)."""
        return self.snapshots[-1] if self.snapshots else None

    def write_artifacts(
        self, out_dir: Union[str, Path], stem: str
    ) -> List[Path]:
        """Write the snapshot stream (JSONL) and every incident bundle.

        Returns the written paths: ``{stem}_snapshots.jsonl`` first,
        then ``{stem}_incident_NN.json`` per bundle.
        """
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        snaps_path = out_dir / f"{stem}_snapshots.jsonl"
        snaps_path.write_text(
            "".join(
                json.dumps(snap.to_dict(), sort_keys=True) + "\n"
                for snap in self.snapshots
            )
        )
        written.append(snaps_path)
        for bundle in self.incidents:
            path = out_dir / f"{stem}_incident_{bundle['seq']:02d}.json"
            write_incident_json(bundle, path)
            written.append(path)
        return written

    # -- internals -----------------------------------------------------

    def _flush(self, now: float) -> None:
        """Emit a snapshot for every boundary at or before ``now``."""
        if self._metrics is None:
            # Unbound (tracer never attached): nothing to snapshot.
            self._next_due = (
                (now // self.config.cadence) + 1
            ) * self.config.cadence
            return
        while self._next_due <= now:
            boundary = self._next_due
            self._next_due = boundary + self.config.cadence
            self._emit_snapshot(boundary)

    def _emit_snapshot(self, boundary: float) -> None:
        registry = self._metrics
        counters: Dict[str, float] = {}
        totals: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        digests: Dict[str, Dict[str, object]] = {}
        for name in registry.names():
            metric = registry.get(name)
            if isinstance(metric, Counter):
                totals[name] = metric.value
                delta = metric.value - self._prev_totals.get(name, 0.0)
                if delta:
                    counters[name] = delta
            elif isinstance(metric, Gauge):
                if metric.last is not None:
                    gauges[name] = metric.last
            elif isinstance(metric, StreamingHistogram):
                digests[name] = metric.checkpoint()
        self._prev_totals = dict(totals)
        snap = TelemetrySnapshot(
            seq=self._n_snapshots,
            time=boundary,
            source=self.source,
            counters=counters,
            totals=totals,
            gauges=gauges,
            digests=digests,
        )
        self._n_snapshots += 1
        self.snapshots.append(snap)
        self._emit(
            SNAPSHOT, boundary,
            seq=snap.seq,
            arrived=counters.get("queries.arrived", 0.0),
            completed=counters.get("queries.completed", 0.0),
            rejected=counters.get("queries.rejected", 0.0),
        )
        if self.watchdog is not None:
            verdict = self.watchdog.close_window()
            if verdict is not None:
                attrs = dict(verdict)
                self._emit(ANOMALY, boundary, **attrs)
                if ANOMALY in self._trigger_set:
                    self._freeze(ANOMALY, boundary, -1, attrs)

    def _freeze(
        self, kind: str, time: float, query_id: int, attrs: Dict[str, object]
    ) -> None:
        config = self.config
        if len(self.incidents) >= config.max_incidents or (
            self._last_incident is not None
            and time - self._last_incident < config.incident_cooldown
        ):
            self.suppressed += 1
            return
        self._last_incident = time
        ring_spans = self.recorder.spans()
        control = None
        if self._control_log is not None:
            window_start = ring_spans[0].time if ring_spans else time
            control = self._control_log.slice(window_start, time)
        bundle = self.recorder.freeze(
            kind, time, query_id, attrs,
            seq=len(self.incidents),
            source=self.source,
            totals=dict(self._totals()),
            snapshots=self.snapshots,
            control=control,
            ring_spans=ring_spans,
        )
        if self._decisions is not None:
            decisions: Dict[str, List[Dict[str, object]]] = {}
            for entry in bundle["blame"]:
                qid = int(entry["query_id"])
                records = self._decisions.for_query(qid)
                if records:
                    decisions[str(qid)] = [r.to_dict() for r in records]
            bundle["decisions"] = decisions
        self.incidents.append(bundle)
        self._emit(
            INCIDENT, time,
            trigger=kind, seq=bundle["seq"], spans=bundle["window"]["spans"],
        )

    def _totals(self) -> Dict[str, float]:
        registry = self._metrics
        if registry is None:
            return {}
        return {
            name: registry.get(name).value
            for name in registry.names()
            if isinstance(registry.get(name), Counter)
        }

    def _emit(self, kind: str, time: float, **attrs) -> None:
        """Emit a meta span through the tracer, re-entrancy guarded."""
        tracer = self._tracer
        if tracer is None or self._emitting:
            return
        self._emitting = True
        try:
            tracer.emit(kind, time, **attrs)
        finally:
            self._emitting = False


# -- incident bundle serialization ----------------------------------------


def write_incident_json(
    bundle: Dict[str, object], path: Union[str, Path]
) -> Path:
    """Write one incident bundle, deterministically serialized
    (sorted keys, fixed indent) so same-seed reruns byte-match modulo
    the real-wall-clock ``wall_s`` span attributes."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bundle, indent=2, sort_keys=True) + "\n")
    return path


def read_incident_json(path: Union[str, Path]) -> Dict[str, object]:
    """Read and schema-check an incident bundle."""
    path = Path(path)
    bundle = json.loads(path.read_text())
    schema = bundle.get("schema") if isinstance(bundle, dict) else None
    if schema != INCIDENT_SCHEMA:
        raise ValueError(
            f"{path}: expected a {INCIDENT_SCHEMA!r} incident bundle, "
            f"found schema {schema!r}"
        )
    return bundle


def _is_wall_key(key: object) -> bool:
    """True for keys holding real-wall-clock data: the ``wall_s`` span
    attribute, the ``scheduler.wall_s`` histogram checkpoint embedded
    in snapshots, and the ``sched.phase_s.*`` wall-clock counters."""
    return isinstance(key, str) and (
        "wall" in key or key.startswith("sched.phase_s")
    )


def _scrub_wall(obj):
    """Recursively drop real-wall-clock keys — the only
    nondeterministic fields a bundle can carry."""
    if isinstance(obj, dict):
        return {
            key: _scrub_wall(value)
            for key, value in obj.items()
            if not _is_wall_key(key)
        }
    if isinstance(obj, list):
        return [_scrub_wall(item) for item in obj]
    return obj


def incident_fingerprint(bundle: Dict[str, object]) -> str:
    """Canonical JSON of a bundle minus wall-clock fields — the
    byte-identity unit of the determinism contract."""
    return json.dumps(_scrub_wall(bundle), sort_keys=True)
