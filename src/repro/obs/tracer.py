"""Query-lifecycle tracers for the serving simulator.

``EnsembleServer`` holds exactly one tracer. The default
:data:`NULL_TRACER` keeps tracing free when unused: the server reads
``tracer.enabled`` once per run and guards every emit site with that
boolean, so the disabled path costs one attribute access at setup and
one branch per event — the benchmark guard in
``benchmarks/bench_obs_overhead.py`` holds that under 5% wall-clock.

:class:`RecordingTracer` collects the structured span stream *and*
folds it into a :class:`~repro.obs.metrics.MetricsRegistry` as spans
arrive (streaming, bounded memory): buffer depth over simulated time,
per-worker busy seconds, scheduler invocation latency (simulated
overhead and real wall-clock), plan sizes and deadline slack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.live import _F_META
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (
    ADMISSION_CHANGE,
    ANOMALY,
    ARRIVAL,
    COMPLETE,
    DEGRADE_MODE,
    DEGRADED,
    DISPATCH,
    ENTER_BUFFER,
    FAST_PATH,
    INCIDENT,
    PLAN,
    QUEUE_WAIT,
    REJECT,
    REQUEUE,
    RESTORE,
    RETRY,
    ROUTE,
    SCALE_DOWN,
    SCALE_UP,
    SCHED_FALLBACK,
    SCHED_PHASE,
    SCHEDULE,
    SHED,
    SLO_BREACH,
    SLO_RECOVERED,
    SNAPSHOT,
    TASK_FAILED,
    WORKER_DOWN,
    Span,
)

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import
    from repro.obs.live import LiveTelemetry
    from repro.obs.slo import SLOMonitor


class Tracer:
    """No-op tracer interface; subclass and set ``enabled = True``.

    ``profile`` opts into the latency-profiling span kinds
    (``sched_phase``/``queue_wait``): the server reads it once per run
    and only a profiling tracer pays for those extra emit sites.
    """

    enabled: bool = False
    profile: bool = False
    metrics: Optional[MetricsRegistry] = None
    live: "Optional[LiveTelemetry]" = None

    def emit(self, kind: str, time: float, query_id: int = -1, **attrs):
        """Record one lifecycle event (no-op here)."""

    def finalize(self, end_time: float) -> None:
        """Close the trace; ``end_time`` is the last simulated instant."""


class NullTracer(Tracer):
    """The zero-overhead default: every hook is a no-op."""


#: Shared default instance — stateless, safe to reuse across servers.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Collects spans and streams them into a metrics registry.

    Args:
        keep_spans: Set False to keep only the metrics (constant memory
            for arbitrarily long traces).
        compression: Histogram digest compression δ (quantile accuracy
            vs memory; see :class:`~repro.obs.digest.QuantileDigest`).
        slo: Optional :class:`~repro.obs.slo.SLOMonitor` fed from the
            span stream; breach/recovery events come back out as spans
            and counters through this tracer.
        profile: Opt into latency profiling: the server additionally
            emits ``sched_phase`` spans (scheduler step-phase wall
            clock, when the scheduler supports phase timers) and
            ``queue_wait`` spans (per-task wait behind a busy worker),
            folded here into ``sched.phase_s.*`` counters and the
            ``task.queue_wait_s`` histogram. Off by default so
            unprofiled traces stay span-for-span identical to before.
        live: Optional :class:`~repro.obs.live.LiveTelemetry` plane.
            Every span is forwarded to it *before* being folded here,
            so snapshot windows partition the stream exactly; the
            plane's own ``snapshot``/``anomaly``/``incident`` spans
            come back out through this tracer. ``None`` (the default)
            keeps the emit path identical to pre-live behaviour.
    """

    enabled = True

    def __init__(
        self,
        keep_spans: bool = True,
        compression: int = 128,
        slo: Optional["SLOMonitor"] = None,
        profile: bool = False,
        live: "Optional[LiveTelemetry]" = None,
    ):
        self.keep_spans = keep_spans
        self.slo = slo
        self.live = live
        self.profile = bool(profile)
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self.end_time = 0.0
        # Per-worker committed busy seconds, downtime seconds and
        # worker -> model map, accumulated from dispatch/down spans.
        self.worker_busy: Dict[int, float] = {}
        self.worker_model: Dict[int, int] = {}
        self.worker_downtime: Dict[int, float] = {}
        m = self.metrics
        self._buffer_depth = m.gauge("buffer.depth")
        self._sched_wall = m.histogram("scheduler.wall_s", compression)
        self._sched_sim = m.histogram(
            "scheduler.overhead_sim_s", compression
        )
        self._sched_batch = m.histogram("scheduler.batch_size", compression)
        self._plan_size = m.histogram("plan.size", compression)
        self._slack = m.histogram("deadline.slack_s", compression)
        self._latency = m.histogram("query.latency_s", compression)
        self._compression = compression
        if slo is not None:
            slo.bind(self)
        # The live plane runs in one of two modes (decided by bind):
        # span-backed (the tracer's span list IS the flight ring; the
        # fold chain below carries the outcome/trigger hooks) or deque
        # (per-span ring append via the flags dict). Cache which one so
        # emit pays a single attribute test per span.
        self._live_deque: "Optional[LiveTelemetry]" = None
        self._live_chain: "Optional[LiveTelemetry]" = None
        if live is not None:
            live.bind(self)
            if live._ring_append is not None:
                self._live_deque = live
            else:
                self._live_chain = live

    def emit(self, kind: str, time: float, query_id: int = -1, **attrs):
        """Record one lifecycle event and update the derived metrics."""
        if self.keep_spans:
            # Appended before the live hook so a freeze fired by this
            # very span (slo_breach etc.) sees it in the span-backed
            # flight window.
            self.spans.append(Span(kind, time, query_id, attrs))
        live = self.live
        if live is not None:
            # Before folding: a span past a snapshot boundary must not
            # leak into the window the boundary closes. This is the
            # boundary half of LiveTelemetry.on_span inlined — an extra
            # Python call per span is the live plane's single largest
            # cost, and bench_obs_overhead.py gates the flight recorder
            # at 5% over a plain RecordingTracer. In span-backed mode
            # this compare is ALL a plain span pays; the rare kinds are
            # handled by their _live_chain hooks in the fold chain
            # below. Keep in lockstep with on_span.
            if time >= live._next_due and not live._emitting:
                live._flush(time)
            dq = self._live_deque
            if dq is not None:
                flags = dq._flags_get(kind)
                if flags is None:  # common case: plain lifecycle span
                    dq._ring_append((kind, time, query_id, attrs))
                elif not flags & _F_META:
                    dq._on_flagged(kind, time, query_id, attrs, flags)
        if time > self.end_time:
            self.end_time = time
        metrics = self.metrics
        if kind == DISPATCH:
            metrics.counter("tasks.dispatched").inc()
            worker = int(attrs["worker"])
            self.worker_busy[worker] = (
                self.worker_busy.get(worker, 0.0)
                + float(attrs["finish"]) - float(attrs["start"])
            )
            self.worker_model.setdefault(worker, int(attrs["model"]))
        elif kind == ARRIVAL:
            metrics.counter("queries.arrived").inc()
        elif kind == ENTER_BUFFER:
            self._buffer_depth.sample(time, attrs["depth"])
        elif kind == SCHEDULE:
            metrics.counter("scheduler.invocations").inc()
            self._sched_wall.add(attrs["wall_s"])
            self._sched_sim.add(attrs["overhead_sim_s"])
            self._sched_batch.add(attrs["batch"])
            self._buffer_depth.sample(time, attrs["depth"])
        elif kind == PLAN:
            self._plan_size.add(attrs["size"])
        elif kind == COMPLETE:
            lc = self._live_chain
            if lc is not None and lc.watchdog is not None:
                lc.watchdog.ingest(
                    missed=float(attrs["slack"]) < 0.0,
                    latency=float(attrs["latency"]),
                )
            metrics.counter("queries.completed").inc()
            self._slack.add(attrs["slack"])
            self._latency.add(attrs["latency"])
            if self.slo is not None:
                self.slo.observe(
                    time,
                    missed=float(attrs["slack"]) < 0.0,
                    degraded=bool(attrs.get("degraded", False)),
                )
        elif kind == REJECT:
            lc = self._live_chain
            if lc is not None and lc.watchdog is not None:
                lc.watchdog.ingest(missed=True, latency=None)
            metrics.counter("queries.rejected").inc()
            if self.slo is not None:
                self.slo.observe(time, missed=True)
        elif kind == REQUEUE:
            self._buffer_depth.sample(time, attrs["depth"])
        elif kind == FAST_PATH:
            metrics.counter("queries.fast_path").inc()
        elif kind == TASK_FAILED:
            metrics.counter("tasks.failed").inc()
            metrics.counter(f"tasks.failed.{attrs.get('reason', '?')}").inc()
        elif kind == RETRY:
            metrics.counter("tasks.retried").inc()
        elif kind == WORKER_DOWN:
            lc = self._live_chain
            if lc is not None:
                # Hook before folding: the frozen bundle's totals must
                # not include the trigger span itself (deque-mode
                # parity, where the freeze precedes the fold).
                lc._maybe_trigger(kind, time, query_id, attrs)
            metrics.counter("workers.crashes").inc()
            worker = int(attrs["worker"])
            self.worker_downtime[worker] = (
                self.worker_downtime.get(worker, 0.0)
                + float(attrs["until"]) - time
            )
        elif kind == DEGRADED:
            metrics.counter("queries.degraded").inc()
        elif kind == SCHED_FALLBACK:
            # Learned fast-path scheduler: one span per invocation,
            # split into DP fallbacks vs fast-path-served plans so the
            # fallback rate is a first-class metric
            # (sched.fallbacks / scheduler.invocations).
            if attrs.get("fallback", False):
                metrics.counter("sched.fallbacks").inc()
            else:
                metrics.counter("sched.fast_served").inc()
        elif kind == ROUTE:
            # Fleet front-end placement (repro.fleet): every admitted
            # query is routed exactly once; redirected marks a query
            # whose policy-chosen shard was full and was re-routed by
            # admission control instead of shed.
            metrics.counter("router.routed").inc()
            metrics.counter(f"router.shard.{attrs['shard']}").inc()
            metrics.counter("admission.admitted").inc()
            if attrs.get("redirected", False):
                metrics.counter("router.redirected").inc()
        elif kind == SHED:
            metrics.counter("admission.shed").inc()
        elif kind == SLO_BREACH:
            lc = self._live_chain
            if lc is not None:
                lc._maybe_trigger(kind, time, query_id, attrs)
            metrics.counter("slo.breaches").inc()
        elif kind == SLO_RECOVERED:
            metrics.counter("slo.recoveries").inc()
        elif kind == SCALE_UP:
            # Control plane (repro.control): capacity and quality
            # actuations show up as counters so profile/explain/diff
            # see controller activity without parsing the action log.
            lc = self._live_chain
            if lc is not None:
                lc._maybe_trigger(kind, time, query_id, attrs)
            metrics.counter("control.scale_ups").inc()
            metrics.gauge("control.replica_level").sample(
                time, attrs.get("level", 0)
            )
        elif kind == SCALE_DOWN:
            metrics.counter("control.scale_downs").inc()
            metrics.gauge("control.replica_level").sample(
                time, attrs.get("level", 0)
            )
        elif kind == DEGRADE_MODE:
            lc = self._live_chain
            if lc is not None:
                lc._maybe_trigger(kind, time, query_id, attrs)
            metrics.counter("control.degrades").inc()
        elif kind == RESTORE:
            metrics.counter("control.restores").inc()
        elif kind == ADMISSION_CHANGE:
            metrics.counter("control.admission_changes").inc()
            metrics.gauge("control.queue_limit").sample(
                time, attrs.get("queue_limit", 0)
            )
        elif kind == SCHED_PHASE:
            metrics.counter(
                f"sched.phase_s.{attrs.get('phase', '?')}"
            ).inc(float(attrs.get("wall_s", 0.0)))
        elif kind == QUEUE_WAIT:
            # Created lazily: unprofiled runs never see this span kind,
            # so their registries keep the pre-profiling metric set.
            metrics.histogram(
                "task.queue_wait_s", self._compression
            ).add(float(attrs["wait_s"]))
        elif kind == SNAPSHOT:
            metrics.counter("telemetry.snapshots").inc()
        elif kind == ANOMALY:
            metrics.counter("anomaly.detected").inc()
            metrics.counter(
                f"anomaly.{attrs.get('signal', '?')}"
            ).inc()
        elif kind == INCIDENT:
            metrics.counter("incident.bundles").inc()

    def finalize(self, end_time: float) -> None:
        """Freeze the trace end; later ``utilization`` uses it."""
        if end_time > self.end_time:
            self.end_time = end_time
        if self.slo is not None:
            self.slo.finalize(end_time)
        if self.live is not None:
            self.live.finalize(end_time)

    def utilization(self, duration: Optional[float] = None) -> Dict[int, float]:
        """Per-worker busy fraction over the run (or ``duration``).

        Committed work may extend past the last event (a task can still
        be "executing" when the trace ends); fractions are clipped to 1.
        """
        horizon = duration if duration is not None else self.end_time
        if not horizon or horizon <= 0:
            return {w: 0.0 for w in self.worker_busy}
        return {
            worker: min(busy / horizon, 1.0)
            for worker, busy in sorted(self.worker_busy.items())
        }
