"""Structured query-lifecycle spans emitted by the serving simulator.

A span is one timestamped point (or interval, for task executions) in a
query's journey through the server:

    arrival -> enter_buffer -> schedule -> commit -> plan/dispatch
            -> task_done -> complete | reject        (buffered policies)
    arrival -> dispatch -> task_done -> complete | reject   (immediate)

Under an active :class:`~repro.faults.plan.FaultPlan` a task may also
go ``dispatch -> task_failed -> retry -> dispatch -> ...``, workers
emit ``worker_down``/``worker_up`` around crash windows, and a query
whose tasks partially failed ends in ``degraded_answer`` +
``complete`` instead of being dropped.

Span times are *simulated* seconds. Wall-clock measurements (e.g. real
scheduler latency) travel in span attributes, never in ``time``. The
kind constants double as the vocabulary of the exporters and of the
span-sequence assertions in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

# --- span kinds (query lifecycle) ----------------------------------------
ARRIVAL = "arrival"            # query entered the system
ENTER_BUFFER = "enter_buffer"  # query joined the scheduling buffer
SCHEDULE = "schedule"          # scheduler invoked over a buffer snapshot
COMMIT = "commit"              # a scheduler plan committed (post-overhead)
PLAN = "plan"                  # subset chosen for one query (size attr)
DISPATCH = "dispatch"          # one model task handed to a worker
TASK_DONE = "task_done"        # one model task finished
COMPLETE = "complete"          # all of a query's tasks finished
REJECT = "reject"              # query will never be served
REQUEUE = "requeue"            # planned query returned to the buffer
FAST_PATH = "fast_path"        # idle-system shortcut (Exp-5) taken

# --- fault lifecycle (repro.faults) --------------------------------------
TASK_FAILED = "task_failed"    # one execution failed (reason attr:
                               # "fault" | "timeout" | "crash")
RETRY = "retry"                # failed/revoked task re-dispatched
WORKER_DOWN = "worker_down"    # worker entered a downtime window
WORKER_UP = "worker_up"        # worker recovered
DEGRADED = "degraded_answer"   # query answered from a partial subset

# --- SLO / explainability (repro.obs.slo, repro.obs.explain) -------------
SLO_BREACH = "slo_breach"      # alert-window burn rate crossed the
                               # breach threshold (overload episode opens)
SLO_RECOVERED = "slo_recovered"  # burn rate fell back under the
                               # recovery threshold (episode closes)
DECISION = "decision"          # one explained scheduling decision
                               # (mirrors a DecisionRecord)

# --- fleet front-end (repro.fleet) ---------------------------------------
ROUTE = "route"                # fleet router placed a query on a shard
                               # (shard, backlog, policy attrs; redirected
                               # marks an admission-control re-route)
SHED = "shed"                  # fleet admission control dropped a query
                               # before any shard buffered it (always
                               # followed by a reject span, reason="shed")

# --- control plane (repro.control) ---------------------------------------
SCALE_UP = "scale_up"          # controller added one replica set to a shard
                               # (shard, level, burn attrs; capacity serves
                               # after the configured warm-up)
SCALE_DOWN = "scale_down"      # controller retired the most recently added
                               # replica set (never below baseline)
DEGRADE_MODE = "degrade"       # controller flipped the fleet into
                               # cheap-subset mode (plans clamped to
                               # cheap_mask while a breach episode is open)
RESTORE = "restore"            # controller restored full-quality serving
                               # after the episode closed
ADMISSION_CHANGE = "admission_change"  # controller tightened or relaxed the
                               # fleet admission queue_limit
                               # (queue_limit, tightened attrs)

# --- learned scheduler (repro.scheduling.policy_fast) --------------------
SCHED_FALLBACK = "sched_fallback"  # one learned-scheduler invocation's
                               # regret-gate verdict (fallback bool +
                               # predicted_regret attrs); emitted per
                               # schedule() call only when the policy's
                               # scheduler is a LearnedScheduler

# --- profiling (repro.obs.profile) ---------------------------------------
SCHED_PHASE = "sched_phase"    # real wall-clock of one internal scheduler
                               # step phase for one invocation (phase,
                               # wall_s attrs); emitted only when the
                               # tracer's profile flag is on
QUEUE_WAIT = "queue_wait"      # one task waited behind a busy worker
                               # before starting (wait_s attr); emitted
                               # only when the tracer's profile flag is on

# --- live telemetry (repro.obs.live) -------------------------------------
SNAPSHOT = "snapshot"          # one telemetry snapshot boundary flushed
                               # (seq plus arrived/completed/rejected
                               # window deltas); emitted only when the
                               # tracer carries a LiveTelemetry
ANOMALY = "anomaly"            # the live watchdog flagged the current
                               # window against its baseline (signal,
                               # window/baseline stats attrs)
INCIDENT = "incident"          # the flight recorder froze its ring into
                               # an incident bundle (trigger, seq,
                               # spans attrs)

KINDS = (
    ARRIVAL, ENTER_BUFFER, SCHEDULE, COMMIT, PLAN, DISPATCH,
    TASK_DONE, COMPLETE, REJECT, REQUEUE, FAST_PATH,
    TASK_FAILED, RETRY, WORKER_DOWN, WORKER_UP, DEGRADED,
    SLO_BREACH, SLO_RECOVERED, DECISION,
    ROUTE, SHED,
    SCALE_UP, SCALE_DOWN, DEGRADE_MODE, RESTORE, ADMISSION_CHANGE,
    SCHED_FALLBACK,
    SCHED_PHASE, QUEUE_WAIT,
    SNAPSHOT, ANOMALY, INCIDENT,
)


@dataclass
class Span:
    """One lifecycle event.

    Attributes:
        kind: One of the module's kind constants.
        time: Simulated time (seconds) the event happened.
        query_id: Query the span belongs to; ``-1`` for run-level spans
            (e.g. ``schedule``/``commit``, which cover a whole batch).
        attrs: Kind-specific payload (e.g. ``worker``/``start``/``finish``
            on ``dispatch``, ``wall_s`` on ``schedule``, ``slack`` on
            ``complete``).
    """

    kind: str
    time: float
    query_id: int = -1
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly representation (for the JSONL exporter)."""
        out: Dict[str, object] = {"kind": self.kind, "time": self.time}
        if self.query_id >= 0:
            out["query_id"] = self.query_id
        out.update(self.attrs)
        return out


def spans_of_kind(spans: Iterable[Span], kind: str) -> List[Span]:
    """Filter helper used by tests and exporters."""
    return [span for span in spans if span.kind == kind]


def span_sequence(spans: Iterable[Span], query_id: int) -> List[str]:
    """The ordered kind sequence one query went through (test helper)."""
    return [
        span.kind for span in spans
        if span.query_id == query_id and span.kind != SCHEDULE
    ]
