"""Observability for the serving stack: tracing, metrics, exporters.

The serving simulator (and any future real scheduler) emits structured
query-lifecycle spans through a :class:`Tracer`; the default
:data:`NULL_TRACER` makes that free when disabled. A
:class:`RecordingTracer` turns a run into (1) a span stream exportable
as JSONL or a Chrome/Perfetto timeline, (2) a
:class:`MetricsRegistry` of counters, time-keyed gauges and streaming
histograms backed by mergeable :class:`QuantileDigest` sketches, and
(3) a plain-text run report. An :class:`SLOMonitor` watches the span
stream online (rolling-window burn rates, overload episodes), and an
opt-in :class:`DecisionLog` captures per-query scheduler decision
records. The live plane (:class:`LiveTelemetry`, attached via
``RecordingTracer(live=...)``) adds streaming snapshots, an always-on
flight recorder that freezes breach-triggered incident bundles, and a
:class:`MetricsServer` HTTP endpoint for mid-run scrapes. See
README.md "Observability" for the span schema and metric names.
"""

from repro.obs.digest import QuantileDigest
from repro.obs.explain import DecisionLog, DecisionRecord, format_decision
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.profile import (
    LatencyAttributor,
    ProfileDiff,
    QueryAttribution,
    diff_profiles,
    read_profile_json,
    write_profile_json,
)
from repro.obs.live import (
    INCIDENT_SCHEMA,
    AnomalyWatchdog,
    FlightRecorder,
    LiveConfig,
    LiveTelemetry,
    TelemetrySnapshot,
    incident_fingerprint,
    read_incident_json,
    rollup_snapshots,
    write_incident_json,
)
from repro.obs.report import (
    render_incident,
    render_profile,
    render_report,
    render_slo,
    render_top,
    sparkline,
)
from repro.obs.serve import MetricsServer
from repro.obs.slo import Episode, SLOConfig, SLOMonitor, replay_spans
from repro.obs.spans import KINDS, Span, span_sequence, spans_of_kind
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    Tracer,
)
from repro.obs.export import (
    chrome_trace_events,
    metrics_to_prometheus,
    parse_prometheus_text,
    prometheus_text,
    read_spans_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    "QuantileDigest",
    "Span",
    "KINDS",
    "span_sequence",
    "spans_of_kind",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "NULL_TRACER",
    "SLOConfig",
    "SLOMonitor",
    "Episode",
    "replay_spans",
    "DecisionLog",
    "DecisionRecord",
    "format_decision",
    "chrome_trace_events",
    "metrics_to_prometheus",
    "prometheus_text",
    "parse_prometheus_text",
    "read_spans_jsonl",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
    "LatencyAttributor",
    "QueryAttribution",
    "ProfileDiff",
    "diff_profiles",
    "read_profile_json",
    "write_profile_json",
    "render_profile",
    "render_report",
    "render_slo",
    "sparkline",
    "LiveConfig",
    "LiveTelemetry",
    "TelemetrySnapshot",
    "AnomalyWatchdog",
    "FlightRecorder",
    "INCIDENT_SCHEMA",
    "incident_fingerprint",
    "read_incident_json",
    "write_incident_json",
    "rollup_snapshots",
    "MetricsServer",
    "render_incident",
    "render_top",
]
