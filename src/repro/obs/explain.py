"""Scheduler decision explainability: why did this query get that mask?

Schemble's scheduler is the one component whose output is hard to audit
after the fact: the DP collapses a whole buffer of deadlines, scores
and busy workers into one mask per query, and the span stream only
records the outcome. An opt-in :class:`DecisionLog` captures, at
schedule time inside ``EnsembleServer``, one :class:`DecisionRecord`
per planned query: the inputs the scheduler saw (discrepancy score,
buffer occupancy, per-model busy horizon), what it explored (DP
frontier size and reward cells, candidate masks that were feasible for
this query), what it chose, and what it predicted — then backfills the
realized finish time and slack when the query actually completes, so
prediction error is a first-class queryable quantity.

The log is opt-in and zero-cost when absent: the server guards every
capture site on ``explain is not None`` and the DP's frontier-stats
hook is off unless the log enables it, so the default path stays
bit-identical (re-guarded by ``benchmarks/bench_obs_overhead.py``).

Records export as JSONL (one decision per line) and load back for the
``python -m repro explain <query-id>`` CLI command.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["DecisionRecord", "DecisionLog", "format_decision"]


@dataclass
class DecisionRecord:
    """One explained scheduling decision for one query.

    A query that is requeued and re-planned gets one record per
    planning round; the last record is the one that dispatched (or
    finally rejected) it.

    Attributes:
        query_id: The query this decision concerns.
        decided_at: Simulated time the scheduler ran over the buffer.
        committed_at: Simulated time the plan committed (decision time
            plus modeled scheduling overhead); for immediate-mode and
            fast-path decisions this equals ``decided_at``.
        action: ``"dispatch"`` | ``"reject"`` | ``"requeue"`` |
            ``"fallback"`` (forced fastest model) | ``"fast_path"`` |
            ``"immediate"``.
        chosen_mask: Execution mask the query ended up with (0 when
            rejected).
        score: Difficulty/discrepancy score the policy predicted for
            the query's sample (NaN when the policy has none).
        deadline: Absolute deadline of the query.
        batch_size: Queries in the scheduler's buffer snapshot.
        buffer_depth: Queries left waiting after the snapshot was taken.
        busy_until: Per-model committed work (seconds of backlog) the
            scheduler saw at decision time.
        frontier_size: DP Pareto-frontier entries after the final
            level (0 when the scheduler exposes no stats).
        frontier_cells: Distinct quantised-reward cells in that
            frontier.
        candidate_masks: Masks that were deadline-feasible for this
            query from at least one frontier entry (always includes 0,
            the skip).
        predicted_finish: Server's completion estimate for the chosen
            mask at commit time (None for rejections).
        predicted_slack: ``deadline - predicted_finish``.
        realized_finish: Actual completion time, backfilled when the
            query finishes (None if it never does).
        realized_slack: ``deadline - realized_finish``.
    """

    query_id: int
    decided_at: float
    committed_at: float
    action: str
    chosen_mask: int
    score: float = float("nan")
    deadline: float = float("nan")
    batch_size: int = 0
    buffer_depth: int = 0
    busy_until: List[float] = field(default_factory=list)
    frontier_size: int = 0
    frontier_cells: int = 0
    candidate_masks: List[int] = field(default_factory=list)
    predicted_finish: Optional[float] = None
    predicted_slack: Optional[float] = None
    realized_finish: Optional[float] = None
    realized_slack: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "DecisionRecord":
        """Rebuild a record serialized by :meth:`to_dict`."""
        return cls(**state)

    @property
    def prediction_error(self) -> Optional[float]:
        """``realized - predicted`` finish seconds (None when either
        side is missing) — positive means the query ran later than the
        scheduler expected."""
        if self.predicted_finish is None or self.realized_finish is None:
            return None
        return self.realized_finish - self.predicted_finish


class DecisionLog:
    """Collects :class:`DecisionRecord` entries during a serving run.

    Pass one to ``EnsembleServer(..., explain=log)``; after ``run()``
    the log holds every planning decision in commit order. Memory is
    linear in the number of decisions (this is the opt-in debugging
    path, not the always-on metrics path).
    """

    def __init__(self):
        self.records: List[DecisionRecord] = []
        self._open: Dict[int, List[int]] = {}

    def __len__(self) -> int:
        return len(self.records)

    def add(self, record: DecisionRecord) -> None:
        """Append one decision (call order = commit order)."""
        self._open.setdefault(record.query_id, []).append(
            len(self.records)
        )
        self.records.append(record)

    def realize(self, query_id: int, finish: float, slack: float) -> None:
        """Backfill the realized outcome onto the query's latest
        decision (no-op for queries that were never explained)."""
        indices = self._open.get(query_id)
        if not indices:
            return
        record = self.records[indices[-1]]
        record.realized_finish = finish
        record.realized_slack = slack

    def for_query(self, query_id: int) -> List[DecisionRecord]:
        """All decisions about ``query_id``, in planning order."""
        return [self.records[i] for i in self._open.get(query_id, [])]

    def latest_for(self, query_id: int) -> Optional[DecisionRecord]:
        """The decision that finally dispatched (or rejected) the
        query — what the blame report cross-links a slow query to.
        None for queries that were never explained."""
        indices = self._open.get(query_id)
        return self.records[indices[-1]] if indices else None

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """One JSON object per decision; parent dirs are created."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_dict()) + "\n")
        return path

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "DecisionLog":
        """Load a log written by :meth:`write_jsonl`."""
        log = cls()
        for line in Path(path).read_text().splitlines():
            if line.strip():
                log.add(DecisionRecord.from_dict(json.loads(line)))
        return log


def format_decision(record: DecisionRecord, n_models: int = 0) -> str:
    """Human-readable multi-line rendering (the ``explain`` command)."""

    def mask_bits(mask: int) -> str:
        if n_models <= 0:
            return bin(mask)
        return "{" + ",".join(
            f"m{k}" for k in range(n_models) if (mask >> k) & 1
        ) + "}"

    lines = [
        f"query {record.query_id}: {record.action} "
        f"mask={record.chosen_mask} {mask_bits(record.chosen_mask)}",
        f"  decided at t={record.decided_at:.4f}s, committed at "
        f"t={record.committed_at:.4f}s, deadline t={record.deadline:.4f}s",
        f"  score={record.score:.4f}  batch={record.batch_size}  "
        f"buffer_after={record.buffer_depth}",
        "  busy_until=[" + ", ".join(
            f"{b:.4f}" for b in record.busy_until
        ) + "]",
    ]
    if record.frontier_size:
        lines.append(
            f"  dp frontier: {record.frontier_size} entries over "
            f"{record.frontier_cells} reward cells; "
            f"{len(record.candidate_masks)} feasible masks "
            f"{record.candidate_masks}"
        )
    if record.predicted_finish is not None:
        lines.append(
            f"  predicted: finish t={record.predicted_finish:.4f}s "
            f"(slack {record.predicted_slack:+.4f}s)"
        )
    if record.realized_finish is not None:
        error = record.prediction_error
        suffix = f", error {error:+.4f}s" if error is not None else ""
        lines.append(
            f"  realized:  finish t={record.realized_finish:.4f}s "
            f"(slack {record.realized_slack:+.4f}s{suffix})"
        )
    elif record.action not in ("reject",):
        lines.append("  realized:  (never completed)")
    return "\n".join(lines)
