"""Streaming quantile digests: bounded-memory percentile estimation.

:class:`QuantileDigest` is a from-scratch merging *t*-digest (Dunning &
Ertl): observations accumulate in a small insertion buffer and are
periodically merged into a sorted list of weighted centroids whose
permitted width follows the ``k2`` (log-odds) scale function

    k(q) = (δ/Z) · ln(q / (1 − q))

so centroids near the median absorb many points while the tails stay a
handful of points wide — exactly where deadline-miss analysis needs
resolution. The number of retained centroids is ``O(compression)``,
independent of how many values stream through, and the whole state of
two digests can be merged losslessly into one — the property that lets
per-segment or per-worker digests roll up into a run-level percentile
without keeping raw samples.

Everything is deterministic (no sampling), so traced runs reproduce
bit-identically. Accuracy against exact quantiles on the diurnal trace
is locked by ``tests/obs/test_digest.py`` (≤ 1% relative error at the
report percentiles while holding ≥ 100x fewer values than the old
reservoir).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

__all__ = ["QuantileDigest"]


class QuantileDigest:
    """Mergeable bounded-memory quantile sketch (merging t-digest).

    Args:
        compression: Accuracy/memory knob δ. The digest keeps ``O(δ)``
            centroids (~0.6δ after a merge in practice); quantile error
            shrinks as ``O(1/δ)`` with the k2 scale concentrating
            accuracy at the tails. The default of 128 holds p50/p95/p99
            within 1% relative error on the diurnal-trace latency/slack
            distributions while storing ~80 centroids — ≥ 100x fewer
            values than exact quantiles over a 10k-sample run retain.
        buffer_size: Insertion buffer length; larger buffers merge less
            often (amortised O(log b) per add). Defaults to ``8δ``.
    """

    def __init__(self, compression: int = 128, buffer_size: int = 0):
        if compression < 8:
            raise ValueError(
                f"compression must be >= 8, got {compression}"
            )
        self.compression = int(compression)
        self._buffer_size = (
            int(buffer_size) if buffer_size > 0 else 8 * self.compression
        )
        self._means = np.zeros(0)
        self._weights = np.zeros(0)
        self._buf: List[float] = []
        self._reverse = False  # alternate merge direction per pass
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    # -- ingestion -----------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one observation into the digest."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._buf.append(value)
        if len(self._buf) >= self._buffer_size:
            self._compress()

    def merge(self, other: "QuantileDigest") -> None:
        """Absorb ``other``'s full state (both stay valid; self grows)."""
        if other.count == 0:
            return
        other._compress()
        self._compress()
        self._means = np.concatenate([self._means, other._means])
        self._weights = np.concatenate([self._weights, other._weights])
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._merge_sorted()

    def _compress(self) -> None:
        """Drain the insertion buffer into the centroid list."""
        if not self._buf:
            return
        fresh = np.asarray(self._buf, dtype=float)
        self._buf.clear()
        self._means = np.concatenate([self._means, fresh])
        self._weights = np.concatenate(
            [self._weights, np.ones(fresh.shape[0])]
        )
        self._merge_sorted()

    def _q_limit(self, q_left: float, total: float) -> float:
        """Max cumulative quantile one centroid starting at ``q_left``
        may cover, from the k2 (log-odds) scale function

            k(q) = (δ/Z) · ln(q / (1 − q)),   Z = 4·ln(n/δ) + 21

        whose resolution grows like ``1/q(1−q)`` at the extremes —
        tail centroids stay a handful of points wide, which is what
        keeps p99 within 1% (k1's ``1/√q(1−q)`` lets ~n/δ points pool
        into a single p99 centroid)."""
        z = 4.0 * math.log(max(total / self.compression, 1.0)) + 21.0
        if q_left <= 0.0:
            return 0.0  # extreme centroids stay singletons
        if q_left >= 1.0:
            return 1.0
        odds = q_left / (1.0 - q_left) * math.exp(z / self.compression)
        return odds / (1.0 + odds)

    def _merge_sorted(self) -> None:
        """One merge pass: sort centroids, then greedily coalesce
        neighbours while the scale budget allows (k-span ≤ 1).

        Alternate passes sweep right-to-left (mirrored quantiles) so the
        greedy coalescing bias does not accumulate on one side — without
        this, repeated merges let mid-distribution centroids drift and
        p50 error grows with stream length.
        """
        order = np.argsort(self._means, kind="stable")
        means = self._means[order]
        weights = self._weights[order]
        if self._reverse:
            means = means[::-1]
            weights = weights[::-1]
        self._reverse = not self._reverse
        total = float(weights.sum())

        out_means: List[float] = [float(means[0])]
        out_weights: List[float] = [float(weights[0])]
        seen = 0.0  # weight fully to the sweep side of the centroid
        limit = self._q_limit(0.0, total)
        for i in range(1, means.shape[0]):
            candidate = out_weights[-1] + float(weights[i])
            if (seen + candidate) / total <= limit:
                # Coalesce: weighted mean keeps the centroid unbiased.
                out_means[-1] += (
                    (float(means[i]) - out_means[-1])
                    * float(weights[i]) / candidate
                )
                out_weights[-1] = candidate
            else:
                seen += out_weights[-1]
                limit = self._q_limit(seen / total, total)
                out_means.append(float(means[i]))
                out_weights.append(float(weights[i]))
        self._means = np.asarray(out_means)
        self._weights = np.asarray(out_weights)
        if self._means.shape[0] > 1 and self._means[0] > self._means[-1]:
            self._means = self._means[::-1].copy()
            self._weights = self._weights[::-1].copy()

    # -- queries -------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def n_centroids(self) -> int:
        """Retained values (centroids + pending buffer) — the memory
        bound the accuracy tests compare against the old reservoir."""
        return int(self._means.shape[0]) + len(self._buf)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact min/max at q ∈ {0, 1})."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        self._compress()
        means, weights = self._means, self._weights
        if means.shape[0] == 1:
            return float(means[0])
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        total = float(weights.sum())
        target = q * total
        # Centroid i covers the weight interval centred on its midpoint
        # rank; interpolate linearly between adjacent midpoints, with
        # the exact min/max anchoring the outermost half-centroids.
        cum = np.cumsum(weights)
        mids = cum - weights / 2.0
        if target <= mids[0]:
            left_span = mids[0]
            if left_span <= 0:
                return self.min
            frac = target / left_span
            return float(self.min + frac * (means[0] - self.min))
        if target >= mids[-1]:
            right_span = total - mids[-1]
            if right_span <= 0:
                return self.max
            frac = (target - mids[-1]) / right_span
            return float(means[-1] + frac * (self.max - means[-1]))
        hi = int(np.searchsorted(mids, target, side="left"))
        lo = hi - 1
        span = mids[hi] - mids[lo]
        frac = 0.0 if span <= 0 else (target - mids[lo]) / span
        return float(means[lo] + frac * (means[hi] - means[lo]))

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly full state (round-trips via :meth:`from_dict`)."""
        self._compress()
        return {
            "compression": self.compression,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "means": [float(v) for v in self._means],
            "weights": [float(v) for v in self._weights],
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "QuantileDigest":
        """Rebuild a digest serialized by :meth:`to_dict`."""
        digest = cls(compression=int(state["compression"]))
        digest.count = int(state["count"])
        digest.total = float(state["total"])
        digest.min = (
            float(state["min"]) if state["min"] is not None else float("inf")
        )
        digest.max = (
            float(state["max"]) if state["max"] is not None
            else float("-inf")
        )
        digest._means = np.asarray(state["means"], dtype=float)
        digest._weights = np.asarray(state["weights"], dtype=float)
        return digest
