"""Plain-text run report for a traced serving run.

``render_report`` turns a :class:`~repro.serving.records.ServingResult`
plus the :class:`~repro.obs.tracer.RecordingTracer` that observed it
into the report the ``python -m repro trace`` subcommand prints: query
outcomes, latency and deadline-slack percentiles, buffer depth over
simulated time (sparkline), per-worker utilization, and scheduler
invocation cost in both simulated and real wall-clock terms.

``render_profile`` is the companion for ``python -m repro profile``:
the per-phase latency attribution table, DP step-phase wall clock, and
the top-K blame report with each query's critical task/worker chain
(see :mod:`repro.obs.profile`).

``render_top`` and ``render_incident`` are the live-ops views:
``render_top`` formats one console frame from the
:class:`~repro.obs.live.LiveTelemetry` planes of a running (or
finished) run — per-source window rates, quantiles from the snapshot
digest checkpoints, a throughput sparkline and the incident tally —
and ``render_incident`` is the post-mortem header for one frozen
incident bundle (``python -m repro incident``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.metrics.tables import format_table
from repro.obs.tracer import RecordingTracer

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray) -> str:
    """Unicode block sparkline of ``values`` scaled to their max."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    peak = float(values.max())
    if peak <= 0:
        return _BLOCKS[0] * values.size
    levels = np.minimum(
        (values / peak * (len(_BLOCKS) - 1)).round().astype(int),
        len(_BLOCKS) - 1,
    )
    return "".join(_BLOCKS[level] for level in levels)


def _percentile_row(label: str, values: np.ndarray) -> List[object]:
    if values.size == 0:
        nan = float("nan")
        return [label, 0, nan, nan, nan, nan, nan]
    return [
        label,
        int(values.size),
        float(values.mean()),
        float(np.percentile(values, 50)),
        float(np.percentile(values, 95)),
        float(np.percentile(values, 99)),
        float(values.max()),
    ]


def _fault_lines(result, tracer: RecordingTracer) -> List[str]:
    """Fault & degraded-mode section — empty for fault-free runs."""
    metrics = tracer.metrics
    failed = int(metrics.counter("tasks.failed").value)
    retried = int(metrics.counter("tasks.retried").value)
    crashes = int(metrics.counter("workers.crashes").value)
    degraded = int(metrics.counter("queries.degraded").value)
    if not (failed or retried or crashes or degraded):
        return []
    lines = [
        "fault injection & degraded mode:",
        f"  task failures: {failed}  retries: {retried}  "
        f"worker crashes: {crashes}  degraded answers: {degraded} "
        f"({100.0 * result.degraded_rate():.1f}% of queries)",
    ]
    by_reason = []
    for reason in ("fault", "timeout", "crash"):
        count = int(metrics.counter(f"tasks.failed.{reason}").value)
        if count:
            by_reason.append(f"{reason}={count}")
    if by_reason:
        lines.append("  failure reasons: " + "  ".join(by_reason))
    if tracer.worker_downtime:
        downtime = "  ".join(
            f"w{worker}={seconds:.2f}s"
            for worker, seconds in sorted(tracer.worker_downtime.items())
        )
        lines.append(f"  worker downtime: {downtime}")
    lines.append("")
    return lines


def _digest_lines(metrics) -> List[str]:
    """Online-percentile section: what the bounded-memory digests saw.

    These are the *streaming* estimates (t-digest-backed histograms fed
    span by span), printed next to the exact post-hoc table above so
    the two can be eyeballed against each other.
    """
    lines = ["streaming digests (online estimates, bounded memory):"]
    for name in ("query.latency_s", "deadline.slack_s"):
        if name not in metrics:
            continue
        hist = metrics.get(name)
        if hist.count == 0:
            lines.append(f"  {name}: no observations")
            continue
        lines.append(
            f"  {name}: n={hist.count}  retained={hist.n_retained()}  "
            f"p50={hist.quantile(0.5):.4f}  p95={hist.quantile(0.95):.4f}  "
            f"p99={hist.quantile(0.99):.4f}"
        )
    lines.append("")
    return lines


def _slo_lines(monitor) -> List[str]:
    """SLO section — rolling windows, burn rates, detected episodes."""
    config = monitor.config
    summary = monitor.summary()
    lines = [
        f"slo (miss budget {100.0 * config.miss_target:.1f}%, "
        f"alert window {config.alert_window:g}s, "
        f"breach at burn >= {config.breach_burn:g}x):",
        f"  run total: {summary['events']} events  "
        f"miss rate {100.0 * summary['miss_rate']:.1f}%"
        if summary["events"]
        else "  run total: no resolved queries",
    ]
    for length, stats in sorted(summary["windows"].items()):
        if stats["events"]:
            lines.append(
                f"  window {length:g}s: events={int(stats['events'])}  "
                f"miss={100.0 * stats['miss_rate']:.1f}%  "
                f"burn={stats['burn_rate']:.2f}x"
            )
        else:
            lines.append(f"  window {length:g}s: empty")
    episodes = monitor.episodes
    if episodes:
        lines.append(f"  overload episodes: {len(episodes)}")
        for i, episode in enumerate(episodes):
            end = (
                f"{episode.end:.2f}s" if episode.end is not None
                else "open at trace end"
            )
            lines.append(
                f"    #{i + 1}: t={episode.start:.2f}s -> {end} "
                f"(peak burn {episode.peak_burn:.2f}x)"
            )
    else:
        lines.append("  overload episodes: none detected")
    lines.append("")
    return lines


def render_slo(monitor) -> str:
    """Standalone SLO section text — the ``python -m repro slo`` output
    (the same section ``render_report`` embeds for live-monitored runs).
    """
    return "\n".join(_slo_lines(monitor)).rstrip("\n")


def render_report(
    result,
    tracer: RecordingTracer,
    duration: Optional[float] = None,
    n_bins: int = 48,
) -> str:
    """Render the run report text.

    Args:
        result: The :class:`ServingResult` of the traced run.
        tracer: The recording tracer that observed it.
        duration: Trace duration in simulated seconds; defaults to the
            tracer's last event time.
        n_bins: Time bins for the buffer-depth timeline.
    """
    metrics = tracer.metrics
    horizon = duration if duration is not None else tracer.end_time
    horizon = max(float(horizon), 1e-9)

    n = len(result)
    processed = sum(r.processed for r in result.records)
    rejected = sum(r.rejected for r in result.records)
    lines = [
        f"serving run report — policy={result.policy_name!r}",
        f"  queries: {n}  processed: {processed}  rejected: {rejected}  "
        f"deadline-miss rate: {result.deadline_miss_rate():.3f}",
        f"  simulated duration: {horizon:.3f}s  "
        f"spans: {len(tracer.spans)}",
        "",
    ]
    lines.extend(_fault_lines(result, tracer))

    stats = result.latency_stats()
    slack = result.deadline_slack()
    lines.append(format_table(
        ["metric", "n", "mean", "p50", "p95", "p99", "max"],
        [
            ["latency (s)", int(result.latencies().size), stats["mean"],
             stats["p50"], stats["p95"], stats["p99"], stats["max"]],
            _percentile_row("deadline slack (s)", slack),
        ],
        title="latency & deadline slack (positive slack = met early)",
    ))
    lines.append("")

    lines.extend(_digest_lines(metrics))
    slo = getattr(tracer, "slo", None)
    if slo is not None:
        lines.extend(_slo_lines(slo))

    depth = metrics.gauge("buffer.depth")
    binned = depth.binned_max(horizon, n_bins)
    depth_summary = depth.summary()
    lines.append(
        f"buffer depth over time ({n_bins} bins of "
        f"{horizon / n_bins:.3f}s, peak={binned.max():.0f}, "
        f"mean sample={0.0 if depth_summary['samples'] == 0 else depth_summary['mean']:.2f})"
    )
    lines.append("  |" + sparkline(binned) + "|")
    lines.append("")

    utilization = tracer.utilization(horizon)
    if utilization:
        rows = [
            [f"worker {worker}",
             f"model {tracer.worker_model.get(worker, '?')}",
             tracer.worker_busy[worker],
             100.0 * frac]
            for worker, frac in utilization.items()
        ]
        lines.append(format_table(
            ["worker", "serves", "busy (s)", "utilization %"],
            rows,
            title="per-worker utilization (busy seconds / trace duration)",
        ))
    else:
        lines.append("per-worker utilization: no tasks dispatched")
    lines.append("")

    invocations = int(metrics.counter("scheduler.invocations").value)
    lines.append(
        f"scheduler: {invocations} invocations, "
        f"{result.scheduler_work_units} work units, "
        f"total real wall-clock {result.scheduler_wall_time * 1e3:.2f}ms"
    )
    if invocations:
        wall = metrics.histogram("scheduler.wall_s").summary()
        sim = metrics.histogram("scheduler.overhead_sim_s").summary()
        batch = metrics.histogram("scheduler.batch_size").summary()
        plan = metrics.histogram("plan.size").summary()
        lines.append(format_table(
            ["per invocation", "mean", "p50", "p95", "p99", "max"],
            [
                ["real wall-clock (ms)"] + [
                    wall[k] * 1e3 for k in ("mean", "p50", "p95", "p99", "max")
                ],
                ["simulated overhead (ms)"] + [
                    sim[k] * 1e3 for k in ("mean", "p50", "p95", "p99", "max")
                ],
                ["batch size"] + [
                    batch[k] for k in ("mean", "p50", "p95", "p99", "max")
                ],
                ["plan size (models/query)"] + [
                    plan[k] for k in ("mean", "p50", "p95", "p99", "max")
                ],
            ],
        ))
    return "\n".join(lines)


def _top_row(source: str, snap) -> List[object]:
    """One ``render_top`` table row from a source's latest snapshot."""
    window = snap.counters
    totals = snap.totals
    done = totals.get("queries.completed", 0.0)
    rejected = totals.get("queries.rejected", 0.0)
    resolved = done + rejected
    reject_pct = 100.0 * rejected / resolved if resolved else 0.0
    p50 = snap.quantile("query.latency_s", 0.5)
    p95 = snap.quantile("query.latency_s", 0.95)
    return [
        source,
        f"{snap.time:.1f}",
        f"{window.get('queries.arrived', 0.0):.0f}"
        f"/{window.get('queries.completed', 0.0):.0f}"
        f"/{window.get('queries.rejected', 0.0):.0f}",
        f"{done:.0f}",
        f"{reject_pct:.1f}",
        f"{1e3 * p50:.1f}" if p50 == p50 else "-",
        f"{1e3 * p95:.1f}" if p95 == p95 else "-",
        f"{snap.gauges.get('buffer.depth', 0.0):.0f}",
    ]


def render_top(lives, n_bins: int = 48) -> str:
    """One console frame of the live telemetry plane(s).

    Args:
        lives: The :class:`~repro.obs.live.LiveTelemetry` planes to
            show, one table row each (first is the primary source, the
            one whose throughput sparkline and incident tally render
            below the table). With several planes (a fleet's shards) a
            rolled-up ``fleet*`` row is prepended via
            :func:`~repro.obs.live.rollup_snapshots`.
        n_bins: Recent snapshot windows in the throughput sparkline.
    """
    from repro.obs.live import rollup_snapshots

    lives = list(lives)
    if not lives:
        return "live top: no telemetry planes attached"
    rows = []
    # With a primary plane plus >= 2 shard planes, prepend a rolled-up
    # row over the shards only (rolling the primary in too would
    # double-count: the merged replay already fed it every shard span).
    if len(lives) > 2:
        rolled = rollup_snapshots(
            [list(live.snapshots) for live in lives[1:]], source="fleet*"
        )
        if rolled:
            rows.append(_top_row("fleet*", rolled[-1]))
    for live in lives:
        snap = live.latest
        if snap is None:
            rows.append(
                [live.source, "-", "-/-/-", "0", "0.0", "-", "-", "-"]
            )
        else:
            rows.append(_top_row(live.source, snap))
    primary = lives[0]
    cadence = primary.config.cadence
    lines = [
        f"live top — {len(lives)} source"
        f"{'s' if len(lives) != 1 else ''}, "
        f"snapshot cadence {cadence:g}s",
        "",
        format_table(
            ["source", "t(s)", "win arr/done/rej", "done",
             "rej %", "p50 ms", "p95 ms", "depth"],
            rows,
        ),
        "",
    ]
    recent = list(primary.snapshots)[-n_bins:]
    if recent:
        done_per_window = np.asarray(
            [s.counters.get("queries.completed", 0.0) for s in recent]
        )
        lines.append(
            f"completed per {cadence:g}s window ({primary.source}, "
            f"last {len(recent)} windows, peak={done_per_window.max():.0f})"
        )
        lines.append("  |" + sparkline(done_per_window) + "|")
        lines.append("")
    total_inc = sum(len(live.incidents) for live in lives)
    suppressed = sum(live.suppressed for live in lives)
    anomalies = sum(
        live.watchdog.anomalies
        for live in lives if live.watchdog is not None
    )
    lines.append(
        f"incidents: {total_inc} frozen, {suppressed} suppressed, "
        f"{anomalies} anomalous windows"
    )
    for live in lives:
        for bundle in live.incidents:
            trigger = bundle["trigger"]
            lines.append(
                f"  [{live.source}] #{bundle['seq']}: "
                f"{trigger['kind']} @ t={trigger['time']:.2f}s "
                f"({bundle['window']['spans']} ring spans)"
            )
    return "\n".join(lines)


def render_incident(bundle) -> str:
    """Post-mortem header of one incident bundle: trigger, ring window,
    embedded snapshots, control-log slice and the frozen blame list
    (``python -m repro incident`` appends the full profile re-derived
    from the bundle's spans)."""
    trigger = bundle["trigger"]
    window = bundle["window"]
    lines = [
        f"incident bundle — schema {bundle['schema']}  "
        f"source={bundle['source']}  seq={bundle['seq']}",
        f"  trigger: {trigger['kind']} @ t={trigger['time']:.3f}s"
        + (
            f" (query {trigger['query_id']})"
            if trigger.get("query_id", -1) >= 0 else ""
        ),
    ]
    if trigger.get("attrs"):
        parts = "  ".join(
            f"{key}={value}" for key, value in trigger["attrs"].items()
        )
        lines.append(f"    {parts}")
    lines.append(
        f"  ring window: t={window['start']:.3f}s -> {window['end']:.3f}s "
        f"({window['spans']} spans)"
    )
    totals = bundle.get("totals", {})
    if totals:
        keys = (
            "queries.arrived", "queries.completed", "queries.rejected",
            "slo.breaches",
        )
        shown = "  ".join(
            f"{key.split('.')[-1]}={totals[key]:.0f}"
            for key in keys if key in totals
        )
        if shown:
            lines.append(f"  totals at freeze: {shown}")
    snapshots = bundle.get("snapshots", [])
    if snapshots:
        tail = ", ".join(
            f"#{snap['seq']}@{snap['time']:g}s" for snap in snapshots
        )
        lines.append(f"  embedded snapshots: {tail}")
    control = bundle.get("control", [])
    if control:
        lines.append(f"  control actions in window: {len(control)}")
        for action in control:
            lines.append(
                f"    t={action['time']:.2f}s {action['kind']} "
                f"shard={action['shard']} level={action['level']} "
                f"burn={action['burn']:.2f}x"
            )
    blame = bundle.get("blame", [])
    if blame:
        lines.append(f"  blame (top {len(blame)} by latency at freeze):")
        for entry in blame:
            flags = "".join([
                " DEGRADED" if entry.get("degraded") else "",
                " MISSED" if entry.get("slack", 0.0) < 0 else "",
            ])
            lines.append(
                f"    q{entry['query_id']}: latency "
                f"{entry['latency']:.4f}s (slack "
                f"{entry['slack']:+.4f}s){flags} — dominant phase "
                f"{entry['dominant_phase']}"
            )
    decisions = bundle.get("decisions", {})
    if decisions:
        lines.append(
            "  decision records embedded for queries: "
            + ", ".join(f"q{qid}" for qid in decisions)
        )
    return "\n".join(lines)


def render_profile(attributor, top_k: int = 5) -> str:
    """Render a :class:`~repro.obs.profile.LatencyAttributor` as the
    ``python -m repro profile`` report: phase attribution percentiles,
    DP step-phase wall clock, and the top-``top_k`` blame entries with
    their critical-path chains."""
    from repro.obs.profile import PHASES

    artifact = attributor.to_artifact()
    counts = artifact["queries"]
    lines = [
        "latency attribution report",
        f"  attributed: {counts['attributed']}  "
        f"rejected (no phases): {counts['rejected']}  "
        f"degraded: {counts['degraded']}  retried: {counts['retried']}  "
        f"fast-path: {counts['fast_path']}  "
        f"deadline-breaching: {counts['breaching']}",
        "",
    ]

    rows = []
    latency_total = artifact["latency"]["total"]
    for phase in PHASES:
        stats = artifact["phases"][phase]
        share = (
            100.0 * stats["total"] / latency_total if latency_total else 0.0
        )
        rows.append([
            phase, stats["total"], share,
            stats["mean"], stats["p50"], stats["p95"], stats["max"],
        ])
    rows.append([
        "total latency", latency_total, 100.0 if latency_total else 0.0,
        artifact["latency"]["mean"], artifact["latency"]["p50"],
        artifact["latency"]["p95"], artifact["latency"]["max"],
    ])
    lines.append(format_table(
        ["phase", "total (s)", "share %", "mean", "p50", "p95", "max"],
        rows,
        title="per-query latency attribution (phases sum to latency)",
    ))
    lines.append("")

    if attributor.sched_phase_wall:
        wall_total = sum(attributor.sched_phase_wall.values())
        parts = "  ".join(
            f"{phase}={1e3 * seconds:.2f}ms"
            for phase, seconds in sorted(attributor.sched_phase_wall.items())
        )
        lines.append(
            f"dp step phases (real wall-clock, "
            f"{1e3 * wall_total:.2f}ms total): {parts}"
        )
        lines.append("")

    blame = attributor.blame(top_k)
    if blame:
        lines.append(f"blame report — top {len(blame)} by latency:")
        for a in blame:
            flags = "".join([
                " DEGRADED" if a.degraded else "",
                " MISSED" if a.slack < 0 else "",
            ])
            lines.append(
                f"  q{a.query_id}: latency {a.latency:.4f}s "
                f"(slack {a.slack:+.4f}s){flags} — dominant phase "
                f"{a.dominant_phase} "
                f"({a.phases[a.dominant_phase]:.4f}s); critical task "
                f"m{a.critical_model} on worker {a.critical_worker} "
                f"({a.attempts} attempt{'s' if a.attempts != 1 else ''})"
            )
            chain = attributor.critical_chain(a.query_id)
            if chain:
                shown = chain[-3:]
                blocked = ", ".join(
                    f"q{t.query_id}/m{t.model} "
                    f"[{t.start:.3f}-{t.finish:.3f}s]"
                    for t in shown
                )
                more = (
                    f" (+{len(chain) - len(shown)} earlier)"
                    if len(chain) > len(shown) else ""
                )
                lines.append(f"      blocked behind: {blocked}{more}")
    else:
        lines.append("blame report: no completed queries")
    return "\n".join(lines)
