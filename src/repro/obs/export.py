"""Span exporters: JSONL and Chrome ``trace_event`` timelines.

The JSONL export is one span per line — greppable, streamable into
pandas. The Chrome export follows the Trace Event Format (the JSON
array flavour) and loads directly in ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev): workers appear as one lane each with a box
per executed task, the scheduler gets its own lane with a box per
invocation (width = simulated overhead), query lifecycle points render
as instant events, and buffer depth as a counter track.

Simulated seconds are exported as microseconds (the format's unit), so
timeline widths read directly as simulated time.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.spans import (
    ARRIVAL,
    COMMIT,
    COMPLETE,
    DECISION,
    DEGRADED,
    DISPATCH,
    ENTER_BUFFER,
    FAST_PATH,
    REJECT,
    RETRY,
    SCHEDULE,
    SLO_BREACH,
    SLO_RECOVERED,
    TASK_FAILED,
    WORKER_DOWN,
    Span,
)

_US = 1e6  # seconds -> trace_event microseconds
_PID = 1


def write_spans_jsonl(
    spans: Iterable[Span], path: Union[str, Path]
) -> Path:
    """Write one JSON object per span; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict()))
            handle.write("\n")
    return path


def read_spans_jsonl(path: Union[str, Path]) -> List[Span]:
    """Parse a JSONL span dump back into :class:`Span` objects.

    Inverse of :meth:`Span.to_dict` / :func:`write_spans_jsonl`: the
    flat payload keys become ``attrs`` again and a missing ``query_id``
    restores the run-level ``-1``. Round-trip equality is locked by
    ``tests/obs/test_export.py``.
    """
    spans: List[Span] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        kind = payload.pop("kind")
        time = float(payload.pop("time"))
        query_id = int(payload.pop("query_id", -1))
        spans.append(Span(kind, time, query_id, payload))
    return spans


def chrome_trace_events(
    spans: Sequence[Span],
    worker_names: Optional[Dict[int, str]] = None,
) -> List[dict]:
    """Convert spans into a Chrome ``traceEvents`` list.

    Args:
        spans: The recorded span stream (any order; times are absolute).
        worker_names: Optional ``{worker_id: label}`` for the worker
            lanes; defaults to ``worker {id} (model {k})`` derived from
            dispatch spans.
    """
    workers = sorted(
        {int(s.attrs["worker"]) for s in spans if s.kind == DISPATCH}
        | {int(s.attrs["worker"]) for s in spans if s.kind == WORKER_DOWN}
    )
    sched_tid = (max(workers) + 1) if workers else 0
    lifecycle_tid = sched_tid + 1

    events: List[dict] = [
        {
            "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
            "args": {"name": "EnsembleServer (simulated time)"},
        }
    ]
    names = dict(worker_names or {})
    models = {
        int(s.attrs["worker"]): int(s.attrs["model"])
        for s in spans if s.kind == DISPATCH
    }
    for worker in workers:
        label = names.get(
            worker,
            f"worker {worker} (model {models[worker]})"
            if worker in models else f"worker {worker}",
        )
        events.append({
            "ph": "M", "pid": _PID, "tid": worker, "name": "thread_name",
            "args": {"name": label},
        })
    events.append({
        "ph": "M", "pid": _PID, "tid": sched_tid, "name": "thread_name",
        "args": {"name": "scheduler"},
    })
    events.append({
        "ph": "M", "pid": _PID, "tid": lifecycle_tid, "name": "thread_name",
        "args": {"name": "query lifecycle"},
    })

    for span in spans:
        ts = span.time * _US
        if span.kind == DISPATCH:
            start = float(span.attrs["start"])
            finish = float(span.attrs["finish"])
            events.append({
                "ph": "X", "pid": _PID,
                "tid": int(span.attrs["worker"]),
                "ts": start * _US,
                "dur": max((finish - start) * _US, 1.0),
                "name": f"q{span.query_id} m{span.attrs['model']}",
                "cat": "task",
                "args": {"query_id": span.query_id,
                         "model": span.attrs["model"]},
            })
        elif span.kind == SCHEDULE:
            events.append({
                "ph": "X", "pid": _PID, "tid": sched_tid, "ts": ts,
                "dur": max(float(span.attrs["overhead_sim_s"]) * _US, 1.0),
                "name": f"schedule[{span.attrs['batch']}]",
                "cat": "scheduler",
                "args": dict(span.attrs),
            })
            events.append(_counter(ts, span.attrs["depth"]))
        elif span.kind == ENTER_BUFFER:
            events.append(_counter(ts, span.attrs["depth"]))
        elif span.kind == WORKER_DOWN:
            # A "DOWN" box on the worker's own lane, spanning the outage.
            until = float(span.attrs["until"])
            events.append({
                "ph": "X", "pid": _PID,
                "tid": int(span.attrs["worker"]),
                "ts": ts,
                "dur": max((until - span.time) * _US, 1.0),
                "name": "DOWN",
                "cat": "fault",
                "args": dict(span.attrs),
            })
        elif span.kind in (ARRIVAL, COMPLETE, REJECT, COMMIT, FAST_PATH,
                           TASK_FAILED, RETRY, DEGRADED,
                           SLO_BREACH, SLO_RECOVERED, DECISION):
            events.append({
                "ph": "i", "pid": _PID, "tid": lifecycle_tid, "ts": ts,
                "s": "t",
                "name": (f"{span.kind} q{span.query_id}"
                         if span.query_id >= 0 else span.kind),
                "cat": "lifecycle",
                "args": dict(span.attrs),
            })
    return events


def _counter(ts: float, depth) -> dict:
    return {
        "ph": "C", "pid": _PID, "ts": ts, "name": "buffer depth",
        "args": {"depth": float(depth)},
    }


def write_chrome_trace(
    spans: Sequence[Span],
    path: Union[str, Path],
    worker_names: Optional[Dict[int, str]] = None,
) -> Path:
    """Write a ``chrome://tracing`` / Perfetto-loadable timeline JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(spans, worker_names),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload))
    return path


def _prom_name(name: str) -> str:
    """Metric name in Prometheus exposition syntax, ``repro_`` prefixed."""
    return "repro_" + "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _prom_label_value(value: object) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote and newline must be backslash-escaped inside the
    quotes."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters map to ``counter`` samples, gauges to their last sampled
    value, histograms to ``summary`` families (quantile series plus
    ``_sum``/``_count``). One final scrape of a finished simulated run
    — for dashboards that speak Prometheus, and for diffing two runs
    with standard tooling.

    Output is deterministic: metric families are emitted in sorted
    name order and label values are escaped, so two scrapes of
    identical registries are byte-identical and diffable.
    ``parse_prometheus_text`` is the matching reader (round-trip
    locked by ``tests/obs/test_export.py``).
    """
    lines: List[str] = []
    # Sort by the *emitted* family name: sanitisation ("." -> "_") is
    # not order-preserving, and the determinism contract is on the
    # exposition bytes consumers scrape, not on the raw dotted names.
    for prom, name in sorted(
        (_prom_name(name), name) for name in registry.names()
    ):
        metric = registry.get(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            last = metric.last
            lines.append(
                f"{prom} "
                f"{_prom_value(last if last is not None else float('nan'))}"
            )
        elif isinstance(metric, StreamingHistogram):
            lines.append(f"# TYPE {prom} summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f'{prom}{{quantile="{_prom_label_value(q)}"}} '
                    f"{_prom_value(metric.quantile(q))}"
                )
            lines.append(f"{prom}_sum {_prom_value(metric.total)}")
            lines.append(f"{prom}_count {metric.count}")
    return "\n".join(lines) + "\n"


#: Backward-compatible alias; ``metrics_to_prometheus`` is the name
#: the design doc and new call sites use.
prometheus_text = metrics_to_prometheus

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


_ESCAPE_RE = re.compile(r"\\(.)")


def _unescape_label(value: str) -> str:
    # One left-to-right pass: sequential str.replace would corrupt a
    # literal backslash followed by 'n' (escaped as ``\\n``) into a
    # newline. Inverse of ``_prom_label_value`` (property-tested in
    # tests/obs/test_prom_property.py).
    return _ESCAPE_RE.sub(
        lambda m: "\n" if m.group(1) == "n" else m.group(1), value
    )


def _parse_value(text: str) -> float:
    if text == "NaN":
        return float("nan")
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus_text(
    text: str,
) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse text exposition output back into nested sample maps.

    Returns ``{metric_name: {((label, value), ...): sample_value}}``
    with label values unescaped; unlabeled samples key on the empty
    tuple. Inverse of :func:`metrics_to_prometheus` for round-trip
    checks and run diffing.
    """
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    # The exposition format is \n-delimited; splitlines() would also
    # break on exotic Unicode boundaries (\x1c-\x1e,  ...) that
    # are legal *unescaped* inside label values.
    for line in text.split("\n"):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels: Tuple[Tuple[str, str], ...] = ()
        raw = match.group("labels")
        if raw:
            labels = tuple(
                (key, _unescape_label(value))
                for key, value in _LABEL_RE.findall(raw)
            )
        samples.setdefault(match.group("name"), {})[labels] = _parse_value(
            match.group("value")
        )
    return samples


def write_prometheus(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write :func:`metrics_to_prometheus` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_prometheus(registry))
    return path
