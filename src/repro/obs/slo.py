"""Online SLO monitoring over the live span stream.

Schemble's headline numbers — deadline-miss rate and answer quality —
are *tail* properties of a bursty trace, and a global post-hoc average
hides exactly the episodes that matter (the 10–18 h diurnal burst).
:class:`SLOMonitor` watches the span stream as a
:class:`~repro.obs.tracer.RecordingTracer` records it and keeps
multi-resolution rolling windows (1 min / 10 min / 1 h of *simulated*
time by default) of two objectives:

* **deadline objective** — fraction of answered-or-rejected queries
  that missed their deadline, against an error budget
  (``miss_target``);
* **quality objective** — fraction of answers served degraded (partial
  ensemble), against ``degraded_target``.

Each window reports a **burn rate**: observed miss rate divided by the
budget. Burn rate 1.0 means the window is consuming its error budget
exactly as fast as allowed; 10x means ten times too fast. When the
alert window's burn rate crosses ``breach_burn`` the monitor opens an
*overload episode*, emits an ``slo_breach`` span plus a counter through
the tracer, and closes it with ``slo_recovered`` once the burn rate
falls back under ``recover_burn`` — so a burst shows up as a detected
episode with a start and an end, not just a worse global p99.

Memory is bounded: every window is a ring of ``resolution`` counting
buckets, independent of trace length, in the same spirit as the
quantile digests backing the histograms.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.spans import COMPLETE, REJECT, SLO_BREACH, SLO_RECOVERED
from repro.utils.validation import check_positive

__all__ = ["SLOConfig", "SLOMonitor", "Episode", "replay_spans"]


@dataclass(frozen=True)
class SLOConfig:
    """Objectives and detector thresholds for :class:`SLOMonitor`.

    Attributes:
        miss_target: Error budget for the deadline objective — the
            tolerated deadline-miss fraction (0.05 = at most 5% of
            queries may miss).
        degraded_target: Tolerated degraded-answer fraction (quality
            objective; only bites under fault injection).
        windows: Rolling window lengths in simulated seconds, shortest
            first. Defaults to 1 min / 10 min / 1 h.
        alert_window: The window the episode detector watches (must be
            one of ``windows``); shorter = faster detection, noisier.
        breach_burn: Burn rate at or above which an overload episode
            opens.
        recover_burn: Burn rate below which an open episode closes
            (set below ``breach_burn`` for hysteresis).
        min_events: Minimum events in the alert window before the
            detector may fire — keeps near-empty windows quiet.
        resolution: Counting buckets per window (the memory bound).
    """

    miss_target: float = 0.05
    degraded_target: float = 0.10
    windows: Tuple[float, ...] = (60.0, 600.0, 3600.0)
    alert_window: float = 60.0
    breach_burn: float = 1.0
    recover_burn: float = 1.0
    min_events: int = 20
    resolution: int = 20

    def __post_init__(self):
        check_positive("miss_target", self.miss_target)
        check_positive("degraded_target", self.degraded_target)
        if not self.windows:
            raise ValueError("windows must be non-empty")
        for w in self.windows:
            check_positive("window", w)
        if self.alert_window not in self.windows:
            raise ValueError(
                f"alert_window {self.alert_window} must be one of "
                f"windows {self.windows}"
            )
        check_positive("breach_burn", self.breach_burn)
        check_positive("recover_burn", self.recover_burn)
        if self.recover_burn > self.breach_burn:
            raise ValueError(
                "recover_burn must be <= breach_burn (hysteresis)"
            )
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")
        if self.resolution < 2:
            raise ValueError("resolution must be >= 2")


@dataclass
class Episode:
    """One detected overload episode (open until ``end`` is set)."""

    start: float
    end: Optional[float] = None
    peak_burn: float = 0.0
    window: float = 0.0

    @property
    def open(self) -> bool:
        return self.end is None

    def duration(self, until: Optional[float] = None) -> float:
        """Episode length; open episodes measure up to ``until``."""
        end = self.end if self.end is not None else until
        return max(0.0, (end if end is not None else self.start) - self.start)

    def to_dict(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "peak_burn": self.peak_burn,
            "window": self.window,
        }


class _Window:
    """One rolling window: a ring of counting buckets.

    Bucket ``i`` covers ``[i*width, (i+1)*width)`` simulated seconds;
    at most ``resolution + 1`` buckets are alive, so memory is constant
    regardless of trace length. Rates are computed over the buckets
    overlapping ``(t - length, t]``.
    """

    __slots__ = ("length", "width", "_buckets")

    def __init__(self, length: float, resolution: int):
        self.length = length
        self.width = length / resolution
        # Each bucket: [index, events, misses, degraded]
        self._buckets: Deque[List[float]] = deque()

    def observe(self, t: float, missed: bool, degraded: bool) -> None:
        idx = int(t / self.width)
        if self._buckets and self._buckets[-1][0] == idx:
            bucket = self._buckets[-1]
        else:
            bucket = [idx, 0, 0, 0]
            self._buckets.append(bucket)
        bucket[1] += 1
        bucket[2] += int(missed)
        bucket[3] += int(degraded)
        self._evict(t)

    def _evict(self, t: float) -> None:
        cutoff = t - self.length
        while self._buckets and (self._buckets[0][0] + 1) * self.width <= cutoff:
            self._buckets.popleft()

    def counts(self, t: float) -> Tuple[int, int, int]:
        """``(events, misses, degraded)`` in the window ending at ``t``."""
        self._evict(t)
        events = misses = degraded = 0
        for _, e, m, d in self._buckets:
            events += e
            misses += m
            degraded += d
        return events, misses, degraded


class SLOMonitor:
    """Streams span-level outcomes into rolling SLO windows.

    Feed it directly via :meth:`observe`, or hand it to
    ``RecordingTracer(slo=monitor)`` and the tracer wires completions,
    rejections and degraded answers through automatically, while the
    monitor's breach/recovery events flow back out as spans
    (``slo_breach`` / ``slo_recovered``) and counters
    (``slo.breaches`` / ``slo.recoveries``).
    """

    def __init__(self, config: Optional[SLOConfig] = None):
        self.config = config if config is not None else SLOConfig()
        resolution = self.config.resolution
        self._windows: Dict[float, _Window] = {
            length: _Window(length, resolution)
            for length in self.config.windows
        }
        self._alert = self._windows[self.config.alert_window]
        self._tracer = None
        self.episodes: List[Episode] = []
        self.events = 0
        self.misses = 0
        self.degraded = 0
        self.last_time = 0.0

    # -- wiring --------------------------------------------------------

    def bind(self, tracer) -> None:
        """Attach the tracer breach/recovery events are emitted through."""
        self._tracer = tracer

    # -- ingestion -----------------------------------------------------

    def observe(
        self, t: float, missed: bool, degraded: bool = False
    ) -> None:
        """Fold one resolved query (answered or rejected) at time ``t``."""
        self.events += 1
        self.misses += int(missed)
        self.degraded += int(degraded)
        if t > self.last_time:
            self.last_time = t
        for window in self._windows.values():
            window.observe(t, missed, degraded)
        self._detect(t)

    def _detect(self, t: float) -> None:
        """Run the hysteresis episode detector at ``t``.

        ``min_events`` gates only the *opening* of an episode (a
        near-empty window stays quiet). Closing deliberately ignores
        it: after a long idle gap the alert window drains below
        ``min_events`` with the episode still open, and the old
        early-return left it stuck open — unable to emit
        ``slo_recovered`` — until ``min_events`` fresh events arrived.
        An open episode now closes as soon as the window's burn rate
        (0.0 once the window is empty) falls under ``recover_burn``.
        """
        config = self.config
        events, misses, _ = self._alert.counts(t)
        burn = (
            (misses / events) / config.miss_target if events else 0.0
        )
        episode = self.episodes[-1] if self.episodes else None
        in_breach = episode is not None and episode.open
        if in_breach:
            episode.peak_burn = max(episode.peak_burn, burn)
            if burn < config.recover_burn:
                episode.end = t
                self._emit(SLO_RECOVERED, t, burn, misses, events,
                           duration=episode.duration())
        elif events >= config.min_events and burn >= config.breach_burn:
            self.episodes.append(
                Episode(start=t, peak_burn=burn,
                        window=config.alert_window)
            )
            self._emit(SLO_BREACH, t, burn, misses, events)

    def poll(self, t: float) -> None:
        """Run the episode detector at ``t`` without a new event.

        The span stream only drives detection when queries resolve, so
        during an idle gap an open episode would otherwise linger until
        the next resolution. A control plane polling at its decision
        interval closes episodes promptly (the alert window evicts up
        to ``t``, so a drained window reads burn 0.0 and recovers).
        """
        if t > self.last_time:
            self.last_time = t
        self._detect(t)

    def _emit(self, kind: str, t: float, burn: float, misses: int,
              events: int, **extra) -> None:
        if self._tracer is not None:
            self._tracer.emit(
                kind, t,
                window=self.config.alert_window,
                burn_rate=burn,
                miss_rate=misses / events if events else 0.0,
                **extra,
            )

    def finalize(self, end_time: float) -> None:
        """Close the trace; an episode still open stays open (its
        ``end`` remains None) but its extent is measurable up to here."""
        if end_time > self.last_time:
            self.last_time = end_time

    # -- queries -------------------------------------------------------

    def alert_burn(self, t: Optional[float] = None) -> float:
        """Burn rate of the alert window at ``t`` (defaults to the
        last observed time), with control-plane-friendly semantics:
        the rate is computed over the events actually present — a
        not-yet-full window (run start, or refilling after an idle
        gap) is *not* diluted by its empty portion — and an empty
        window reads 0.0 (no evidence of burning) rather than NaN.
        """
        at = t if t is not None else self.last_time
        events, misses, _ = self._alert.counts(at)
        if not events:
            return 0.0
        return (misses / events) / self.config.miss_target

    def alert_events(self, t: Optional[float] = None) -> int:
        """Events currently in the alert window (the detector's
        ``min_events`` evidence count)."""
        at = t if t is not None else self.last_time
        events, _, _ = self._alert.counts(at)
        return events

    def burn_rates(self, t: Optional[float] = None) -> Dict[float, float]:
        """Current burn rate per window (NaN where the window is empty).

        Rates are computed over the events each window actually holds:
        at run start (window not yet full) and right after an idle gap
        the denominator is the observed event count, never the nominal
        window capacity — a half-full window with half its events
        missing reads a burn of ``0.5 / miss_target``, not a diluted
        ``0.25 / miss_target``. Empty windows report NaN (no evidence)
        instead of a silent 0.0; :meth:`alert_burn` maps that to 0.0
        for consumers that need a total order."""
        at = t if t is not None else self.last_time
        out: Dict[float, float] = {}
        for length, window in self._windows.items():
            events, misses, _ = window.counts(at)
            out[length] = (
                (misses / events) / self.config.miss_target
                if events else float("nan")
            )
        return out

    def window_stats(
        self, t: Optional[float] = None
    ) -> Dict[float, Dict[str, float]]:
        """Per-window events / miss rate / degraded rate / burn rate."""
        at = t if t is not None else self.last_time
        out: Dict[float, Dict[str, float]] = {}
        for length, window in self._windows.items():
            events, misses, degraded = window.counts(at)
            miss_rate = misses / events if events else float("nan")
            degraded_rate = degraded / events if events else float("nan")
            out[length] = {
                "events": float(events),
                "miss_rate": miss_rate,
                "degraded_rate": degraded_rate,
                "burn_rate": (
                    miss_rate / self.config.miss_target
                    if events else float("nan")
                ),
                "quality_burn_rate": (
                    degraded_rate / self.config.degraded_target
                    if events else float("nan")
                ),
            }
        return out

    def summary(self) -> Dict[str, object]:
        """Run-level roll-up for reports and the ``slo`` CLI command."""
        return {
            "events": self.events,
            "misses": self.misses,
            "degraded": self.degraded,
            "miss_rate": (
                self.misses / self.events if self.events else float("nan")
            ),
            "miss_target": self.config.miss_target,
            "episodes": [e.to_dict() for e in self.episodes],
            "windows": self.window_stats(),
        }


def replay_spans(spans, config: Optional[SLOConfig] = None) -> SLOMonitor:
    """Rebuild an :class:`SLOMonitor` offline from a recorded span
    stream (e.g. a ``*_spans.jsonl`` dump) — the ``repro slo`` command.

    Only completion/rejection outcomes matter; the spans may be the
    full lifecycle stream.
    """
    monitor = SLOMonitor(config)
    last = 0.0
    for span in spans:
        if span.kind == COMPLETE:
            monitor.observe(
                span.time,
                missed=float(span.attrs.get("slack", 0.0)) < 0.0,
                degraded=bool(span.attrs.get("degraded", False)),
            )
        elif span.kind == REJECT:
            monitor.observe(span.time, missed=True)
        if span.time > last:
            last = span.time
    monitor.finalize(last)
    return monitor
