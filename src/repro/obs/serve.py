"""Mid-run metrics endpoint: a daemon-thread HTTP scrape surface.

:class:`MetricsServer` wraps a :class:`~repro.obs.tracer.RecordingTracer`
(and, through it, the optional :class:`~repro.obs.live.LiveTelemetry`
plane) in a tiny threaded HTTP server so standard tooling can watch a
simulated run while it is still going:

* ``GET /metrics`` — the tracer's registry in Prometheus text
  exposition format (:func:`~repro.obs.export.metrics_to_prometheus`);
* ``GET /snapshot`` — the live plane's most recent
  :class:`~repro.obs.live.TelemetrySnapshot` as JSON, plus incident
  and suppression counts;
* ``GET /healthz`` — liveness probe (``ok``).

The server never blocks the simulation: it runs on daemon threads and
*reads* tracer state without locks. A scrape that races a registry
mutation mid-request (dict resized while rendering) is answered 503 —
the scraper retries, the run never waits. Port 0 (the default) binds an
ephemeral port; read :attr:`MetricsServer.port` / :attr:`url` after
:meth:`start`.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread
from typing import Optional

from repro.obs.export import metrics_to_prometheus
from repro.obs.tracer import Tracer

__all__ = ["MetricsServer"]


class _ScrapeHandler(BaseHTTPRequestHandler):
    """Routes the three read-only endpoints; owned by MetricsServer."""

    # Set per-server via the class-factory in MetricsServer.start().
    tracer: Tracer = None  # type: ignore[assignment]

    def do_GET(self):  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        if route == "/healthz" or route == "/":
            self._reply(200, "text/plain; charset=utf-8", "ok\n")
        elif route == "/metrics":
            self._guarded(self._metrics)
        elif route == "/snapshot":
            self._guarded(self._snapshot)
        else:
            self._reply(404, "text/plain; charset=utf-8", "not found\n")

    def _guarded(self, render) -> None:
        """Serve ``render()``; a mid-run mutation race answers 503."""
        try:
            status, ctype, body = render()
        except RuntimeError:
            # Registry/deque mutated under us mid-iteration: transient,
            # the run is still writing. Tell the scraper to retry.
            self._reply(
                503, "text/plain; charset=utf-8", "busy, retry\n",
                retry=True,
            )
            return
        self._reply(status, ctype, body)

    def _metrics(self):
        registry = self.tracer.metrics
        if registry is None:
            return 404, "text/plain; charset=utf-8", "no metrics\n"
        return (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            metrics_to_prometheus(registry),
        )

    def _snapshot(self):
        live = self.tracer.live
        if live is None:
            return (
                404, "text/plain; charset=utf-8",
                "no live telemetry plane attached\n",
            )
        latest = live.latest
        payload = {
            "source": live.source,
            "snapshot": latest.to_dict() if latest is not None else None,
            "snapshots": len(live.snapshots),
            "incidents": len(live.incidents),
            "suppressed": live.suppressed,
        }
        return (
            200,
            "application/json",
            json.dumps(payload, sort_keys=True) + "\n",
        )

    def _reply(
        self, status: int, ctype: str, body: str, retry: bool = False
    ) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(data)))
        if retry:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        """Silence per-request stderr logging."""


class MetricsServer:
    """Background ``/metrics`` + ``/snapshot`` endpoint over one tracer.

    Usage::

        tracer = RecordingTracer(live=LiveTelemetry())
        server = MetricsServer(tracer, port=0)
        server.start()
        ...  # run the simulation; curl server.url + "/metrics"
        server.stop()

    Also usable as a context manager (starts on enter, stops on exit).

    Args:
        tracer: The tracer whose registry (and live plane, if any) is
            exposed.
        host: Bind address (default loopback).
        port: TCP port; 0 binds an ephemeral one.
    """

    def __init__(
        self, tracer: Tracer, host: str = "127.0.0.1", port: int = 0
    ):
        self.tracer = tracer
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[Thread] = None

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (raises before :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("MetricsServer is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._httpd is not None:
            raise RuntimeError("MetricsServer is already running")
        handler = type(
            "_BoundScrapeHandler", (_ScrapeHandler,), {"tracer": self.tracer}
        )
        httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        httpd.daemon_threads = True
        self._httpd = httpd
        self._thread = Thread(
            target=httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the endpoint down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
