"""Per-query latency attribution, critical paths, and run diffing.

The span stream (``repro.obs.spans``) records *what happened* to every
query; this module answers *where the time went*. A
:class:`LatencyAttributor` replays a span stream — live from a
:class:`~repro.obs.tracer.RecordingTracer` or offline from an exported
JSONL dump — and decomposes each completed query's end-to-end latency
into an exact partition of phases:

``admission``
    Arrival to buffer entry (the policy's entry delay). Zero for
    immediate-mode and fast-path queries, which never buffer.
``buffer``
    Buffer residency: entry to the commit that dispatched the query,
    minus the dispatching round's own overhead. Requeue cycles and
    rounds that planned the query without dispatching it land here.
``sched``
    The modeled scheduling overhead of the round whose commit actually
    dispatched the query (``commit − schedule`` of that round).
``queue``
    Dispatch to first execution start of the *critical* task — time
    spent waiting behind busy workers.
``retry``
    First execution start to final execution start of the critical
    task: failed attempts, retry backoff, and failover re-queueing.
    Zero on fault-free runs.
``exec``
    Final execution start to query completion.
``aggregate``
    Ensemble aggregation after the last task resolves. The simulator
    completes queries at the instant their last task ends, so this is
    identically zero today; the phase is part of the schema so the
    partition survives a future aggregation-cost model.

The phases telescope: their sum reproduces the query's recorded
latency to floating-point rounding (the property test in
``tests/obs/test_profile.py`` bounds the error at 1e-9). Rejected
queries carry **no** phases — they mirror the ``queries.rejected``
audit instead of polluting the latency distributions.

The *critical task* is the one whose resolution completed the query
(the last ``task_done``/``task_failed`` before ``complete`` in stream
order); :meth:`LatencyAttributor.critical_chain` walks the critical
worker's timeline to name the tasks the query was actually blocked
behind. Aggregates land in t-digest-backed
:class:`~repro.obs.metrics.StreamingHistogram` per phase, and
:meth:`LatencyAttributor.blame` ranks the worst offenders for the
blame report.

:func:`diff_profiles` compares two runs' profile artifacts and flags
phase-level regressions: simulated-time quantities are deterministic
(same seed ⇒ bit-identical, so tight thresholds stay quiet on a
rerun), while real wall-clock quantities get noise-floored thresholds
(ratio *and* absolute floor) so machine jitter does not page anyone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs import spans as sp
from repro.obs.metrics import StreamingHistogram
from repro.obs.spans import Span

__all__ = [
    "PHASES",
    "ARTIFACT_SCHEMA",
    "QueryAttribution",
    "BlockingTask",
    "LatencyAttributor",
    "write_profile_json",
    "read_profile_json",
    "PhaseRegression",
    "ProfileDiff",
    "diff_profiles",
]

#: Phase names, in lifecycle order. Every completed query's attribution
#: has exactly these keys and they sum to its end-to-end latency.
PHASES = (
    "admission", "buffer", "sched", "queue", "retry", "exec", "aggregate",
)

ARTIFACT_SCHEMA = "repro.profile/1"


@dataclass
class QueryAttribution:
    """Where one completed query's latency went.

    Attributes:
        query_id: The query.
        arrival: Absolute arrival time (simulated seconds).
        latency: End-to-end latency as recorded on the ``complete``
            span (the ground truth the phases must sum to).
        slack: Deadline slack at completion (negative = missed).
        phases: ``{phase: seconds}`` over :data:`PHASES` — an exact
            partition of ``latency``.
        critical_model: Base model whose task resolution completed the
            query.
        critical_worker: Worker that ran the critical task's final
            attempt.
        attempts: Execution attempts of the critical task (1 = no
            retries on the critical path).
        retries: Retry spans across *all* of the query's tasks.
        degraded: True when the query was answered from a partial
            subset after permanent task failures.
        fast_path: True when the idle-system shortcut served it.
        plan_time: When the dispatching commit planned the query.
        first_start: First execution start of the critical task.
        final_start: Final (completing) execution start of the
            critical task.
    """

    query_id: int
    arrival: float
    latency: float
    slack: float
    phases: Dict[str, float]
    critical_model: int = -1
    critical_worker: int = -1
    attempts: int = 1
    retries: int = 0
    degraded: bool = False
    fast_path: bool = False
    plan_time: float = 0.0
    first_start: float = 0.0
    final_start: float = 0.0

    @property
    def dominant_phase(self) -> str:
        """The phase that consumed the most time."""
        return max(PHASES, key=lambda p: self.phases.get(p, 0.0))

    def residual(self) -> float:
        """``sum(phases) - latency`` — zero up to float rounding."""
        return sum(self.phases[p] for p in PHASES) - self.latency


@dataclass
class BlockingTask:
    """One task the critical path waited behind on its worker."""

    query_id: int
    model: int
    worker: int
    start: float
    finish: float


class _QueryState:
    """Accumulating per-query view of the stream (internal)."""

    __slots__ = (
        "arrival", "enter", "plan_time", "sched_overhead",
        "dispatches", "last_task_model", "retries", "degraded",
        "fast_path",
    )

    def __init__(self):
        self.arrival: Optional[float] = None
        self.enter: Optional[float] = None
        self.plan_time: Optional[float] = None
        self.sched_overhead = 0.0
        # model -> [(start, finish, worker), ...] in dispatch order.
        self.dispatches: Dict[int, List[Tuple[float, float, int]]] = {}
        self.last_task_model = -1
        self.retries = 0
        self.degraded = False
        self.fast_path = False


class LatencyAttributor:
    """Replays a span stream into per-query latency attributions.

    Args:
        compression: t-digest compression for the per-phase and latency
            histograms (see :class:`~repro.obs.digest.QuantileDigest`).

    Feed it complete streams via :meth:`attribute` (or the
    :meth:`from_tracer` / :meth:`from_jsonl` constructors). Completed
    queries land in :attr:`queries`; rejected query ids in
    :attr:`rejected` with no phases, mirroring the server's
    ``queries.rejected`` audit.
    """

    def __init__(self, compression: int = 128):
        self.queries: Dict[int, QueryAttribution] = {}
        self.rejected: List[int] = []
        self.phase_hist: Dict[str, StreamingHistogram] = {
            phase: StreamingHistogram(f"phase.{phase}_s", compression)
            for phase in PHASES
        }
        self.latency_hist = StreamingHistogram("query.latency_s", compression)
        #: Real wall-clock totals of the DP step phases, summed from
        #: ``sched_phase`` spans (empty for unprofiled streams).
        self.sched_phase_wall: Dict[str, float] = {}
        #: Total real scheduler wall-clock from ``schedule`` spans.
        self.sched_wall = 0.0
        # worker -> [(start, finish, query_id, model), ...] stream order.
        self._worker_timeline: Dict[
            int, List[Tuple[float, float, int, int]]
        ] = {}
        self._states: Dict[int, _QueryState] = {}
        # Most recent completed scheduling round: (decided_at, committed_at).
        self._pending_round: Optional[float] = None
        self._last_round: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer, compression: int = 128) -> "LatencyAttributor":
        """Attribute a live :class:`RecordingTracer`'s span stream
        (requires ``keep_spans=True``, the tracer default)."""
        if not getattr(tracer, "spans", None):
            raise ValueError(
                "tracer holds no spans — construct it with keep_spans=True "
                "and run the server before attributing"
            )
        attributor = cls(compression)
        attributor.attribute(tracer.spans)
        return attributor

    @classmethod
    def from_jsonl(
        cls, path: Union[str, Path], compression: int = 128
    ) -> "LatencyAttributor":
        """Attribute an exported JSONL span dump (offline path)."""
        from repro.obs.export import read_spans_jsonl

        attributor = cls(compression)
        attributor.attribute(read_spans_jsonl(path))
        return attributor

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------

    def attribute(self, spans: Iterable[Span]) -> None:
        """Fold one complete span stream (in emission order) into the
        attributor. One pass, O(spans)."""
        for span in spans:
            kind = span.kind
            if kind == sp.ARRIVAL:
                self._state(span.query_id).arrival = span.time
            elif kind == sp.ENTER_BUFFER:
                self._state(span.query_id).enter = span.time
            elif kind == sp.FAST_PATH:
                self._state(span.query_id).fast_path = True
            elif kind == sp.SCHEDULE:
                self._pending_round = span.time
                self.sched_wall += float(span.attrs.get("wall_s", 0.0))
            elif kind == sp.COMMIT:
                # scheduling_busy serializes rounds, so the open round
                # is always the one this commit closes.
                if self._pending_round is not None:
                    self._last_round = (self._pending_round, span.time)
                    self._pending_round = None
            elif kind == sp.PLAN:
                state = self._state(span.query_id)
                state.plan_time = span.time
                round_ = self._last_round
                # The dispatching round's commit happens at plan time;
                # fast-path/immediate dispatches match no round.
                if round_ is not None and round_[1] == span.time:
                    state.sched_overhead = round_[1] - round_[0]
            elif kind == sp.DISPATCH:
                state = self._state(span.query_id)
                model = int(span.attrs["model"])
                worker = int(span.attrs["worker"])
                start = float(span.attrs["start"])
                finish = float(span.attrs["finish"])
                state.dispatches.setdefault(model, []).append(
                    (start, finish, worker)
                )
                self._worker_timeline.setdefault(worker, []).append(
                    (start, finish, span.query_id, model)
                )
            elif kind in (sp.TASK_DONE, sp.TASK_FAILED):
                self._state(span.query_id).last_task_model = int(
                    span.attrs["model"]
                )
            elif kind == sp.RETRY:
                self._state(span.query_id).retries += 1
            elif kind == sp.DEGRADED:
                self._state(span.query_id).degraded = True
            elif kind == sp.COMPLETE:
                self._finalize(span)
            elif kind == sp.REJECT:
                # No latency phases for rejected queries — they never
                # completed, so there is no latency to attribute.
                self.rejected.append(span.query_id)
                self._states.pop(span.query_id, None)
            elif kind == sp.SCHED_PHASE:
                phase = str(span.attrs.get("phase", "?"))
                self.sched_phase_wall[phase] = (
                    self.sched_phase_wall.get(phase, 0.0)
                    + float(span.attrs.get("wall_s", 0.0))
                )

    def _state(self, query_id: int) -> _QueryState:
        state = self._states.get(query_id)
        if state is None:
            state = self._states[query_id] = _QueryState()
        return state

    def _finalize(self, span: Span) -> None:
        """Turn one ``complete`` span plus its accumulated state into
        an exact phase partition of the recorded latency."""
        state = self._states.pop(span.query_id, _QueryState())
        completion = span.time
        latency = float(span.attrs.get("latency", 0.0))
        arrival = (
            state.arrival if state.arrival is not None
            else completion - latency
        )
        enter = state.enter if state.enter is not None else arrival
        plan = state.plan_time if state.plan_time is not None else enter
        sched = state.sched_overhead if state.enter is not None else 0.0
        # Clamp: a query is always in the snapshot of the round that
        # dispatches it, so plan - enter >= sched; the min() only
        # guards degenerate hand-built streams.
        sched = min(sched, plan - enter)

        critical = state.last_task_model
        attempts = state.dispatches.get(critical, [])
        if attempts:
            first_start = attempts[0][0]
            final_start, _, critical_worker = attempts[-1]
        else:  # degenerate stream (no dispatch recorded): all exec
            first_start = final_start = plan
            critical_worker = -1

        phases = {
            "admission": enter - arrival,
            "buffer": (plan - enter) - sched,
            "sched": sched,
            "queue": first_start - plan,
            "retry": final_start - first_start,
            "exec": completion - final_start,
            # Completion fires at the last task resolution, so ensemble
            # aggregation is instantaneous in this simulator.
            "aggregate": 0.0,
        }
        attribution = QueryAttribution(
            query_id=span.query_id,
            arrival=arrival,
            latency=latency,
            slack=float(span.attrs.get("slack", 0.0)),
            phases=phases,
            critical_model=critical,
            critical_worker=critical_worker,
            attempts=max(len(attempts), 1),
            retries=state.retries,
            degraded=state.degraded or bool(span.attrs.get("degraded")),
            fast_path=state.fast_path,
            plan_time=plan,
            first_start=first_start,
            final_start=final_start,
        )
        self.queries[span.query_id] = attribution
        for phase, seconds in phases.items():
            self.phase_hist[phase].add(seconds)
        self.latency_hist.add(latency)

    # ------------------------------------------------------------------
    # Critical path & blame
    # ------------------------------------------------------------------

    def critical_chain(self, query_id: int) -> List[BlockingTask]:
        """The tasks the query's critical path actually waited behind:
        executions on the critical worker that overlapped the interval
        from the query's dispatch to its critical task's final start,
        in execution order."""
        attribution = self.queries[query_id]
        chain: List[BlockingTask] = []
        timeline = self._worker_timeline.get(attribution.critical_worker, [])
        for start, finish, qid, model in timeline:
            if qid == query_id and model == attribution.critical_model:
                continue
            if finish > attribution.plan_time + 1e-12 and (
                start < attribution.final_start - 1e-12
            ):
                chain.append(BlockingTask(qid, model, attribution.critical_worker,
                                          start, finish))
        chain.sort(key=lambda task: task.start)
        return chain

    def blame(
        self, k: int = 5, breaching_only: bool = False
    ) -> List[QueryAttribution]:
        """The top-``k`` latest queries (by latency, descending).
        ``breaching_only`` restricts to deadline misses (slack < 0)."""
        pool = [
            a for a in self.queries.values()
            if not breaching_only or a.slack < 0.0
        ]
        pool.sort(key=lambda a: (-a.latency, a.query_id))
        return pool[:k]

    # ------------------------------------------------------------------
    # Artifact
    # ------------------------------------------------------------------

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {count, total, mean, p50, p95, p99, max}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for phase in PHASES:
            hist = self.phase_hist[phase]
            stats = hist.summary()
            stats["total"] = hist.total if hist.count else 0.0
            stats.pop("min", None)
            out[phase] = stats
        return out

    def to_artifact(self) -> Dict[str, object]:
        """JSON-able profile artifact — the unit ``diff_profiles``
        compares. Simulated-time quantities are deterministic per seed;
        the ``*_wall_s`` entries are real wall-clock."""
        completed = list(self.queries.values())
        latency = self.latency_hist.summary()
        latency["total"] = self.latency_hist.total if completed else 0.0
        latency.pop("min", None)
        return {
            "schema": ARTIFACT_SCHEMA,
            "queries": {
                "attributed": len(completed),
                "rejected": len(self.rejected),
                "degraded": sum(a.degraded for a in completed),
                "fast_path": sum(a.fast_path for a in completed),
                "retried": sum(a.retries > 0 for a in completed),
                "breaching": sum(a.slack < 0.0 for a in completed),
            },
            "phases": self.phase_summary(),
            "latency": latency,
            "sched_wall_s": self.sched_wall,
            "sched_phase_wall_s": dict(sorted(self.sched_phase_wall.items())),
        }


def write_profile_json(
    artifact: Dict[str, object], path: Union[str, Path]
) -> Path:
    """Write a profile artifact; parent directories are created."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def read_profile_json(path: Union[str, Path]) -> Dict[str, object]:
    """Load a profile artifact, validating its schema tag."""
    artifact = json.loads(Path(path).read_text())
    schema = artifact.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: expected a {ARTIFACT_SCHEMA!r} artifact, "
            f"got schema={schema!r}"
        )
    return artifact


# ----------------------------------------------------------------------
# Run diffing
# ----------------------------------------------------------------------


@dataclass
class PhaseRegression:
    """One flagged metric movement between two profile artifacts."""

    metric: str
    base: float
    new: float
    kind: str  # "wall" | "sim"

    @property
    def ratio(self) -> float:
        if self.base == 0.0:
            return float("inf") if self.new else 1.0
        return self.new / self.base

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.base:.6g} -> {self.new:.6g} "
            f"({self.ratio:.2f}x, {self.kind})"
        )


@dataclass
class ProfileDiff:
    """Outcome of comparing two profile artifacts.

    ``regressions`` are movements past the thresholds in the *worse*
    direction; ``improvements`` past them in the better one. ``ok`` is
    the CI gate: no regressions.
    """

    regressions: List[PhaseRegression] = field(default_factory=list)
    improvements: List[PhaseRegression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = []
        if self.regressions:
            lines.append(f"REGRESSIONS ({len(self.regressions)}):")
            lines.extend("  " + r.describe() for r in self.regressions)
        if self.improvements:
            lines.append(f"improvements ({len(self.improvements)}):")
            lines.extend("  " + r.describe() for r in self.improvements)
        if not lines:
            lines.append("no phase-level differences past thresholds")
        return "\n".join(lines)


def _sim_metrics(artifact: Dict[str, object]) -> Dict[str, float]:
    """Flat simulated-time metric map (deterministic per seed)."""
    out: Dict[str, float] = {}
    for name, value in artifact.get("queries", {}).items():
        out[f"queries.{name}"] = float(value)
    for phase, stats in artifact.get("phases", {}).items():
        for stat in ("total", "p95"):
            value = stats.get(stat)
            if value is not None and value == value:  # skip NaN
                out[f"phase.{phase}.{stat}"] = float(value)
    latency = artifact.get("latency", {})
    for stat in ("total", "p95", "p99"):
        value = latency.get(stat)
        if value is not None and value == value:
            out[f"latency.{stat}"] = float(value)
    return out


def _wall_metrics(artifact: Dict[str, object]) -> Dict[str, float]:
    """Flat real-wall-clock metric map (noisy across machines)."""
    out = {"sched.wall_s": float(artifact.get("sched_wall_s", 0.0))}
    for phase, value in artifact.get("sched_phase_wall_s", {}).items():
        out[f"sched.phase_wall_s.{phase}"] = float(value)
    return out


#: Counters where a *decrease* is the bad direction.
_GOOD_UP = ("queries.attributed", "queries.fast_path")


def diff_profiles(
    base: Dict[str, object],
    new: Dict[str, object],
    *,
    sim_rel: float = 0.05,
    sim_floor: float = 1e-9,
    wall_ratio: float = 1.6,
    wall_floor: float = 1e-3,
) -> ProfileDiff:
    """Compare two profile artifacts and flag phase-level regressions.

    Simulated-time metrics (phase totals/percentiles, query counters)
    are deterministic per seed, so a same-seed rerun diffs clean; a
    movement past ``sim_rel`` (plus the ``sim_floor`` absolute guard
    against 1e-12-scale noise) is flagged. Real wall-clock metrics (the
    DP step-phase timers) are machine-noisy, so a regression needs
    *both* a ``wall_ratio`` blow-up and a ``wall_floor`` absolute
    increase — sub-millisecond jitter on a fast phase never pages.
    """
    diff = ProfileDiff()

    base_sim, new_sim = _sim_metrics(base), _sim_metrics(new)
    for metric in sorted(set(base_sim) | set(new_sim)):
        b = base_sim.get(metric, 0.0)
        n = new_sim.get(metric, 0.0)
        delta = n - b
        if abs(delta) <= max(sim_rel * abs(b), sim_floor):
            continue
        worse = delta < 0 if metric in _GOOD_UP else delta > 0
        entry = PhaseRegression(metric, b, n, "sim")
        (diff.regressions if worse else diff.improvements).append(entry)

    base_wall, new_wall = _wall_metrics(base), _wall_metrics(new)
    for metric in sorted(set(base_wall) | set(new_wall)):
        b = base_wall.get(metric, 0.0)
        n = new_wall.get(metric, 0.0)
        if n > b * wall_ratio and n - b > wall_floor:
            diff.regressions.append(PhaseRegression(metric, b, n, "wall"))
        elif b > n * wall_ratio and b - n > wall_floor:
            diff.improvements.append(PhaseRegression(metric, b, n, "wall"))
    return diff
