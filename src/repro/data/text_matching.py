"""Synthetic text-matching task (intelligent Q&A system).

The paper's first application matches a customer question against a
database candidate and predicts whether both map to the same answer. We
reproduce the *statistical* structure of that task: each sample is a pair
of latent "sentence embeddings" whose alignment determines the match
probability, and the observable features are the standard pair encoding
``[u, v, |u - v|, u * v]`` used by deep matching models.

Samples near the decision boundary (alignment close to the threshold)
are generated with genuinely ambiguous labels, which is what makes some
queries hard for every base model — the redundancy structure Fig. 1b and
Section I measure.
"""

from __future__ import annotations

import numpy as np

from repro.data.base import Dataset
from repro.utils.rng import SeedLike, as_rng


def make_text_matching(
    n_samples: int = 4000,
    latent_dim: int = 6,
    sharpness: float = 4.0,
    seed: SeedLike = None,
) -> Dataset:
    """Generate the synthetic Q&A pair-matching dataset.

    Args:
        n_samples: Number of question pairs.
        latent_dim: Dimension of each latent sentence embedding; the
            feature dimension is ``4 * latent_dim``.
        sharpness: Slope of the match posterior. Lower values create more
            ambiguous pairs.
        seed: RNG seed.

    Returns:
        A binary classification :class:`Dataset` with latent difficulty
        ``1 - |2 p - 1|`` where ``p`` is the true match posterior.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if latent_dim < 2:
        raise ValueError(f"latent_dim must be >= 2, got {latent_dim}")
    rng = as_rng(seed)

    u = rng.normal(size=(n_samples, latent_dim))
    # Half the pairs are generated as paraphrases (v close to u), half as
    # unrelated; interpolation strength is continuous so alignment spans
    # the whole range rather than being bimodal.
    mix = rng.beta(0.7, 0.7, size=(n_samples, 1))
    noise = rng.normal(size=(n_samples, latent_dim))
    v = mix * u + (1.0 - mix) * noise + 0.25 * rng.normal(
        size=(n_samples, latent_dim)
    )

    alignment = (u * v).sum(axis=1) / np.sqrt(latent_dim)
    norm = np.linalg.norm(u, axis=1) * np.linalg.norm(v, axis=1)
    cosine = (u * v).sum(axis=1) / np.maximum(norm, 1e-9)
    score = 0.5 * alignment + 3.0 * cosine
    # Center on the empirical median so match/no-match stay balanced
    # (real Q&A candidate retrieval feeds roughly balanced pairs).
    score -= np.median(score)

    posterior = 1.0 / (1.0 + np.exp(-sharpness * score))
    labels = (rng.random(n_samples) < posterior).astype(int)
    difficulty = 1.0 - np.abs(2.0 * posterior - 1.0)

    features = np.concatenate([u, v, np.abs(u - v), u * v], axis=1)
    return Dataset(
        name="text_matching",
        task="classification",
        features=features,
        labels=labels,
        num_classes=2,
        difficulty=difficulty,
        metadata={"latent_dim": latent_dim, "posterior": posterior},
    )
