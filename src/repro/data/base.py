"""Dataset container shared by every synthetic task."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng

VALID_TASKS = ("classification", "regression", "retrieval")


@dataclass
class Dataset:
    """A supervised dataset with an optional latent difficulty channel.

    Attributes:
        name: Human-readable dataset name.
        task: One of ``classification``, ``regression``, ``retrieval``.
        features: ``(n, d)`` feature matrix — the only thing models see.
        labels: ``(n,)`` integer labels for classification, ``(n, k)``
            targets for regression/retrieval.
        num_classes: Number of classes (classification only).
        difficulty: ``(n,)`` latent difficulty in ``[0, 1]``; generative
            ground truth used for analysis and distribution-shift
            resampling, never shown to models.
        metadata: Task-specific extras (e.g. camera ids, the retrieval
            database).
    """

    name: str
    task: str
    features: np.ndarray
    labels: np.ndarray
    num_classes: int = 0
    difficulty: Optional[np.ndarray] = None
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.task not in VALID_TASKS:
            raise ValueError(
                f"task must be one of {VALID_TASKS}, got {self.task!r}"
            )
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels)
        if self.features.ndim != 2:
            raise ValueError(
                f"features must be 2-d, got shape {self.features.shape}"
            )
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"features and labels disagree on sample count: "
                f"{self.features.shape[0]} vs {self.labels.shape[0]}"
            )
        if self.task == "classification" and self.num_classes < 2:
            raise ValueError("classification datasets need num_classes >= 2")
        if self.difficulty is not None:
            self.difficulty = np.asarray(self.difficulty, dtype=float)
            if self.difficulty.shape[0] != len(self):
                raise ValueError("difficulty length must match sample count")

    def __len__(self) -> int:
        return int(self.features.shape[0])

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a new dataset restricted to ``indices``.

        Metadata arrays aligned with the sample axis (first dimension
        equals ``len(self)``) are sliced too; everything else (e.g. the
        retrieval database) is carried over unchanged.
        """
        indices = np.asarray(indices, dtype=int)
        metadata = {}
        for key, value in self.metadata.items():
            if isinstance(value, np.ndarray) and value.shape[:1] == (len(self),):
                metadata[key] = value[indices]
            else:
                metadata[key] = value
        return Dataset(
            name=name or self.name,
            task=self.task,
            features=self.features[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            difficulty=(
                None if self.difficulty is None else self.difficulty[indices]
            ),
            metadata=metadata,
        )

    def split(
        self, fractions: Sequence[float], seed: SeedLike = None
    ) -> Tuple["Dataset", ...]:
        """Random disjoint splits with the given fractions (must sum <= 1)."""
        fractions = list(fractions)
        if any(f <= 0 for f in fractions):
            raise ValueError(f"fractions must be positive, got {fractions}")
        if sum(fractions) > 1.0 + 1e-9:
            raise ValueError(f"fractions sum to {sum(fractions)} > 1")
        rng = as_rng(seed)
        order = rng.permutation(len(self))
        parts = []
        start = 0
        for fraction in fractions:
            size = int(round(fraction * len(self)))
            parts.append(self.subset(order[start : start + size]))
            start += size
        return tuple(parts)


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.3, seed: SeedLike = None
) -> Tuple[Dataset, Dataset]:
    """Convenience two-way split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    train, test = dataset.split([1.0 - test_fraction, test_fraction], seed=seed)
    return train, test
