"""Synthetic vehicle-counting task (video analytics).

UA-DETRAC frames are replaced by a generative model of a traffic camera:
each frame has per-lane activity levels, and the true vehicle count is a
function of those levels. The *observable* features are a clutter-
corrupted view of the lanes — the higher the scene clutter (occlusion,
rain, night), the noisier the features — so frames with high clutter are
genuinely harder for every detector, mirroring how real detectors degrade
together on degraded frames.

Each frame also carries a camera id so that Exp-1's per-camera random
deadlines (locations with different priorities) can be reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.data.base import Dataset
from repro.utils.rng import SeedLike, as_rng


def make_vehicle_counting(
    n_samples: int = 4000,
    n_lanes: int = 6,
    n_cameras: int = 24,
    max_clutter_noise: float = 1.5,
    seed: SeedLike = None,
) -> Dataset:
    """Generate the synthetic per-frame vehicle-count regression dataset.

    Args:
        n_samples: Number of frames.
        n_lanes: Lanes per camera view; feature dimension is
            ``n_lanes + 2`` (lanes + clutter + time-of-day).
        n_cameras: Number of distinct cameras (paper: 24 locations).
        max_clutter_noise: Feature-noise scale at clutter = 1.
        seed: RNG seed.

    Returns:
        A regression :class:`Dataset` with ``labels`` holding the true
        count ``(n, 1)`` and latent difficulty equal to scene clutter.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if n_lanes < 1:
        raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
    if n_cameras < 1:
        raise ValueError(f"n_cameras must be >= 1, got {n_cameras}")
    rng = as_rng(seed)

    cameras = rng.integers(n_cameras, size=n_samples)
    # Cameras differ in typical traffic intensity.
    camera_intensity = rng.uniform(0.5, 2.0, size=n_cameras)
    lanes = rng.gamma(
        shape=2.0, scale=camera_intensity[cameras][:, None], size=(n_samples, n_lanes)
    )
    time_of_day = rng.uniform(0.0, 1.0, size=n_samples)
    clutter = rng.beta(1.6, 2.4, size=n_samples)

    counts = lanes.sum(axis=1) + 1.5 * np.sin(np.pi * time_of_day) * lanes.mean(
        axis=1
    )

    observed_lanes = lanes + rng.normal(
        size=(n_samples, n_lanes)
    ) * (max_clutter_noise * clutter[:, None]) * (1.0 + lanes * 0.1)
    features = np.concatenate(
        [observed_lanes, clutter[:, None], time_of_day[:, None]], axis=1
    )

    return Dataset(
        name="vehicle_counting",
        task="regression",
        features=features,
        labels=counts[:, None],
        difficulty=clutter,
        metadata={"camera": cameras, "n_cameras": n_cameras},
    )
