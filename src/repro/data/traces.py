"""Query arrival traces and deadline assignment.

The paper evaluates on (1) a recorded one-day trace from a production
Q&A system whose load varies ~30x between night and the midday burst
(Fig. 1a) and (2) Poisson traffic with constant rate. ``diurnal_trace``
reproduces the former's shape with a non-homogeneous Poisson process;
``poisson_trace`` the latter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive

# Hourly relative load of the paper's one-day Q&A trace: quiet overnight,
# ramp at 8-10h, heavy plateau with a midday spike, medium evening.
DIURNAL_PROFILE = np.array(
    [
        0.6, 0.5, 0.4, 0.4, 0.4, 0.5, 0.8, 1.0,   # 0-8h: light
        2.0, 5.0, 12.0, 18.0, 22.0, 20.0, 24.0, 21.0,  # 8-16h: burst
        16.0, 12.0, 7.0, 5.0, 3.5, 2.5, 1.5, 1.0,  # 16-24h: cool-down
    ]
)


@dataclass
class ArrivalTrace:
    """Arrival times (seconds, sorted ascending) plus trace metadata."""

    arrivals: np.ndarray
    duration: float
    name: str = "trace"

    def __post_init__(self):
        self.arrivals = np.sort(np.asarray(self.arrivals, dtype=float))
        if self.arrivals.size and self.arrivals[0] < 0:
            raise ValueError("arrival times must be non-negative")
        self.duration = check_positive("duration", self.duration)

    def __len__(self) -> int:
        return int(self.arrivals.shape[0])

    def rate_per_bin(self, bin_width: float) -> np.ndarray:
        """Arrival counts per time bin (for load plots like Fig. 1a)."""
        check_positive("bin_width", bin_width)
        n_bins = int(np.ceil(self.duration / bin_width))
        edges = np.arange(n_bins + 1) * bin_width
        counts, _ = np.histogram(self.arrivals, bins=edges)
        return counts.astype(float)


def poisson_trace(
    rate: float,
    duration: float,
    seed: SeedLike = None,
    name: str = "poisson",
) -> ArrivalTrace:
    """Homogeneous Poisson arrivals at ``rate`` per second for ``duration``."""
    check_positive("rate", rate)
    check_positive("duration", duration)
    rng = as_rng(seed)
    expected = rate * duration
    count = rng.poisson(expected)
    arrivals = np.sort(rng.uniform(0.0, duration, size=count))
    return ArrivalTrace(arrivals=arrivals, duration=duration, name=name)


def diurnal_trace(
    base_rate: float,
    duration: float,
    profile: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
    name: str = "one_day",
) -> ArrivalTrace:
    """Non-homogeneous Poisson arrivals following a (scaled) daily profile.

    Args:
        base_rate: Arrivals per second when the profile value is 1.
        duration: Trace length in seconds; the profile is stretched to
            cover it (so tests can simulate a compressed "day").
        profile: Relative load per equal time segment; defaults to the
            paper-shaped :data:`DIURNAL_PROFILE`.
        seed: RNG seed.
    """
    check_positive("base_rate", base_rate)
    check_positive("duration", duration)
    profile_arr = np.asarray(
        DIURNAL_PROFILE if profile is None else profile, dtype=float
    )
    if profile_arr.ndim != 1 or profile_arr.size == 0:
        raise ValueError("profile must be a non-empty 1-d sequence")
    if np.any(profile_arr < 0):
        raise ValueError("profile values must be non-negative")

    rng = as_rng(seed)
    peak = float(profile_arr.max())
    if peak == 0:
        return ArrivalTrace(np.empty(0), duration, name=name)

    # Thinning: draw from a homogeneous process at the peak rate, accept
    # with probability rate(t)/peak_rate.
    candidates = poisson_trace(base_rate * peak, duration, seed=rng).arrivals
    segment = np.minimum(
        (candidates / duration * profile_arr.size).astype(int),
        profile_arr.size - 1,
    )
    accept = rng.random(candidates.shape[0]) < profile_arr[segment] / peak
    return ArrivalTrace(candidates[accept], duration, name=name)


def mmpp_trace(
    rates: Sequence[float],
    mean_dwell: float,
    duration: float,
    seed: SeedLike = None,
    name: str = "mmpp",
) -> ArrivalTrace:
    """Markov-modulated Poisson arrivals.

    A hidden state switches between ``rates`` with exponential dwell
    times of mean ``mean_dwell``; arrivals are Poisson at the current
    state's rate. This is a standard model for bursty service traffic
    beyond fixed daily profiles — bursts arrive at random times, which
    stresses schedulers that (implicitly) assume a predictable load.
    """
    rates_arr = np.asarray(rates, dtype=float)
    if rates_arr.ndim != 1 or rates_arr.size == 0:
        raise ValueError("rates must be a non-empty 1-d sequence")
    if np.any(rates_arr < 0):
        raise ValueError("rates must be non-negative")
    check_positive("mean_dwell", mean_dwell)
    check_positive("duration", duration)

    rng = as_rng(seed)
    arrivals = []
    t = 0.0
    state = int(rng.integers(rates_arr.size))
    while t < duration:
        dwell = float(rng.exponential(mean_dwell))
        end = min(t + dwell, duration)
        rate = rates_arr[state]
        if rate > 0:
            count = rng.poisson(rate * (end - t))
            arrivals.append(rng.uniform(t, end, size=count))
        t = end
        # Jump to a different state (uniform among the others).
        if rates_arr.size > 1:
            offset = int(rng.integers(1, rates_arr.size))
            state = (state + offset) % rates_arr.size
    stacked = (
        np.concatenate(arrivals) if arrivals else np.empty(0, dtype=float)
    )
    return ArrivalTrace(arrivals=stacked, duration=duration, name=name)


def constant_deadlines(n: int, deadline: float) -> np.ndarray:
    """Relative deadlines: every query gets the same budget (text matching)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    check_positive("deadline", deadline)
    return np.full(n, float(deadline))


def camera_deadlines(
    camera_ids: np.ndarray,
    low: float,
    high: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Per-camera relative deadlines drawn uniformly (vehicle counting).

    Each camera (location priority) gets one deadline sampled from
    ``U[low, high]``; all queries from that camera share it, matching the
    paper's "deadlines for each camera are sampled randomly from the
    uniform distribution".
    """
    check_positive("low", low)
    if high < low:
        raise ValueError(f"high must be >= low, got [{low}, {high}]")
    camera_ids = np.asarray(camera_ids, dtype=int)
    rng = as_rng(seed)
    n_cameras = int(camera_ids.max()) + 1 if camera_ids.size else 0
    per_camera = rng.uniform(low, high, size=max(n_cameras, 1))
    return per_camera[camera_ids]
