"""Difficulty-distribution resampling for the Exp-3 study (Fig. 10).

The paper alters the test pool so that query discrepancy scores follow a
Normal or Gamma distribution with a chosen mean. Given true scores for a
pool of candidates, :func:`resample_to_distribution` draws (with
replacement) a sample whose empirical score distribution approximates
the requested target via importance resampling.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive


def normal_pdf(mean: float, std: float) -> Callable[[np.ndarray], np.ndarray]:
    """Unnormalised Normal density with the given mean and std."""
    check_positive("std", std)

    def pdf(x: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * ((np.asarray(x) - mean) / std) ** 2)

    return pdf


def gamma_pdf(mean: float, scale: float = 1.0) -> Callable[[np.ndarray], np.ndarray]:
    """Unnormalised Gamma density parameterised by its mean (shape*scale)."""
    check_positive("mean", mean)
    check_positive("scale", scale)
    shape = mean / scale

    def pdf(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        positive = x > 0
        out[positive] = x[positive] ** (shape - 1.0) * np.exp(-x[positive] / scale)
        return out

    return pdf


def uniform_pdf(low: float, high: float) -> Callable[[np.ndarray], np.ndarray]:
    """Unnormalised Uniform density on [low, high]."""
    if high <= low:
        raise ValueError(f"high must be > low, got [{low}, {high}]")

    def pdf(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return ((x >= low) & (x <= high)).astype(float)

    return pdf


def resample_to_distribution(
    scores: np.ndarray,
    target_pdf: Callable[[np.ndarray], np.ndarray],
    n_samples: int,
    n_bins: int = 40,
    seed: SeedLike = None,
) -> np.ndarray:
    """Return indices into ``scores`` resampled to follow ``target_pdf``.

    Importance resampling: each candidate is weighted by the target
    density at its score divided by the empirical density of the pool
    (estimated with a histogram), then ``n_samples`` indices are drawn
    with replacement proportionally to the weights.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError("scores must be a non-empty 1-d array")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")

    rng = as_rng(seed)
    counts, edges = np.histogram(scores, bins=n_bins)
    bin_index = np.clip(np.digitize(scores, edges) - 1, 0, n_bins - 1)
    empirical = counts[bin_index].astype(float)
    empirical[empirical == 0] = 1.0

    weights = target_pdf(scores) / empirical
    total = weights.sum()
    if total <= 0:
        raise ValueError(
            "target density assigns zero mass to every candidate score"
        )
    return rng.choice(scores.size, size=n_samples, replace=True, p=weights / total)
