"""Synthetic image-retrieval task (landmark retrieval on R1M).

The paper retrieves landmark images from a million-image database with
two DELG variants. We model retrieval as embedding regression: the
database is a set of topic-clustered item embeddings; each query has a
true embedding inside one topic, and the base models must regress that
embedding from a distorted feature view. Ranking the database by cosine
similarity to the predicted embedding and scoring mean average precision
against the query's topic reproduces the evaluation pipeline, including
the two-base-model edge case Table I highlights.

Query distortion magnitude is the latent difficulty knob: heavily
distorted queries (blur, crop, viewpoint change in the real task) are
hard for both models at once.
"""

from __future__ import annotations

import numpy as np

from repro.data.base import Dataset
from repro.utils.rng import SeedLike, as_rng


def make_image_retrieval(
    n_queries: int = 1500,
    n_database: int = 1200,
    n_topics: int = 30,
    embed_dim: int = 8,
    feature_dim: int = 16,
    max_distortion: float = 2.5,
    seed: SeedLike = None,
) -> Dataset:
    """Generate the synthetic embedding-retrieval dataset.

    Returns:
        A retrieval :class:`Dataset` whose ``labels`` are the true query
        embeddings ``(n, embed_dim)``. ``metadata`` holds the database
        embeddings, per-item topics and per-query topics needed for mAP.
    """
    if n_topics < 2:
        raise ValueError(f"n_topics must be >= 2, got {n_topics}")
    if n_database < n_topics:
        raise ValueError("database must contain at least one item per topic")
    rng = as_rng(seed)

    topic_centers = rng.normal(size=(n_topics, embed_dim)) * 2.0
    item_topics = rng.integers(n_topics, size=n_database)
    database = topic_centers[item_topics] + 0.4 * rng.normal(
        size=(n_database, embed_dim)
    )

    query_topics = rng.integers(n_topics, size=n_queries)
    true_embeddings = topic_centers[query_topics] + 0.3 * rng.normal(
        size=(n_queries, embed_dim)
    )

    distortion = rng.beta(1.4, 2.6, size=n_queries)
    # A near-orthogonal lift keeps the embedding recoverable from clean
    # features; distortion (blur/crop/viewpoint) is additive noise.
    projection, _ = np.linalg.qr(rng.normal(size=(feature_dim, embed_dim)))
    features = true_embeddings @ projection.T
    features += rng.normal(size=(n_queries, feature_dim)) * (
        max_distortion * distortion[:, None]
    )

    return Dataset(
        name="image_retrieval",
        task="retrieval",
        features=features,
        labels=true_embeddings,
        difficulty=distortion,
        metadata={
            "database": database,
            "item_topics": item_topics,
            "query_topics": query_topics,
            "n_topics": n_topics,
        },
    )


def average_precision(ranked_topics: np.ndarray, query_topic: int) -> float:
    """Average precision of a ranked item-topic list for one query."""
    relevant = np.asarray(ranked_topics) == query_topic
    total_relevant = int(relevant.sum())
    if total_relevant == 0:
        return 0.0
    hits = np.cumsum(relevant)
    ranks = np.arange(1, relevant.shape[0] + 1)
    precision_at_hit = hits[relevant] / ranks[relevant]
    return float(precision_at_hit.sum() / total_relevant)


def retrieval_map(
    predicted_embeddings: np.ndarray,
    database: np.ndarray,
    item_topics: np.ndarray,
    query_topics: np.ndarray,
    top_k: int = 100,
) -> float:
    """Mean average precision of cosine-ranked retrieval at ``top_k``."""
    predicted = np.asarray(predicted_embeddings, dtype=float)
    database = np.asarray(database, dtype=float)
    db_norm = database / np.maximum(
        np.linalg.norm(database, axis=1, keepdims=True), 1e-9
    )
    query_norm = predicted / np.maximum(
        np.linalg.norm(predicted, axis=1, keepdims=True), 1e-9
    )
    similarity = query_norm @ db_norm.T
    scores = []
    for i in range(predicted.shape[0]):
        order = np.argsort(-similarity[i])[:top_k]
        scores.append(average_precision(item_topics[order], int(query_topics[i])))
    return float(np.mean(scores)) if scores else 0.0
