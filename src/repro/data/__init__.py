"""Synthetic datasets and query traces.

Each loader returns a :class:`repro.data.base.Dataset` whose samples have
a *latent difficulty*: a generative knob that controls how ambiguous the
sample is. Trained base models never see the knob — they only see
features — but heterogeneous models naturally disagree more on
high-difficulty samples, which is precisely the structure the paper's
discrepancy score exploits.
"""

from repro.data.base import Dataset, train_test_split
from repro.data.text_matching import make_text_matching
from repro.data.vehicle_counting import make_vehicle_counting
from repro.data.image_retrieval import make_image_retrieval
from repro.data.cifar_like import make_cifar_like
from repro.data.traces import (
    ArrivalTrace,
    constant_deadlines,
    diurnal_trace,
    camera_deadlines,
    mmpp_trace,
    poisson_trace,
)
from repro.data.sampling import resample_to_distribution

__all__ = [
    "Dataset",
    "train_test_split",
    "make_text_matching",
    "make_vehicle_counting",
    "make_image_retrieval",
    "make_cifar_like",
    "ArrivalTrace",
    "poisson_trace",
    "diurnal_trace",
    "mmpp_trace",
    "constant_deadlines",
    "camera_deadlines",
    "resample_to_distribution",
]
