"""CIFAR-100-like multi-class task for the preference-variance study.

Fig. 5 of the paper trains six CNN architectures on CIFAR-100 and shows
that per-model *preference* vectors decorrelate across architectures and
random seeds while the discrepancy score stays stable. The statistical
ingredients are (a) many classes with overlapping class-conditional
distributions and (b) per-sample corruption levels, both of which this
Gaussian-blob generator provides at numpy scale.
"""

from __future__ import annotations

from repro.data.base import Dataset
from repro.utils.rng import SeedLike, as_rng


def make_cifar_like(
    n_samples: int = 3000,
    n_classes: int = 10,
    feature_dim: int = 20,
    class_separation: float = 2.2,
    seed: SeedLike = None,
) -> Dataset:
    """Generate an overlapping-blob multi-class dataset.

    Per-sample corruption (the latent difficulty) widens the noise around
    the class center, so corrupted samples land between classes and are
    ambiguous for any classifier.
    """
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if feature_dim < 2:
        raise ValueError(f"feature_dim must be >= 2, got {feature_dim}")
    rng = as_rng(seed)

    centers = rng.normal(size=(n_classes, feature_dim)) * class_separation
    labels = rng.integers(n_classes, size=n_samples)
    corruption = rng.beta(1.5, 2.5, size=n_samples)
    noise_scale = 0.8 + 2.6 * corruption
    features = centers[labels] + rng.normal(size=(n_samples, feature_dim)) * (
        noise_scale[:, None]
    )

    return Dataset(
        name="cifar_like",
        task="classification",
        features=features,
        labels=labels,
        num_classes=n_classes,
        difficulty=corruption,
        metadata={"centers": centers},
    )
