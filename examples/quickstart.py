"""Quickstart: serve a deep ensemble with Schemble and compare against
the original execute-everything pipeline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EnsembleServer,
    SchemblePipeline,
    ServingWorkload,
    build_text_matching_ensemble,
    make_text_matching,
)
from repro.baselines.original import original_policy
from repro.data.traces import poisson_trace
from repro.difficulty.profiling import subset_correctness
from repro.models.prediction_table import PredictionTable


def main():
    # 1. Data: a synthetic Q&A pair-matching task with latent difficulty.
    data = make_text_matching(n_samples=2400, seed=0)
    train, cal, history, pool = data.split([0.4, 0.1, 0.25, 0.25], seed=1)

    # 2. A heterogeneous deep ensemble (fast BiLSTM + two transformers,
    #    stacked by gradient-boosted trees), trained from scratch.
    ensemble = build_text_matching_ensemble(
        train, calibration=cal, epochs=12, seed=2
    )
    print("ensemble:", ", ".join(
        f"{m.name} ({1e3*m.latency:.0f}ms)" for m in ensemble.models
    ))

    # 3. The Schemble offline phase: record historical inference results,
    #    compute discrepancy scores, profile subset accuracy, train the
    #    score predictor.
    pipeline = SchemblePipeline(ensemble, seed=3).fit(history.features)

    # 4. A bursty open-loop workload over a held-out pool. The quality
    #    table scores every model subset against the full ensemble.
    pool_table = PredictionTable.from_models(
        ensemble.models, pool.features, ensemble
    )
    quality = subset_correctness(pool_table, ensemble).astype(float)
    trace = poisson_trace(rate=18.0, duration=30.0, seed=4)
    rng = np.random.default_rng(5)
    workload = ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=np.full(len(trace), 0.15),  # 150 ms per query
        sample_indices=rng.integers(len(pool), size=len(trace)),
        quality=quality,
    )
    print(f"workload: {len(trace)} queries over {trace.duration:.0f}s, "
          f"deadline 150ms")

    # 5. Serve it twice: Original pipeline vs Schemble.
    latencies = [m.latency for m in ensemble.models]
    for name, policy in [
        ("original", original_policy(ensemble.size)),
        ("schemble", pipeline.policy(pool.features)),
    ]:
        result = EnsembleServer(latencies, policy).run(workload)
        print(
            f"{name:9s} accuracy={result.accuracy(quality):.3f} "
            f"deadline-miss-rate={result.deadline_miss_rate():.3f} "
            f"mean-latency={result.latency_stats()['mean']*1e3:.0f}ms"
        )


if __name__ == "__main__":
    main()
