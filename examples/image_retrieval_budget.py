"""Image retrieval + offline budgeted selection.

Part 1 serves the two-model DELG-style retrieval ensemble under
deadlines (the paper's third application). Part 2 switches to the
offline setting of the appendix's Exp-4: select model subsets per query
under a cumulative runtime budget, comparing Schemble* against Random
and the oracle that knows true difficulty.

Run:  python examples/image_retrieval_budget.py
"""

import numpy as np

from repro.data.traces import poisson_trace
from repro.experiments import build_setup, make_workload, run_policy, summarize
from repro.experiments.offline_budget import run_offline_budget


def main():
    print("building image-retrieval setup (2 embedding models)...")
    setup = build_setup("image_retrieval", "small", seed=0)

    # --- online serving under deadlines -----------------------------
    trace = poisson_trace(rate=setup.overload_rate, duration=30.0, seed=9)
    workload = make_workload(setup, trace, deadline=0.2, seed=10)
    print(f"\nonline serving: {len(trace)} queries, 200ms deadlines")
    print(f"{'method':12s} {'mAP':>6s} {'DMR':>6s}")
    for name, policy in setup.policies().items():
        stats = summarize(
            run_policy(setup, policy, workload, policy_name=name), setup
        )
        print(f"{name:12s} {stats['accuracy']:6.3f} {stats['dmr']:6.3f}")

    # --- offline budgeted selection (Fig. 16) -----------------------
    out = run_offline_budget(setup, seed=11)
    budgets = out["budgets"]
    print("\noffline accuracy under per-query runtime budgets")
    header = "method            " + "  ".join(f"{1e3*b:5.0f}ms" for b in budgets)
    print(header)
    for name in ("random", "static", "schemble*", "schemble*(oracle)"):
        series = out["methods"][name]
        print(f"{name:18s}" + "  ".join(f"{v:7.3f}" for v in series))


if __name__ == "__main__":
    main()
