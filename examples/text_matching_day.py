"""One-day Q&A serving: how every baseline copes with the traffic burst.

Reproduces the paper's motivating scenario (Figs. 1a/9/14) on a
compressed "day": overnight the load is light, then the midday burst
multiplies it ~30x and queue blocking sets in. Prints per-hour deadline
miss rates for each serving baseline.

Run:  python examples/text_matching_day.py
"""

import numpy as np

from repro.experiments import build_setup
from repro.experiments.trace_segments import run_day_trace


def main():
    print("building text-matching setup (training 3 models + pipelines)...")
    setup = build_setup("text_matching", "small", seed=0)

    baselines = ("original", "static", "des", "gating", "schemble")
    out = run_day_trace(
        setup,
        baselines=baselines,
        deadline=0.105,  # the paper's 100ms-class deadline
        duration=240.0,  # 10 simulated seconds per "hour"
        n_segments=24,
        seed=5,
    )

    load = np.array(out["original"]["load"], dtype=int)
    header = "hour  load  " + "  ".join(f"{n:>9s}" for n in baselines)
    print("\nper-hour deadline miss rate")
    print(header)
    print("-" * len(header))
    for hour in range(24):
        row = f"{hour:02d}h   {load[hour]:4d}  "
        row += "  ".join(
            f"{out[name]['dmr'][hour]:9.2f}" for name in baselines
        )
        print(row)

    print("\noverall")
    for name in baselines:
        print(
            f"{name:9s} accuracy={out[name]['overall_accuracy']:.3f} "
            f"DMR={out[name]['overall_dmr']:.3f}"
        )


if __name__ == "__main__":
    main()
