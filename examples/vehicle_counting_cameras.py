"""Vehicle counting with per-camera deadlines and scheduler ablation.

The 24 cameras have different priorities, so each gets its own random
deadline (the paper's Exp-1 setup for UA-DETRAC). This example compares
the DP scheduler against greedy orders (EDF/FIFO/SJF) on the same
difficulty-aware utilities — the paper's Exp-4.

Run:  python examples/vehicle_counting_cameras.py
"""

from repro.data.traces import poisson_trace
from repro.experiments import build_setup, make_workload, run_policy, summarize
from repro.experiments.scheduler_ablation import scheduler_suite


def main():
    print("building vehicle-counting setup (3 detectors + pipelines)...")
    setup = build_setup("vehicle_counting", "small", seed=0)

    trace = poisson_trace(rate=setup.overload_rate, duration=30.0, seed=7)
    workload = make_workload(
        setup,
        trace,
        deadline=0.2,
        deadline_spread=0.05,  # per-camera random deadlines
        seed=8,
    )
    print(
        f"{len(trace)} frames at {setup.overload_rate:.0f}/s; deadlines "
        "drawn per camera from U[0.15s, 0.25s]"
    )

    print(f"\n{'scheduler':14s} {'accuracy':>9s} {'DMR':>6s} {'p95 lat':>8s}")
    for name, scheduler in scheduler_suite(deltas=(0.1, 0.01, 0.001)).items():
        policy = setup.schemble.policy(
            setup.pool.features, name=name, scheduler=scheduler
        )
        stats = summarize(
            run_policy(setup, policy, workload, policy_name=name), setup
        )
        print(
            f"{name:14s} {stats['accuracy']:9.3f} {stats['dmr']:6.3f} "
            f"{stats['latency_p95']*1e3:7.0f}ms"
        )


if __name__ == "__main__":
    main()
