"""Figs. 9 & 14 — one-day trace: per-segment latency/accuracy/DMR.

The compressed day (diurnal burst) is served by all baselines with
rejection enabled (Fig. 14's per-segment accuracy/DMR) and the key
latency comparison of Fig. 9: Schemble/Static/Gating eliminate the
latency burst that floors the Original pipeline, and Schemble adapts by
running fewer models during the burst.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.trace_segments import run_day_trace
from repro.metrics.tables import format_table

BASELINES = ("original", "static", "des", "gating", "schemble_ea", "schemble")


def test_fig9_fig14_one_day_trace(benchmark, tm_setup):
    out = benchmark.pedantic(
        lambda: run_day_trace(
            tm_setup,
            baselines=BASELINES,
            deadline=0.105,
            duration=240.0,
            n_segments=24,
            seed=5,
        ),
        rounds=1,
        iterations=1,
    )

    load = np.array(out["original"]["load"])
    burst = np.argsort(load)[-6:]
    night = [h for h in range(8) if load[h] > 0]

    rows = []
    for name in BASELINES:
        seg = out[name]
        rows.append(
            [
                name,
                f"{np.mean([seg['dmr'][h] for h in night]):.2f}" if night else "-",
                f"{np.mean([seg['dmr'][h] for h in burst]):.2f}",
                f"{np.mean([seg['latency'][h] for h in burst]):.3f}",
                f"{seg['overall_accuracy']:.3f}",
                f"{seg['overall_dmr']:.3f}",
            ]
        )
    text = format_table(
        ["method", "night DMR", "burst DMR", "burst latency", "acc", "DMR"],
        rows,
        title="Fig 9/14 — one-day trace, per-segment behaviour",
    )
    save_result("fig9_fig14", text, {n: {k: v for k, v in out[n].items()} for n in BASELINES})
    print(text)

    # Original's burst latency/misses dwarf Schemble's.
    orig_burst_dmr = np.mean([out["original"]["dmr"][h] for h in burst])
    sch_burst_dmr = np.mean([out["schemble"]["dmr"][h] for h in burst])
    assert sch_burst_dmr < 0.5 * orig_burst_dmr
    # Schemble eliminates the latency burst (Fig. 9a).
    orig_lat = np.mean([out["original"]["latency"][h] for h in burst])
    sch_lat = np.mean([out["schemble"]["latency"][h] for h in burst])
    assert sch_lat < orig_lat
    # Overall accuracy ordering holds on the day trace too.
    accs = {n: out[n]["overall_accuracy"] for n in BASELINES}
    non_schemble = [v for k, v in accs.items() if not k.startswith("schemble")]
    assert accs["schemble"] > max(non_schemble)
    # Light-traffic night hours: Schemble misses (almost) nothing.
    if night:
        assert np.mean([out["schemble"]["dmr"][h] for h in night]) < 0.1
