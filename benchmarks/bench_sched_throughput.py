"""Benchmark guard: the vectorized DP scheduler must be fast *and*
bit-exact.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_sched_throughput.py [--quick]

Three checks:

* **Parity** — on randomized instances (mixed buffer sizes, ensemble
  sizes, latency profiles, downed models and quantisation steps) the
  vectorized :class:`DPScheduler` must return exactly the same
  decisions, total utility and work units as the pure-Python
  :class:`DPReferenceScheduler`. Not "close": equal.
* **Speedup** — min-of-N interleaved timing over a buffer-size grid;
  the vectorized path must beat the reference by ``MIN_SPEEDUP`` at
  every grid point at or above 16 queries / 4 models (full mode only —
  CI runners are too noisy for an absolute floor).
* **Regression** — current speedups are compared against the committed
  ``benchmarks/results/BENCH_sched.json`` (read *before* it is
  overwritten): any grid point falling below half its committed
  speedup fails the run. This is the check CI's perf-smoke job
  enforces on every push.

A fourth, vectorized-only measurement times the DP at serving-scale
buffers (64 and 128 queries x 6 models) where the pure-Python
reference is infeasible. These points record the exact-DP step cost
the learned fast path (``benchmarks/bench_policy_distill.py``) is
gated against, and regression-check on the *ratio* to the 16x4 anchor
point — a machine-portable number, unlike absolute seconds.

``--quick`` shrinks the parity set and timing grid for CI.
Results go to ``benchmarks/results/BENCH_sched.json``.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scheduling.dp import DPScheduler  # noqa: E402
from repro.scheduling.dp_reference import DPReferenceScheduler  # noqa: E402
from repro.scheduling.problem import (  # noqa: E402
    QueryRequest,
    SchedulingInstance,
)

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_sched.json"
TABLE_PATH = Path(__file__).parent / "results" / "sched_throughput.txt"

PARITY_INSTANCES = 220
PARITY_INSTANCES_QUICK = 60
PARITY_DELTAS = (0.01, 0.05, 0.25, None)

# (n_queries, n_models) timing grid; quick mode drops the largest point.
GRID = ((4, 2), (8, 3), (16, 4), (32, 4))
GRID_QUICK = ((4, 2), (8, 3), (16, 4))
TIMING_DELTA = 0.05
INSTANCES_PER_POINT = 4
REPEATS = 3
INSTANCES_PER_POINT_QUICK = 2
REPEATS_QUICK = 2

# Serving-scale buffers: vectorized DP only (the reference would take
# minutes per instance), timed per-instance and gated on the ratio to
# the LARGE_RATIO_ANCHOR small-grid point.
LARGE_GRID = ((64, 6), (128, 6))
LARGE_GRID_QUICK = ((64, 6),)
LARGE_INSTANCES = 1
LARGE_REPEATS = 2
LARGE_REPEATS_QUICK = 1
LARGE_RATIO_ANCHOR = (16, 4)
LARGE_REGRESSION_FACTOR = 3.0

# Required vectorized-over-reference speedup at grid points with
# >= 16 queries and 4 models (the serving sweet spot ISSUE targets).
MIN_SPEEDUP = 3.0
MIN_SPEEDUP_QUERIES = 16
MIN_SPEEDUP_MODELS = 4
# Regression tolerance vs the committed baseline speedups.
REGRESSION_FACTOR = 2.0


def make_instance(rng, n_queries, n_models, equal_latencies=False,
                  downed_model=False, tight_deadlines=False):
    """One randomized scheduling instance.

    ``equal_latencies`` forces bit-identical finish-time collisions
    (any two plans running each model equally often tie exactly);
    ``downed_model`` puts one model's busy time at +inf, the degraded
    state fault-mode serving feeds the scheduler.
    """
    if equal_latencies:
        latencies = np.full(n_models, 0.05)
    else:
        latencies = rng.uniform(0.01, 0.2, size=n_models)
    busy = rng.uniform(0.0, 0.1, size=n_models)
    if downed_model and n_models > 1:
        busy[int(rng.integers(0, n_models))] = np.inf
    deadline_range = (0.05, 0.3) if tight_deadlines else (0.1, 1.0)
    n_masks = 1 << n_models
    queries = []
    for qid in range(n_queries):
        utilities = np.zeros(n_masks)
        # Two-decimal rewards make quantised ties common — the case the
        # canonical ordering and unquantised tie-break exist for.
        utilities[1:] = np.round(rng.uniform(0.0, 1.0, size=n_masks - 1), 2)
        queries.append(QueryRequest(
            query_id=qid,
            arrival=0.0,
            deadline=float(rng.uniform(*deadline_range)),
            utilities=utilities,
        ))
    return SchedulingInstance(
        queries=queries, latencies=latencies, busy_until=busy, now=0.0,
    )


def check_parity(n_instances):
    """Decision-for-decision equality on randomized instances."""
    rng = np.random.default_rng(2023)
    mismatches = []
    for i in range(n_instances):
        instance = make_instance(
            rng,
            n_queries=int(rng.integers(1, 9)),
            n_models=int(rng.integers(1, 5)),
            equal_latencies=bool(i % 3 == 0),
            downed_model=bool(i % 5 == 0),
            tight_deadlines=bool(i % 4 == 0),
        )
        delta = PARITY_DELTAS[i % len(PARITY_DELTAS)]
        vec = DPScheduler(delta=delta).schedule(instance)
        ref = DPReferenceScheduler(delta=delta).schedule(instance)
        same = (
            [(d.query_id, d.mask) for d in vec.decisions]
            == [(d.query_id, d.mask) for d in ref.decisions]
            and vec.total_utility == ref.total_utility
            and vec.work_units == ref.work_units
        )
        if not same:
            mismatches.append({
                "instance": i,
                "delta": delta,
                "vectorized": [d.mask for d in vec.decisions],
                "reference": [d.mask for d in ref.decisions],
            })
    return {
        "instances": n_instances,
        "deltas": list(PARITY_DELTAS),
        "mismatches": mismatches,
    }, not mismatches


def time_grid(grid, instances_per_point, repeats):
    """Min-of-N interleaved timing of both schedulers per grid point."""
    results = []
    for n_queries, n_models in grid:
        rng = np.random.default_rng(7 * n_queries + n_models)
        instances = [
            make_instance(rng, n_queries, n_models)
            for _ in range(instances_per_point)
        ]
        vec = DPScheduler(delta=TIMING_DELTA)
        ref = DPReferenceScheduler(delta=TIMING_DELTA)
        # Warm the per-instance mask/quantisation caches so the timed
        # region measures scheduling, not one-off table construction.
        for scheduler in (vec, ref):
            scheduler.schedule(instances[0])
        best = {"vectorized": float("inf"), "reference": float("inf")}
        for _ in range(repeats):
            for name, scheduler in (("vectorized", vec), ("reference", ref)):
                start = time.perf_counter()
                for instance in instances:
                    scheduler.schedule(instance)
                best[name] = min(best[name], time.perf_counter() - start)
        results.append({
            "n_queries": n_queries,
            "n_models": n_models,
            "delta": TIMING_DELTA,
            "instances": instances_per_point,
            "repeats": repeats,
            "vectorized_s": best["vectorized"],
            "reference_s": best["reference"],
            "speedup": best["reference"] / best["vectorized"],
        })
    return results


def time_large_grid(grid, repeats, anchor_per_instance_s):
    """Vectorized-DP-only timing at serving-scale buffer sizes.

    No reference column: the pure-Python DP takes minutes per instance
    here. Each point also records its per-instance cost as a multiple
    of the small-grid anchor point, which is what the regression gate
    compares — absolute seconds vary with the machine, the ratio of
    two runs of the same kernel far less.
    """
    results = []
    for n_queries, n_models in grid:
        rng = np.random.default_rng(7 * n_queries + n_models)
        instances = [
            make_instance(rng, n_queries, n_models)
            for _ in range(LARGE_INSTANCES)
        ]
        vec = DPScheduler(delta=TIMING_DELTA)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for instance in instances:
                vec.schedule(instance)
            best = min(best, time.perf_counter() - start)
        per_instance = best / len(instances)
        results.append({
            "n_queries": n_queries,
            "n_models": n_models,
            "delta": TIMING_DELTA,
            "instances": LARGE_INSTANCES,
            "repeats": repeats,
            "vectorized_s": best,
            "per_instance_s": per_instance,
            "ratio_to_anchor": per_instance / anchor_per_instance_s,
        })
    return results


def check_large_regression(large_timing, committed):
    """Fail any serving-scale point whose anchor ratio blew up 3x."""
    if not committed:
        return [], True
    baseline = {
        (point["n_queries"], point["n_models"]): point["ratio_to_anchor"]
        for point in committed.get("large_timing", [])
    }
    failures = []
    for point in large_timing:
        key = (point["n_queries"], point["n_models"])
        if key not in baseline:
            continue
        ceiling = baseline[key] * LARGE_REGRESSION_FACTOR
        if point["ratio_to_anchor"] > ceiling:
            failures.append({
                "n_queries": key[0],
                "n_models": key[1],
                "ratio_to_anchor": point["ratio_to_anchor"],
                "committed_ratio": baseline[key],
                "ceiling": ceiling,
            })
    return failures, not failures


def check_regression(timing, committed):
    """Fail any grid point whose speedup halved vs the committed run."""
    if not committed:
        return [], True
    baseline = {
        (point["n_queries"], point["n_models"]): point["speedup"]
        for point in committed.get("timing", [])
    }
    failures = []
    for point in timing:
        key = (point["n_queries"], point["n_models"])
        if key not in baseline:
            continue
        floor = baseline[key] / REGRESSION_FACTOR
        if point["speedup"] < floor:
            failures.append({
                "n_queries": key[0],
                "n_models": key[1],
                "speedup": point["speedup"],
                "committed_speedup": baseline[key],
                "floor": floor,
            })
    return failures, not failures


def main(argv=None):
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    # The committed baseline must be read before this run overwrites it.
    committed = None
    if RESULTS_PATH.exists():
        committed = json.loads(RESULTS_PATH.read_text())

    n_parity = PARITY_INSTANCES_QUICK if quick else PARITY_INSTANCES
    parity, parity_ok = check_parity(n_parity)
    print(f"parity: {n_parity} instances, "
          f"{len(parity['mismatches'])} mismatches")

    grid = GRID_QUICK if quick else GRID
    timing = time_grid(
        grid,
        INSTANCES_PER_POINT_QUICK if quick else INSTANCES_PER_POINT,
        REPEATS_QUICK if quick else REPEATS,
    )
    for point in timing:
        print(f"  n={point['n_queries']:3d} m={point['n_models']}: "
              f"vectorized {point['vectorized_s'] * 1e3:8.2f} ms, "
              f"reference {point['reference_s'] * 1e3:8.2f} ms, "
              f"speedup {point['speedup']:.2f}x")

    anchor = next(
        p for p in timing
        if (p["n_queries"], p["n_models"]) == LARGE_RATIO_ANCHOR
    )
    anchor_per_instance = anchor["vectorized_s"] / anchor["instances"]
    large_timing = time_large_grid(
        LARGE_GRID_QUICK if quick else LARGE_GRID,
        LARGE_REPEATS_QUICK if quick else LARGE_REPEATS,
        anchor_per_instance,
    )
    for point in large_timing:
        print(f"  n={point['n_queries']:3d} m={point['n_models']}: "
              f"vectorized {point['per_instance_s']:8.2f} s/instance "
              f"(no reference; {point['ratio_to_anchor']:.0f}x the "
              f"{LARGE_RATIO_ANCHOR[0]}x{LARGE_RATIO_ANCHOR[1]} anchor)")

    regressions, regression_ok = check_regression(timing, committed)
    large_regressions, large_ok = check_large_regression(
        large_timing, committed
    )

    speedup_ok = True
    if not quick:
        for point in timing:
            if (point["n_queries"] >= MIN_SPEEDUP_QUERIES
                    and point["n_models"] >= MIN_SPEEDUP_MODELS
                    and point["speedup"] < MIN_SPEEDUP):
                speedup_ok = False
                print(f"FAIL: speedup {point['speedup']:.2f}x at "
                      f"n={point['n_queries']} m={point['n_models']} "
                      f"below required {MIN_SPEEDUP:.1f}x")

    payload = {
        "quick": quick,
        "parity": parity,
        "timing": timing,
        "large_timing": large_timing,
        "regressions": regressions,
        "large_regressions": large_regressions,
        "min_speedup": MIN_SPEEDUP,
        "regression_factor": REGRESSION_FACTOR,
        "large_regression_factor": LARGE_REGRESSION_FACTOR,
        "large_ratio_anchor": list(LARGE_RATIO_ANCHOR),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    lines = [
        "DP scheduler throughput — vectorized kernel vs pure-Python "
        "reference (bit-exact plans)",
        f"parity: {n_parity} randomized instances, "
        f"{len(parity['mismatches'])} mismatches "
        f"(deltas {PARITY_DELTAS})",
        "buffer  models  vectorized  reference  speedup",
        "------  ------  ----------  ---------  -------",
    ]
    for point in timing:
        lines.append(
            f"{point['n_queries']:<6d}  {point['n_models']:<6d}  "
            f"{point['vectorized_s'] * 1e3:7.1f} ms  "
            f"{point['reference_s'] * 1e3:6.1f} ms  "
            f"{point['speedup']:.2f}x"
        )
    lines.append("")
    lines.append("serving-scale buffers (vectorized DP only — the "
                 "reference is infeasible here):")
    for point in large_timing:
        lines.append(
            f"{point['n_queries']:<6d}  {point['n_models']:<6d}  "
            f"{point['per_instance_s']:7.2f} s/instance  "
            f"({point['ratio_to_anchor']:.0f}x the "
            f"{LARGE_RATIO_ANCHOR[0]}x{LARGE_RATIO_ANCHOR[1]} anchor)"
        )
    TABLE_PATH.write_text("\n".join(lines) + "\n")

    if not parity_ok:
        print("FAIL: vectorized DP diverged from the reference")
        return 1
    for failure in regressions:
        print(f"FAIL: speedup {failure['speedup']:.2f}x at "
              f"n={failure['n_queries']} m={failure['n_models']} fell "
              f"below half the committed {failure['committed_speedup']:.2f}x")
    for failure in large_regressions:
        print(f"FAIL: anchor ratio {failure['ratio_to_anchor']:.0f}x at "
              f"n={failure['n_queries']} m={failure['n_models']} blew "
              f"past {LARGE_REGRESSION_FACTOR:g}x the committed "
              f"{failure['committed_ratio']:.0f}x")
    if not regression_ok or not speedup_ok or not large_ok:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
