"""Fig. 6 — text matching: accuracy & DMR vs deadline, all baselines."""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.overall import run_deadline_sweep
from repro.metrics.tables import format_table


def _format_sweep(sweep, title):
    deadlines = sweep["deadlines"]
    rows = []
    for name, series in sweep["methods"].items():
        rows.append(
            [name]
            + [f"{a:.2f}/{d:.2f}" for a, d in zip(series["accuracy"], series["dmr"])]
        )
    return format_table(
        ["method (acc/dmr)"] + [f"dl={dl}" for dl in deadlines], rows, title=title
    )


def check_sweep_shape(sweep):
    """The qualitative Fig. 6-8 pattern shared by all three tasks."""
    methods = sweep["methods"]
    avg = {
        name: np.mean(series["accuracy"]) for name, series in methods.items()
    }
    dmr = {name: np.mean(series["dmr"]) for name, series in methods.items()}
    # Schemble (or its ea ablation) leads accuracy; plain Schemble beats
    # every non-Schemble baseline and slashes Original's miss rate.
    non_schemble = [v for k, v in avg.items() if not k.startswith("schemble")]
    assert avg["schemble"] > max(non_schemble)
    assert dmr["schemble"] < 0.5 * dmr["original"]
    assert avg["original"] == min(avg.values())


def test_fig6_text_matching_sweep(benchmark, tm_setup, sweep_cache):
    sweep = benchmark.pedantic(
        lambda: run_deadline_sweep(tm_setup, duration=25.0, seed=5),
        rounds=1,
        iterations=1,
    )
    sweep_cache["text_matching"] = sweep
    text = _format_sweep(
        sweep, "Fig 6 — text matching: accuracy/DMR under deadline constraints"
    )
    save_result("fig6", text, sweep["methods"])
    print(text)
    check_sweep_shape(sweep)
    # Accuracy improves (weakly) with looser deadlines for Schemble.
    acc = sweep["methods"]["schemble"]["accuracy"]
    assert acc[-1] >= acc[0] - 0.03
