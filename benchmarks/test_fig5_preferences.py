"""Fig. 5 — preference variance vs discrepancy stability.

Six architectures x two seeds on the CIFAR-like task. The correlation
matrix between preference vectors (distance-to-ensemble per sample) is
weak across architectures and even across seeds of the same
architecture, while the discrepancy score stays stable across seeds.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.preferences import preference_study
from repro.metrics.tables import format_table


def test_fig5_preference_correlations(benchmark):
    study = benchmark.pedantic(
        lambda: preference_study(n_samples=2400, epochs=14),
        rounds=1,
        iterations=1,
    )
    matrix = study["matrix"]
    names = study["archs"] + ["Dis"]
    rows = [
        [names[i]] + [f"{matrix[i, j]:+.2f}" for j in range(len(names))]
        for i in range(len(names))
    ]
    text = format_table(
        ["seedA \\ seedB"] + names,
        rows,
        title="Fig 5 — correlation of preferences across seeds/architectures",
    )
    text += (
        f"\n\nmean cross-architecture corr: {study['cross_arch']:+.3f}"
        f"\nmean same-architecture (diff seed) corr:"
        f" {np.mean(list(study['same_arch'].values())):+.3f}"
        f"\ndiscrepancy-score cross-seed corr: {study['discrepancy']:+.3f}"
        " (paper: high, ~0.8)"
    )
    save_result("fig5", text, {
        "cross_arch": study["cross_arch"],
        "same_arch": study["same_arch"],
        "discrepancy": study["discrepancy"],
    })
    print(text)

    same_arch_mean = np.mean(list(study["same_arch"].values()))
    # The paper's ordering: Dis diagonal >> preference correlations.
    assert study["discrepancy"] > study["cross_arch"] + 0.1
    assert study["discrepancy"] > same_arch_mean
    assert study["discrepancy"] > 0.4
