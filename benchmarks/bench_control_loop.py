"""Benchmark guard: the control loop must hold the SLO a static fleet breaks.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_control_loop.py [--quick]

One scaled diurnal trace (~30x swing between the quietest and busiest
hour — the same shape ``bench_fleet_routing.py`` serves) is pushed
through an under-provisioned four-shard fleet twice: once static, and
once with the SLO-driven control loop closed
(:mod:`repro.control` via ``FleetConfig(control=...)``). The static
fleet has no answer to the burst hours and sheds over half the day;
the controlled fleet detects the burn, tightens admission, flips to
the cheap subset, and scales replica sets until the peak fits.

Hard assertions run in full mode only (the quick trace is too short
for the controller to finish a breach/recover cycle):

* **breach** — the static fleet's deadline-miss rate (sheds included)
  is at least ``BREACH_FACTOR`` times the ``MISS_TARGET`` SLO;
* **hold** — the controlled fleet's miss rate stays at or under
  ``MISS_TARGET``;
* **bounded quality loss** — the controlled fleet's accuracy beats the
  static fleet's and stays above ``ACCURACY_FLOOR`` despite the
  degraded-mode answers;
* **acted and unwound** — at least one overload episode was detected,
  capacity was scaled up and fully retired, degrade was restored.

The determinism contract is asserted in *both* modes: the controlled
run is replayed on the same trace + seed and its action log must be
byte-identical (``ControlLog.dumps()``).

The committed ``benchmarks/results/BENCH_control.json`` is read
*before* it is overwritten; when the committed run used the same mode,
the SLO separation (static miss rate over controlled miss rate) must
not fall below half its committed value.
"""

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.control import ControlConfig  # noqa: E402
from repro.experiments.control import run_control_comparison  # noqa: E402
from repro.experiments.fleet import (  # noqa: E402
    FLEET_LATENCIES,
    fleet_workload,
    make_fleet_policy,
    synthetic_fleet_setup,
)
from repro.obs.slo import SLOConfig  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_control.json"
TABLE_PATH = Path(__file__).parent / "results" / "control_loop.txt"

N_SHARDS = 4
BASE_RATE = 40.0
DURATION = 900.0
DURATION_QUICK = 60.0
MIN_QUERIES = 200_000
DEADLINE = 0.1
QUEUE_LIMIT = 32
SEED = 0

# The SLO the controlled fleet must hold over the whole day and the
# static fleet must clearly breach.
MISS_TARGET = 0.05
BREACH_FACTOR = 2.0
# Degraded-mode answers cost quality; the controlled day must still
# beat the static day and keep absolute accuracy above this floor.
ACCURACY_FLOOR = 0.6
# Committed-baseline tolerance on the static/controlled separation.
REGRESSION_FACTOR = 2.0

# Tuned for the compressed day: detection over a 20 s alert window,
# fast scale-ups (2 s warmup, 5 s cooldown), and a reluctant unwind
# (burn <= 0.1) so a freshly drained window cannot retire capacity
# the still-running burst needs.
ALERT_WINDOW = 20.0


def control_config() -> ControlConfig:
    return ControlConfig(
        interval=1.0,
        warmup=2.0,
        max_extra_replicas=16,
        scale_up_burn=2.0,
        scale_down_burn=0.1,
        cooldown=5.0,
        seed=SEED,
        slo=SLOConfig(
            miss_target=MISS_TARGET,
            windows=(ALERT_WINDOW, 6.0 * ALERT_WINDOW),
            alert_window=ALERT_WINDOW,
            breach_burn=2.0,
            recover_burn=1.0,
            min_events=20,
        ),
    )


def run_day(policy, quality, latencies, duration):
    """Serve one diurnal day statically and controlled; (rows, meta)."""
    workload = fleet_workload(
        quality, base_rate=BASE_RATE, duration=duration,
        deadline=DEADLINE, seed=1,
    )
    start = time.perf_counter()
    rows, controlled = run_control_comparison(
        latencies, policy, workload, quality,
        n_shards=N_SHARDS, queue_limit=QUEUE_LIMIT,
        control=control_config(), seed=SEED,
    )
    wall = time.perf_counter() - start
    print(f"control: n={workload.n_queries} deadline={DEADLINE * 1e3:.0f}ms "
          f"queue_limit={QUEUE_LIMIT} target={MISS_TARGET:.0%} [{wall:.1f}s]")
    for serving, row in rows.items():
        print(f"  {serving:10s} acc={row['accuracy']:.3f} "
              f"dmr={row['dmr']:.4f} p99={row['p99'] * 1e3:6.1f}ms "
              f"shed={row['shed_rate']:.2%} "
              f"degraded={row['degraded_rate']:.2%}")
    meta = {"n_queries": int(workload.n_queries), "deadline": DEADLINE,
            "queue_limit": QUEUE_LIMIT, "wall_s": wall}
    return rows, meta, workload, controlled


def check_slo(rows):
    """Static breaches the SLO; controlled holds it at bounded cost."""
    failures = []
    static = rows["static"]
    controlled = rows["controlled"]
    if static["dmr"] < BREACH_FACTOR * MISS_TARGET:
        failures.append(
            f"breach: static dmr {static['dmr']:.4f} below "
            f"{BREACH_FACTOR:.0f}x the {MISS_TARGET:.0%} target — the "
            f"day is not hard enough to prove anything"
        )
    if controlled["dmr"] > MISS_TARGET:
        failures.append(
            f"hold: controlled dmr {controlled['dmr']:.4f} above the "
            f"{MISS_TARGET:.0%} target"
        )
    if controlled["accuracy"] <= static["accuracy"]:
        failures.append(
            f"quality: controlled accuracy {controlled['accuracy']:.3f} "
            f"not above static {static['accuracy']:.3f}"
        )
    if controlled["accuracy"] < ACCURACY_FLOOR:
        failures.append(
            f"quality: controlled accuracy {controlled['accuracy']:.3f} "
            f"below the {ACCURACY_FLOOR} floor"
        )
    return failures


def check_actuation(rows):
    """The controller detected, acted, and fully unwound."""
    failures = []
    controlled = rows["controlled"]
    if controlled["episodes"] < 1:
        failures.append("actuation: no overload episode detected")
    if controlled["scale_ups"] < 1:
        failures.append("actuation: controller never scaled up")
    if controlled["scale_ups"] != controlled["scale_downs"]:
        failures.append(
            f"actuation: {controlled['scale_ups']:.0f} scale-ups vs "
            f"{controlled['scale_downs']:.0f} scale-downs — capacity "
            f"not fully retired"
        )
    if controlled["degrades"] != controlled["restores"]:
        failures.append(
            f"actuation: {controlled['degrades']:.0f} degrades vs "
            f"{controlled['restores']:.0f} restores"
        )
    return failures


def check_determinism(policy, quality, latencies, workload, controlled):
    """Same trace + seed must replay to a byte-identical action log."""
    rerun_rows, rerun = run_control_comparison(
        latencies, policy, workload, quality,
        n_shards=N_SHARDS, queue_limit=QUEUE_LIMIT,
        control=control_config(), seed=SEED,
    )
    del rerun_rows
    if rerun.control_log.dumps() != controlled.control_log.dumps():
        return ["determinism: action log differs across same-seed reruns"]
    return []


def check_regression(rows, committed, quick):
    """SLO separation must not halve vs a same-mode committed run."""
    if not committed or committed.get("quick") != quick:
        return []
    baseline = committed.get("separation")
    if not baseline:
        return []
    current = rows["static"]["dmr"] / max(rows["controlled"]["dmr"], 1e-9)
    floor = baseline / REGRESSION_FACTOR
    if current < floor:
        return [
            f"regression: SLO separation {current:.1f}x fell below half "
            f"the committed {baseline:.1f}x"
        ]
    return []


def write_table(rows, meta, controlled):
    """Human-readable companion table next to the JSON artifact."""
    c = rows["controlled"]
    lines = [
        "Closing the control loop on a diurnal day — static fleet vs "
        "SLO-driven control",
        f"{N_SHARDS} shards x {len(FLEET_LATENCIES)} models, base rate "
        f"{BASE_RATE:.0f} q/s (~30x diurnal swing), queue limit "
        f"{QUEUE_LIMIT}, deadline {DEADLINE * 1e3:.0f}ms, SLO target "
        f"{MISS_TARGET:.0%} misses",
        "",
        f"{meta['n_queries']} queries",
        "serving     accuracy    DMR    p50 ms  p99 ms   shed  degraded",
        "----------  --------  ------  ------  ------  -----  --------",
    ]
    for serving, row in rows.items():
        lines.append(
            f"{serving:10s}  {row['accuracy']:8.3f}  {row['dmr']:6.4f}  "
            f"{row['p50'] * 1e3:6.1f}  {row['p99'] * 1e3:6.1f}  "
            f"{row['shed_rate']:5.1%}  {row['degraded_rate']:8.1%}"
        )
    lines += [
        "",
        f"controller: {c['scale_ups']:.0f} scale-ups / "
        f"{c['scale_downs']:.0f} scale-downs, {c['degrades']:.0f} "
        f"degrade / {c['restores']:.0f} restore, "
        f"{c['admission_changes']:.0f} admission changes over "
        f"{c['episodes']:.0f} overload episode(s)",
        f"action log: {len(controlled.control_log)} entries, "
        f"byte-identical across same-seed reruns",
    ]
    TABLE_PATH.write_text("\n".join(lines) + "\n")


def main(argv=None):
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    committed = None
    if RESULTS_PATH.exists():
        committed = json.loads(RESULTS_PATH.read_text())

    latencies, quality, scores = synthetic_fleet_setup(seed=0)
    policy = make_fleet_policy(quality, scores)
    duration = DURATION_QUICK if quick else DURATION

    rows, meta, workload, controlled = run_day(
        policy, quality, latencies, duration
    )

    failures = []
    if not quick:
        if meta["n_queries"] < MIN_QUERIES:
            failures.append(
                f"trace too small: {meta['n_queries']} queries "
                f"< {MIN_QUERIES}"
            )
        failures += check_slo(rows)
        failures += check_actuation(rows)
    failures += check_determinism(
        policy, quality, latencies, workload, controlled
    )
    failures += check_regression(rows, committed, quick)

    payload = {
        "quick": quick,
        "n_shards": N_SHARDS,
        "base_rate": BASE_RATE,
        "duration": duration,
        "miss_target": MISS_TARGET,
        "meta": meta,
        "rows": rows,
        "separation": rows["static"]["dmr"] / max(
            rows["controlled"]["dmr"], 1e-9
        ),
        "action_log_entries": len(controlled.control_log),
        "breach_factor": BREACH_FACTOR,
        "accuracy_floor": ACCURACY_FLOOR,
        "regression_factor": REGRESSION_FACTOR,
        "failures": failures,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    write_table(rows, meta, controlled)
    print(f"wrote {TABLE_PATH}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
