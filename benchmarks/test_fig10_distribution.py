"""Fig. 10 — difficulty-distribution shift (Exp-3).

The serving pool is resampled so true discrepancy scores follow Normal
or Gamma distributions with growing means; accuracy decreases with the
mean, Schemble stays on top, and Schemble(t) — no prediction module —
is only competitive at the extremes where queries are indistinguishable.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.distribution import run_distribution_shift
from repro.metrics.tables import format_table

BASELINES = ("original", "static", "gating", "schemble_t", "schemble")
MEANS = (0.1, 0.25, 0.4, 0.55, 0.7)


def _run_family(setup, family):
    return run_distribution_shift(
        setup,
        family=family,
        means=MEANS,
        baselines=BASELINES,
        deadline=0.105,
        duration=30.0,
        seed=5,
    )


def _format(out, title):
    rows = []
    for name in BASELINES:
        acc = out["methods"][name]["accuracy"]
        pacc = out["methods"][name]["processed_accuracy"]
        rows.append(
            [name] + [f"{a:.2f}/{p:.2f}" for a, p in zip(acc, pacc)]
        )
    return format_table(
        ["method (acc/pacc)"] + [f"mean={m}" for m in out["means"]],
        rows,
        title=title,
    )


def _check(out):
    methods = out["methods"]
    sch = np.array(methods["schemble"]["accuracy"])
    # Harder pools score lower (decreasing trend).
    assert sch[-1] < sch[0]
    # Schemble tops every non-Schemble baseline on average.
    for name in ("original", "static", "gating"):
        assert sch.mean() > np.mean(methods[name]["accuracy"]) - 1e-9
    # The prediction module pays off in the mid-difficulty region where
    # queries are distinguishable (paper's Schemble vs Schemble(t)).
    mid = slice(1, 4)
    sch_t = np.array(methods["schemble_t"]["processed_accuracy"])
    sch_p = np.array(methods["schemble"]["processed_accuracy"])
    assert sch_p[mid].mean() >= sch_t[mid].mean() - 0.02


def test_fig10_normal_distribution(benchmark, tm_setup):
    out = benchmark.pedantic(
        lambda: _run_family(tm_setup, "normal"), rounds=1, iterations=1
    )
    text = _format(out, "Fig 10 — Normal(μ, 0.12) difficulty shift")
    save_result("fig10_normal", text, out["methods"])
    print(text)
    _check(out)


def test_fig10_gamma_distribution(benchmark, tm_setup):
    out = benchmark.pedantic(
        lambda: _run_family(tm_setup, "gamma"), rounds=1, iterations=1
    )
    text = _format(out, "Fig 10 — Gamma difficulty shift")
    save_result("fig10_gamma", text, out["methods"])
    print(text)
    _check(out)
