"""Fig. 13 — latency and memory overhead of the Schemble modules.

The paper measures the discrepancy-prediction network at ~6.5% of the
ensemble's runtime and 0.4-2% of its memory on a P100. We report both
the cost-model view (profiles derived from those ratios, used by the
simulator) and the measured view on the numpy substrate (wall-clock and
parameter counts).
"""

from benchmarks.conftest import save_result
from repro.experiments.overhead import measured_overhead, profiled_overhead
from repro.metrics.tables import format_table


def test_fig13_overhead(benchmark, tm_setup):
    measured = benchmark.pedantic(
        lambda: measured_overhead(tm_setup, batch=512, repeats=3),
        rounds=1,
        iterations=1,
    )
    profiled = profiled_overhead(tm_setup)

    rows = [
        [
            "cost model (simulator)",
            f"{100*profiled['latency_fraction']:.1f}%",
            f"{100*profiled['memory_fraction']:.1f}%",
        ],
        [
            "measured (numpy substrate)",
            f"{100*measured['time_fraction']:.1f}%",
            f"{100*measured['param_fraction']:.1f}% (params)",
        ],
    ]
    text = format_table(
        ["view", "latency vs ensemble", "memory vs ensemble"],
        rows,
        title="Fig 13 — predictor overhead (paper: 6.5% runtime, 0.4-2% memory)",
    )
    save_result("fig13", text, {"measured": measured, "profiled": profiled})
    print(text)

    assert profiled["latency_fraction"] < 0.1
    assert profiled["memory_fraction"] < 0.05
    # On the numpy substrate the base models are deliberately tiny, so
    # the parameter ratio is far larger than the paper's GPU memory
    # ratio; the meaningful claims are that the predictor costs less
    # than running the members and fits alongside them.
    assert measured["time_fraction"] < 0.5
    assert measured["param_fraction"] < 1.0
