"""Design-choice ablations (beyond the paper's own figures).

DESIGN.md documents several substrate decisions; these benches quantify
each one so a reader can see what it buys:

* TV vs JS as the discrepancy distance (the substitution's effect on
  how well the score orders subset correctness);
* the isotonic difficulty-monotone repair of the profiled utilities;
* the Exp-5 fast path (idle-system direct dispatch).
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.baselines.schemble import SchemblePipeline
from repro.data.traces import poisson_trace
from repro.difficulty.discrepancy import DiscrepancyScorer
from repro.experiments.runner import make_workload, run_policy, summarize
from repro.metrics.tables import format_table
from repro.serving.policies import BufferedSchedulingPolicy
from repro.scheduling.dp import DPScheduler


def test_ablation_tv_vs_js_distance(benchmark, tm_setup):
    """TV orders subset correctness where JS inverts (DESIGN.md)."""

    def compute():
        table = tm_setup.history_table
        members = [table.outputs[n] for n in table.model_names]
        ensemble_labels = table.ensemble_output.argmax(axis=1)
        n_agree = sum(
            (table.outputs[n].argmax(1) == ensemble_labels).astype(int)
            for n in table.model_names
        )
        out = {}
        for distance in ("tv", "js"):
            scorer = DiscrepancyScorer(distance=distance)
            scores = scorer.fit_score(members, table.ensemble_output)
            out[distance] = float(np.corrcoef(scores, n_agree)[0, 1])
        return out

    corr = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_table(
        ["distance", "corr(score, #members agreeing with ensemble)"],
        [[d, f"{c:+.3f}"] for d, c in corr.items()],
        title="Ablation — discrepancy distance (more negative is better)",
    )
    save_result("ablation_distance", text, corr)
    print(text)

    # Both should be negative (higher score = fewer agreeing members),
    # with TV at least as discriminative as JS on this substrate.
    assert corr["tv"] < -0.3
    assert corr["tv"] <= corr["js"] + 0.05


def test_ablation_monotone_repairs(benchmark, tm_setup):
    """Utility-table repairs: scheduling quality with/without them."""

    def compute():
        results = {}
        trace = poisson_trace(
            rate=3.0 * tm_setup.overload_rate, duration=12.0, seed=11
        )
        workload = make_workload(tm_setup, trace, deadline=0.105, seed=12)
        for repaired in (True, False):
            pipeline = SchemblePipeline(
                tm_setup.ensemble,
                enforce_monotone=repaired,
                predictor_epochs=60,
                seed=13,
            ).fit(
                tm_setup.history.features,
                tm_setup.history_table,
                tm_setup.history_quality,
            )
            policy = pipeline.policy(
                tm_setup.pool.features,
                name=f"repair={repaired}",
            )
            stats = summarize(
                run_policy(tm_setup, policy, workload), tm_setup
            )
            results[repaired] = stats
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [str(k), f"{v['accuracy']:.3f}", f"{v['dmr']:.3f}"]
        for k, v in results.items()
    ]
    text = format_table(
        ["monotone repairs", "accuracy", "DMR"],
        rows,
        title="Ablation — profiled-utility monotone repairs",
    )
    save_result("ablation_monotone", text, {str(k): v for k, v in results.items()})
    print(text)

    # The repairs should not hurt; they typically help under load.
    assert results[True]["accuracy"] >= results[False]["accuracy"] - 0.02


def test_ablation_fast_path(benchmark, tm_setup):
    """Exp-5's idle-system fast path trims light-load latency."""

    def compute():
        trace = poisson_trace(rate=2.0, duration=30.0, seed=21)  # light
        workload = make_workload(tm_setup, trace, deadline=0.2, seed=22)
        out = {}
        for fast_path in (False, True):
            base = tm_setup.schemble.policy(tm_setup.pool.features)
            policy = BufferedSchedulingPolicy(
                f"fast_path={fast_path}",
                DPScheduler(delta=0.01),
                base.utilities,
                scores=base.scores,
                entry_delay=base.entry_delay,
                fast_path=fast_path,
            )
            stats = summarize(
                run_policy(tm_setup, policy, workload), tm_setup
            )
            out[fast_path] = stats
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [str(k), f"{v['latency_mean']*1e3:.1f}ms", f"{v['accuracy']:.3f}"]
        for k, v in results.items()
    ]
    text = format_table(
        ["fast path", "mean latency", "accuracy"],
        rows,
        title="Ablation — Exp-5 idle-system fast path (light load)",
    )
    save_result("ablation_fast_path", text, {str(k): v for k, v in results.items()})
    print(text)

    # Fast path cuts light-load latency (skips predictor + scheduler).
    assert results[True]["latency_mean"] < results[False]["latency_mean"]
