"""Fig. 8 — image retrieval: mAP & DMR under deadline constraints.

The two-base-model edge case: static's single replicated model achieves
the DMR lower bound, so Schemble lands second-lowest on DMR while still
winning mAP (the paper's Table I remark)."""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.overall import run_deadline_sweep
from benchmarks.test_fig6_text_matching import _format_sweep


def test_fig8_image_retrieval_sweep(benchmark, ir_setup, sweep_cache):
    sweep = benchmark.pedantic(
        lambda: run_deadline_sweep(ir_setup, duration=25.0, seed=5),
        rounds=1,
        iterations=1,
    )
    sweep_cache["image_retrieval"] = sweep
    text = _format_sweep(
        sweep, "Fig 8 — image retrieval: mAP/DMR under deadline constraints"
    )
    save_result("fig8", text, sweep["methods"])
    print(text)

    methods = sweep["methods"]
    avg = {n: np.mean(s["accuracy"]) for n, s in methods.items()}
    dmr = {n: np.mean(s["dmr"]) for n, s in methods.items()}
    # Schemble wins mAP overall.
    assert avg["schemble"] == max(avg.values())
    # Static achieves the lowest DMR; Schemble is near the front.
    ordered = sorted(dmr, key=dmr.get)
    assert ordered[0] == "static"
    assert dmr["schemble"] <= sorted(dmr.values())[2] + 1e-9
    # Original trails the field (DES can dip marginally below it here:
    # it inherits Original's full-queue misses and adds selection error).
    assert avg["original"] <= min(avg.values()) + 0.02
