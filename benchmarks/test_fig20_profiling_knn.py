"""Fig. 20 — Eq. 3 estimation accuracy (left) and KNN k-robustness
(right).

Left: with six CIFAR-like models fully profiled, utilities of size >= 3
combinations estimated from singleton/pair profiles via Eq. 3 stay close
to the true profile (paper MSE < 1.6e-4 at full scale).
Right: Schemble's stacking aggregation with KNN-filled missing outputs
is insensitive to k in 1..100.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.profiling_knn import (
    knn_robustness_study,
    marginal_estimation_study,
)
from repro.metrics.tables import format_table


def test_fig20a_marginal_estimation(benchmark):
    mse = benchmark.pedantic(
        lambda: marginal_estimation_study(n_samples=2400, epochs=14, n_bins=6),
        rounds=1,
        iterations=1,
    )
    rows = [[f"ES={size}", f"{value:.2e}"] for size, value in sorted(mse.items())]
    text = format_table(
        ["ensemble size", "MSE (estimated vs true utility)"],
        rows,
        title="Fig 20 left — Eq. 3 marginal-utility estimation error",
    )
    save_result("fig20a", text, {str(k): v for k, v in mse.items()})
    print(text)

    assert set(mse) == {3, 4, 5, 6}
    assert all(value < 5e-3 for value in mse.values())


def test_fig20b_knn_k_robustness(benchmark, tm_setup):
    results = benchmark.pedantic(
        lambda: knn_robustness_study(
            tm_setup, k_values=(1, 5, 10, 25, 50, 100)
        ),
        rounds=1,
        iterations=1,
    )
    rows = [[f"k={k}", f"{acc:.3f}"] for k, acc in results.items()]
    text = format_table(
        ["k", "accuracy (subset {m1,m2} + KNN fill)"],
        rows,
        title="Fig 20 right — robustness to the KNN parameter k",
    )
    save_result("fig20b", text, {str(k): v for k, v in results.items()})
    print(text)

    values = np.array(list(results.values()))
    # Paper: small k loses a little accuracy; k in 10..100 is flat.
    assert values.max() - values.min() < 0.1
    big_k = [acc for k, acc in results.items() if k >= 10]
    assert max(big_k) - min(big_k) < 0.03
