"""Table II + Figs. 11/15 — forced processing: latency and accuracy.

Every query must be processed (no rejection); the paper reports the
latency distribution and the accuracy relative to the Original pipeline,
then scores the trade-off ``c = 100*Acc - λ*Latency`` over weights λ.
Headline: Schemble's mean latency is orders of magnitude below
Original's (500x in the paper) at >97% relative accuracy, with the best
P95/max among accurate baselines.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.latency import run_forced_processing, tradeoff_windows
from repro.metrics.tables import format_table

PAPER_TM = {
    "original": (100.0, 50.5), "static": (96.9, 0.11), "des": (96.9, 8.2),
    "gating": (93.0, 0.08), "schemble_ea": (96.5, 0.13), "schemble": (97.2, 0.10),
}


@pytest.mark.parametrize(
    "fixture_name,task",
    [
        ("tm_setup", "text_matching"),
        ("vc_setup", "vehicle_counting"),
        ("ir_setup", "image_retrieval"),
    ],
)
def test_table2_forced_processing(benchmark, request, fixture_name, task):
    setup = request.getfixturevalue(fixture_name)
    rows = benchmark.pedantic(
        lambda: run_forced_processing(
            setup,
            deadline=setup.deadline_grid[2],
            duration=40.0,
            seed=5,
        ),
        rounds=1,
        iterations=1,
    )

    formatted = []
    for name, row in rows.items():
        paper = (
            f" (paper {PAPER_TM[name][0]}%/{PAPER_TM[name][1]}s)"
            if task == "text_matching"
            else ""
        )
        formatted.append(
            [
                name,
                f"{100*row['accuracy_rel']:.1f}%",
                f"{row['latency_mean']:.3f}{paper}",
                f"{row['latency_p95']:.3f}",
                f"{row['latency_max']:.3f}",
            ]
        )
    text = format_table(
        ["method", "rel. acc", "mean lat (s)", "P95", "max"],
        formatted,
        title=f"Table II ({task}) — forced processing",
    )

    windows = tradeoff_windows(rows)
    winner_span = {
        name: (min(w), max(w)) for name, w in windows.items() if w
    }
    text += "\n\ntrade-off winners (Fig 11/15): " + ", ".join(
        f"{name} on λ∈[{low:.2g}, {high:.2g}]"
        for name, (low, high) in winner_span.items()
    )
    save_result(f"table2_{task}", text, rows)
    print(text)

    # Original scores 100% by construction but queues explode.
    assert rows["original"]["accuracy_rel"] == pytest.approx(1.0)
    assert (
        rows["schemble"]["latency_mean"]
        < 0.05 * rows["original"]["latency_mean"]
    )
    # Schemble: high accuracy with controlled tail latency. Vehicle
    # counting is offered ~1.4x its aggregate capacity, so any policy
    # with bounded latency caps out lower there (the paper's testbed is
    # less oversubscribed in forced mode).
    floors = {"text_matching": 0.9, "vehicle_counting": 0.72,
              "image_retrieval": 0.8}
    assert rows["schemble"]["accuracy_rel"] > floors[task]
    accurate = {
        n: r for n, r in rows.items() if r["accuracy_rel"] > 0.9 and n != "original"
    }
    if "schemble" in accurate:
        best_p95 = min(r["latency_p95"] for r in accurate.values())
        assert rows["schemble"]["latency_p95"] <= 2.5 * best_p95
    # The Schemble framework (either difficulty metric) wins the
    # trade-off on a non-trivial weight window.
    framework = len(windows["schemble"]) + len(windows["schemble_ea"])
    assert framework >= 3
