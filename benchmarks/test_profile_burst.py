"""Latency attribution under a diurnal burst (this repo).

Not a paper artefact: an engineering guard for the latency-attribution
engine. A profiled arrival trace with a 10x burst in its middle third
must shift the phase breakdown visibly — during the burst, queries pile
up behind the scheduler and the workers, so the non-execution share
(buffer + queue wait) of end-to-end latency must be clearly larger for
burst-window queries than for off-burst ones — while every query's
phases still telescope exactly to its recorded latency.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.data.traces import diurnal_trace
from repro.obs.profile import PHASES, LatencyAttributor
from repro.obs.report import render_profile
from repro.obs.tracer import RecordingTracer
from repro.scheduling.dp import DPScheduler
from repro.serving.policies import BufferedSchedulingPolicy
from repro.serving.server import EnsembleServer
from repro.serving.workload import ServingWorkload

DURATION = 60.0
BURST_START = DURATION / 3.0
BURST_END = 2.0 * DURATION / 3.0


def run_burst(seed=0):
    profile = [1.0, 1.0, 10.0, 10.0, 1.0, 1.0]
    trace = diurnal_trace(2.0, DURATION, profile=profile, seed=seed)
    rng = np.random.default_rng(seed + 1)
    n_pool = 16
    quality = np.ones((n_pool, 2))
    quality[:, 0] = 0.0
    workload = ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=np.full(len(trace), 0.4),
        sample_indices=rng.integers(n_pool, size=len(trace)),
        quality=quality,
    )
    utilities = np.ones((n_pool, 2))
    utilities[:, 0] = 0.0
    policy = BufferedSchedulingPolicy(
        "schemble", DPScheduler(delta=0.05), utilities
    )
    tracer = RecordingTracer(profile=True)
    server = EnsembleServer([0.1], policy, tracer=tracer)
    result = server.run(workload)
    return result, LatencyAttributor.from_tracer(tracer)


def waiting_share(attributions):
    """Non-execution share of total latency: buffer + queue + sched."""
    total = sum(a.latency for a in attributions)
    waiting = sum(
        a.phases["buffer"] + a.phases["queue"] + a.phases["sched"]
        for a in attributions
    )
    return waiting / total if total else 0.0


def test_profile_burst_attribution(benchmark):
    result, attributor = benchmark.pedantic(
        run_burst, rounds=1, iterations=1
    )

    in_burst = [
        a for a in attributor.queries.values()
        if BURST_START <= a.arrival < BURST_END
    ]
    off_burst = [
        a for a in attributor.queries.values()
        if not BURST_START <= a.arrival < BURST_END
    ]
    burst_share = waiting_share(in_burst)
    calm_share = waiting_share(off_burst)

    text = render_profile(attributor, top_k=5)
    text += (
        f"\n\n10x burst over t=[{BURST_START:.0f}s, {BURST_END:.0f}s]: "
        f"waiting share (buffer+queue+sched) "
        f"{100 * burst_share:.1f}% in-burst vs "
        f"{100 * calm_share:.1f}% off-burst"
    )
    save_result("profile_burst", text, {
        "queries": len(result),
        "attributed": len(attributor.queries),
        "rejected": len(attributor.rejected),
        "in_burst": len(in_burst),
        "waiting_share_in_burst": burst_share,
        "waiting_share_off_burst": calm_share,
        "phase_totals": {
            p: attributor.phase_hist[p].total for p in PHASES
        },
        "sched_phase_wall_s": dict(attributor.sched_phase_wall),
    })
    print(text)

    # Every query accounted for, every partition exact.
    assert len(attributor.queries) + len(attributor.rejected) == len(result)
    assert max(
        abs(a.residual()) for a in attributor.queries.values()
    ) <= 1e-9
    # The burst must show up as waiting time, not as slower execution.
    assert in_burst and off_burst
    assert burst_share > 2.0 * calm_share
    assert burst_share > 0.2
    # Profiling captured the DP's own step phases.
    assert set(attributor.sched_phase_wall) == {
        "mask_tables", "extend", "prune", "backtrack",
    }
