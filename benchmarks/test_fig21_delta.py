"""Fig. 21 — quantisation step δ: overhead versus accuracy.

Smaller δ means rewards closer to optimal but a DP table (and thus a
scheduling delay) that grows as 1/δ; the sweet spot in the paper is
δ = 0.01, with δ = 0.001 losing accuracy to its own overhead.
"""


from benchmarks.conftest import save_result
from repro.experiments.scheduler_ablation import run_delta_sweep
from repro.metrics.tables import format_table

DELTAS = (0.2, 0.1, 0.05, 0.01, 0.005, 0.001)


def test_fig21_delta_sweep(benchmark, tm_setup):
    rows_by_delta = benchmark.pedantic(
        lambda: run_delta_sweep(
            tm_setup,
            deltas=DELTAS,
            duration=30.0,
            rate=2.0 * tm_setup.overload_rate,
            seed=5,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{delta}",
            f"{row['accuracy']:.3f}",
            f"{row['dmr']:.3f}",
            f"{row['work_per_invocation']:.0f}",
        ]
        for delta, row in rows_by_delta.items()
    ]
    text = format_table(
        ["delta", "accuracy", "DMR", "DP work / invocation"],
        rows,
        title="Fig 21 — quantisation step: overhead vs performance",
    )
    save_result("fig21", text, {str(k): v for k, v in rows_by_delta.items()})
    print(text)

    work = {d: r["work_per_invocation"] for d, r in rows_by_delta.items()}
    acc = {d: r["accuracy"] for d, r in rows_by_delta.items()}
    # Table size grows as delta shrinks.
    assert work[0.001] > work[0.1]
    # delta = 0.01 is at or near the best accuracy; the coarsest delta
    # loses accuracy to quantisation, the finest to overhead.
    best = max(acc.values())
    assert acc[0.01] >= best - 0.02
    assert acc[0.001] <= acc[0.01] + 0.01
