"""Fig. 7 — vehicle counting: accuracy & DMR under per-camera random
deadlines with varying means."""

from benchmarks.conftest import save_result
from repro.experiments.overall import run_deadline_sweep
from benchmarks.test_fig6_text_matching import _format_sweep, check_sweep_shape


def test_fig7_vehicle_counting_sweep(benchmark, vc_setup, sweep_cache):
    sweep = benchmark.pedantic(
        lambda: run_deadline_sweep(vc_setup, duration=25.0, seed=5),
        rounds=1,
        iterations=1,
    )
    sweep_cache["vehicle_counting"] = sweep
    text = _format_sweep(
        sweep,
        "Fig 7 — vehicle counting: accuracy/DMR under random camera deadlines",
    )
    save_result("fig7", text, sweep["methods"])
    print(text)
    check_sweep_shape(sweep)
