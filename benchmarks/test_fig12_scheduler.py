"""Figs. 12, 17, 18 — scheduler ablation.

With the difficulty module fixed, the scheduling algorithm is swapped:
Greedy under EDF/FIFO/SJF orders versus DP with δ ∈ {0.1, 0.01, 0.001}.
The paper's findings: DP(0.01) is best; its advantage grows with the
deadline (more room to schedule); DP(0.001)'s larger tables cost it in
scheduling overhead.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.experiments.scheduler_ablation import run_scheduler_ablation
from repro.metrics.tables import format_table


@pytest.mark.parametrize(
    "fixture_name,task,fig,rate_mult,duration",
    [
        # Per-task load multipliers: enough queue pressure to separate
        # schedulers while keeping the pure-python DP affordable (the
        # vehicle-counting base rate is already ~1.4x its capacity).
        ("tm_setup", "text_matching", "fig12", 4.0, 8.0),
        ("vc_setup", "vehicle_counting", "fig17", 1.3, 6.0),
        ("ir_setup", "image_retrieval", "fig18", 2.0, 8.0),
    ],
)
def test_scheduler_ablation(
    benchmark, request, fixture_name, task, fig, rate_mult, duration
):
    setup = request.getfixturevalue(fixture_name)
    deadlines = [setup.deadline_grid[0], setup.deadline_grid[2],
                 setup.deadline_grid[4]]
    out = benchmark.pedantic(
        lambda: run_scheduler_ablation(
            setup,
            deadlines=deadlines,
            duration=duration,
            rate=rate_mult * setup.overload_rate,
            seed=5,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, series in out["methods"].items():
        rows.append(
            [name]
            + [f"{a:.2f}/{d:.2f}" for a, d in zip(series["accuracy"], series["dmr"])]
        )
    text = format_table(
        ["scheduler (acc/dmr)"] + [f"dl={dl}" for dl in out["deadlines"]],
        rows,
        title=f"{fig} ({task}) — scheduling algorithms under deadlines",
    )
    save_result(fig, text, out["methods"])
    print(text)

    avg = {n: np.mean(s["accuracy"]) for n, s in out["methods"].items()}
    # DP(0.01) beats every greedy order on average (the paper's core
    # Exp-4 finding: greedy overcommits the head-of-queue query).
    greedy_best = max(v for k, v in avg.items() if k.startswith("greedy"))
    assert avg["dp(d=0.01)"] >= greedy_best - 0.01
    # Over-fine quantisation pays its own overhead (paper Exp-4).
    assert avg["dp(d=0.01)"] >= avg["dp(d=0.001)"] - 0.02
    # DP's advantage grows with the deadline (more scheduling room).
    dp = out["methods"]["dp(d=0.01)"]["accuracy"]
    ge = out["methods"]["greedy+edf"]["accuracy"]
    assert (dp[-1] - ge[-1]) >= (dp[0] - ge[0]) - 0.05
