"""Benchmark guard: fleet routing must earn its keep on a diurnal day.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_fleet_routing.py [--quick]

One scaled diurnal trace (~30x swing between the quietest and busiest
hour, 1M+ queries in full mode) is served two ways, against a single
big server with the *same total capacity* (``N_SHARDS`` replicas of
the per-shard deployment behind one buffer and one scheduler):

* **Routing regime** — ample admission queue (no shedding), tight
  deadline. Isolates pure placement: backlog-aware routing
  (power-of-two-choices, score-aware) must beat static consistent
  hashing on deadline-miss rate by ``DMR_FACTOR`` at equal quality
  (accuracy within ``QUALITY_TOLERANCE``).
* **Admission regime** — default queue limit, relaxed deadline. The
  single server absorbs the peak by queueing everything to the
  deadline edge; the fleet sheds what it cannot serve well and must
  keep served-query latency down: p99 strictly below the single
  server's and p50 below ``P50_FACTOR`` of it.

Hard assertions run in full mode only (the quick trace is too short
for stable tails); ``--quick`` serves a few-thousand-query day for CI
smoke and records numbers without enforcing them. The committed
``benchmarks/results/BENCH_fleet.json`` is read *before* it is
overwritten; when the committed run used the same mode, the routing
separation (hash DMR over best backlog-aware DMR) must not fall below
half its committed value.
"""

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.fleet import (  # noqa: E402
    FLEET_LATENCIES,
    fleet_workload,
    make_fleet_policy,
    run_fleet_comparison,
    synthetic_fleet_setup,
)

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_fleet.json"
TABLE_PATH = Path(__file__).parent / "results" / "fleet_routing.txt"

N_SHARDS = 4
BASE_RATE = 40.0
DURATION = 3600.0
DURATION_QUICK = 20.0
MIN_QUERIES = 1_000_000

# Routing regime: ample queue, tight deadline — placement only.
ROUTING_DEADLINE = 0.06
ROUTING_QUEUE_LIMIT = 10 ** 6
# Admission regime: default queue, relaxed deadline — shed vs queue.
ADMISSION_DEADLINE = 0.15
ADMISSION_QUEUE_LIMIT = 64

# Backlog-aware routing must at least halve hashing's miss rate while
# staying within this much accuracy of it.
DMR_FACTOR = 2.0
QUALITY_TOLERANCE = 0.01
# Admission must keep served p50 below this fraction of the single
# server's (p99 must simply be strictly lower).
P50_FACTOR = 0.7
# Committed-baseline tolerance on the routing separation ratio.
REGRESSION_FACTOR = 2.0

BACKLOG_AWARE = ("power_of_two", "score_aware")


def run_regime(name, policy, quality, latencies, *, deadline, queue_limit,
               duration):
    """Serve one diurnal day in one regime; returns (rows, meta)."""
    workload = fleet_workload(
        quality, base_rate=BASE_RATE, duration=duration,
        deadline=deadline, seed=1,
    )
    start = time.perf_counter()
    rows = run_fleet_comparison(
        latencies, policy, workload, quality,
        n_shards=N_SHARDS, queue_limit=queue_limit, seed=0,
    )
    wall = time.perf_counter() - start
    print(f"{name}: n={workload.n_queries} deadline={deadline * 1e3:.0f}ms "
          f"queue_limit={queue_limit} [{wall:.1f}s]")
    for serving, row in rows.items():
        print(f"  {serving:13s} acc={row['accuracy']:.3f} "
              f"dmr={row['dmr']:.4f} p50={row['p50'] * 1e3:6.1f}ms "
              f"p99={row['p99'] * 1e3:6.1f}ms shed={row['shed_rate']:.2%}")
    return rows, {"n_queries": int(workload.n_queries),
                  "deadline": deadline, "queue_limit": queue_limit,
                  "wall_s": wall}


def best_backlog_aware(rows):
    """The backlog-aware router with the lowest miss rate."""
    return min(BACKLOG_AWARE, key=lambda name: rows[name]["dmr"])


def check_routing(rows):
    """Backlog-aware placement beats hashing on DMR at equal quality."""
    failures = []
    hash_row = rows["hash"]
    best = best_backlog_aware(rows)
    best_row = rows[best]
    if best_row["dmr"] * DMR_FACTOR > hash_row["dmr"]:
        failures.append(
            f"routing: {best} dmr {best_row['dmr']:.4f} not "
            f"{DMR_FACTOR:.1f}x below hash {hash_row['dmr']:.4f}"
        )
    if best_row["accuracy"] < hash_row["accuracy"] - QUALITY_TOLERANCE:
        failures.append(
            f"routing: {best} accuracy {best_row['accuracy']:.3f} more "
            f"than {QUALITY_TOLERANCE} below hash "
            f"{hash_row['accuracy']:.3f}"
        )
    return failures


def check_admission(rows):
    """The fleet's served tail beats the deadline-pinned single server."""
    failures = []
    single = rows["single"]
    fleet = rows[best_backlog_aware(rows)]
    if fleet["p99"] >= single["p99"]:
        failures.append(
            f"admission: fleet p99 {fleet['p99'] * 1e3:.1f}ms not below "
            f"single {single['p99'] * 1e3:.1f}ms"
        )
    if fleet["p50"] > P50_FACTOR * single["p50"]:
        failures.append(
            f"admission: fleet p50 {fleet['p50'] * 1e3:.1f}ms above "
            f"{P50_FACTOR:.0%} of single {single['p50'] * 1e3:.1f}ms"
        )
    return failures


def check_regression(routing_rows, committed, quick):
    """Routing separation must not halve vs a same-mode committed run."""
    if not committed or committed.get("quick") != quick:
        return []
    baseline = committed.get("separation")
    if not baseline:
        return []
    best = best_backlog_aware(routing_rows)
    current = routing_rows["hash"]["dmr"] / max(
        routing_rows[best]["dmr"], 1e-9
    )
    floor = baseline / REGRESSION_FACTOR
    if current < floor:
        return [
            f"regression: routing separation {current:.1f}x fell below "
            f"half the committed {baseline:.1f}x"
        ]
    return []


def write_table(routing, admission, routing_meta, admission_meta):
    """Human-readable companion table next to the JSON artifact."""
    lines = [
        "Fleet serving on a diurnal day — routers and admission vs one "
        "equal-capacity server",
        f"{N_SHARDS} shards x {len(FLEET_LATENCIES)} models, "
        f"base rate {BASE_RATE:.0f} q/s (~30x diurnal swing)",
    ]
    for title, rows, meta in (
        ("routing regime (ample queue)", routing, routing_meta),
        ("admission regime (queue limit "
         f"{ADMISSION_QUEUE_LIMIT})", admission, admission_meta),
    ):
        lines.append("")
        lines.append(f"{title}: {meta['n_queries']} queries, deadline "
                     f"{meta['deadline'] * 1e3:.0f}ms")
        lines.append("serving        accuracy    DMR    p50 ms  p95 ms  "
                     "p99 ms   shed")
        lines.append("-------------  --------  ------  ------  ------  "
                     "------  -----")
        for serving, row in rows.items():
            lines.append(
                f"{serving:13s}  {row['accuracy']:8.3f}  "
                f"{row['dmr']:6.4f}  {row['p50'] * 1e3:6.1f}  "
                f"{row['p95'] * 1e3:6.1f}  {row['p99'] * 1e3:6.1f}  "
                f"{row['shed_rate']:5.1%}"
            )
    TABLE_PATH.write_text("\n".join(lines) + "\n")


def main(argv=None):
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    committed = None
    if RESULTS_PATH.exists():
        committed = json.loads(RESULTS_PATH.read_text())

    latencies, quality, scores = synthetic_fleet_setup(seed=0)
    policy = make_fleet_policy(quality, scores)
    duration = DURATION_QUICK if quick else DURATION

    routing, routing_meta = run_regime(
        "routing", policy, quality, latencies,
        deadline=ROUTING_DEADLINE, queue_limit=ROUTING_QUEUE_LIMIT,
        duration=duration,
    )
    admission, admission_meta = run_regime(
        "admission", policy, quality, latencies,
        deadline=ADMISSION_DEADLINE, queue_limit=ADMISSION_QUEUE_LIMIT,
        duration=duration,
    )

    failures = []
    if not quick:
        if routing_meta["n_queries"] < MIN_QUERIES:
            failures.append(
                f"trace too small: {routing_meta['n_queries']} queries "
                f"< {MIN_QUERIES}"
            )
        failures += check_routing(routing)
        failures += check_admission(admission)
    failures += check_regression(routing, committed, quick)

    best = best_backlog_aware(routing)
    payload = {
        "quick": quick,
        "n_shards": N_SHARDS,
        "base_rate": BASE_RATE,
        "duration": duration,
        "routing": {"meta": routing_meta, "rows": routing},
        "admission": {"meta": admission_meta, "rows": admission},
        "separation": routing["hash"]["dmr"] / max(
            routing[best]["dmr"], 1e-9
        ),
        "dmr_factor": DMR_FACTOR,
        "quality_tolerance": QUALITY_TOLERANCE,
        "p50_factor": P50_FACTOR,
        "regression_factor": REGRESSION_FACTOR,
        "failures": failures,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    write_table(routing, admission, routing_meta, admission_meta)
    print(f"wrote {TABLE_PATH}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
