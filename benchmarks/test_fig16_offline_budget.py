"""Fig. 16 — offline accuracy under cumulative-runtime budgets.

Prior work's setting: select subsets on an offline pool under a total
runtime budget. Schemble* (Lagrangian selection on predicted-score
utilities) beats Random/Static/Gating, approaches its oracle variant,
and outperforms the ensemble-agreement variant.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.experiments.offline_budget import run_offline_budget
from repro.metrics.tables import format_table


@pytest.mark.parametrize(
    "fixture_name,task",
    [("tm_setup", "text_matching"), ("vc_setup", "vehicle_counting")],
)
def test_fig16_offline_budget(benchmark, request, fixture_name, task):
    setup = request.getfixturevalue(fixture_name)
    out = benchmark.pedantic(
        lambda: run_offline_budget(setup, seed=5), rounds=1, iterations=1
    )
    rows = []
    for name, series in out["methods"].items():
        rows.append([name] + [f"{v:.3f}" for v in series])
    text = format_table(
        ["method"] + [f"{1e3*b:.0f}ms" for b in out["budgets"]],
        rows,
        title=f"Fig 16 ({task}) — accuracy vs per-query runtime budget",
    )
    save_result(f"fig16_{task}", text, out["methods"])
    print(text)

    methods = out["methods"]
    mean = {n: float(np.mean(v)) for n, v in methods.items()}
    # Schemble* beats random/static/gating on average and dominates
    # random at every interior budget. The endpoints are degenerate: at
    # the smallest budget only the single cheapest model fits (random's
    # mixture can luck into a better lone model), and at the
    # everything-fits budget random trivially reaches 1.0 while the
    # Lagrangian bisection underspends by a hair.
    assert mean["schemble*"] >= mean["random"]
    assert all(
        s >= r - 1e-9
        for s, r in list(zip(methods["schemble*"], methods["random"]))[1:-1]
    )
    assert mean["schemble*"] >= mean["static"] - 0.01
    assert mean["schemble*"] >= mean["gating"] - 0.01
    # The oracle (true scores) tracks the predicted-score variant; exact
    # dominance is not guaranteed because the utility table is binned on
    # the deployed (predicted) signal.
    assert mean["schemble*(oracle)"] >= mean["schemble*"] - 0.02
    # Larger budgets help (monotone within noise).
    series = methods["schemble*"]
    assert series[-1] >= series[0]
