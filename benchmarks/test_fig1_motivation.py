"""Fig. 1 — motivation.

(a) One-day query traffic and the Original ensemble's per-hour deadline
    miss rate: DMR tracks load and spikes during the burst (paper: 45%).
(b) The ensemble beats each base model on quality but inherits the
    slowest member's latency.
Also reproduces Section I's redundancy numbers (78.3% of samples solved
by any single model; <11% need all three).
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.motivation import (
    fig1a_burst_dmr,
    fig1b_ensemble_vs_members,
    redundancy_fractions,
)
from repro.metrics.tables import format_table


def test_fig1a_burst_miss_rate(benchmark, tm_setup):
    out = benchmark.pedantic(
        lambda: fig1a_burst_dmr(tm_setup, deadline=0.105, duration=240.0),
        rounds=1,
        iterations=1,
    )
    load = np.array(out["load"])
    dmr = np.array(out["dmr"])

    rows = [
        [f"{h:02d}h", load[h], f"{dmr[h]:.2f}"] for h in range(len(load))
    ]
    text = format_table(
        ["segment", "queries", "original DMR"],
        rows,
        title="Fig 1a — one-day traffic vs Original's deadline miss rate",
    )
    busy = load > 0
    corr = np.corrcoef(load[busy], dmr[busy])[0, 1]
    text += f"\n\nload/DMR correlation: {corr:.3f}"
    text += f"\npeak-hour DMR: {dmr[load.argmax()]:.3f} (paper: ~0.45)"
    save_result("fig1a", text, out)
    print(text)

    # Shape assertions: DMR tracks load; burst hours miss heavily while
    # night hours barely miss.
    assert corr > 0.5
    assert dmr[load.argmax()] > 0.3
    night = dmr[:6][load[:6] > 0]
    if night.size:
        assert night.mean() < 0.1


def test_fig1b_ensemble_vs_base_models(benchmark, tm_setup):
    rows_dict = benchmark.pedantic(
        lambda: fig1b_ensemble_vs_members(tm_setup), rounds=1, iterations=1
    )
    fractions = redundancy_fractions(tm_setup)

    rows = [
        [name, f"{row['quality']:.3f}", f"{row['latency']*1e3:.0f}ms"]
        for name, row in rows_dict.items()
    ]
    text = format_table(
        ["model", "quality (vs ensemble gt)", "latency"],
        rows,
        title="Fig 1b — ensemble vs base models",
    )
    text += (
        f"\n\nany-single-model-correct: {fractions['any_single_correct']:.3f}"
        " (paper: 0.783)"
        f"\nneeds-all-models: {fractions['needs_all_models']:.3f}"
        " (paper: <0.11)"
    )
    save_result("fig1b", text, {**{k: v for k, v in rows_dict.items()}, **fractions})
    print(text)

    members = {k: v for k, v in rows_dict.items() if k != "ensemble"}
    ensemble = rows_dict["ensemble"]
    assert ensemble["quality"] >= max(r["quality"] for r in members.values())
    assert ensemble["latency"] == max(r["latency"] for r in members.values())
    assert fractions["any_single_correct"] > 0.6
    assert fractions["needs_all_models"] < 0.15
