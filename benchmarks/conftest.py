"""Shared benchmark fixtures.

Benches use the ``default`` preset (larger datasets / longer training
than the unit tests). Expensive sweeps are cached in a session-scoped
store so that e.g. Table I reuses the Fig. 6-8 sweeps instead of
recomputing them. Every bench writes its reproduction table to
``benchmarks/results/`` — those files are the measured side of
EXPERIMENTS.md.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.setups import build_setup

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def tm_setup():
    return build_setup("text_matching", "default", seed=0)


@pytest.fixture(scope="session")
def vc_setup():
    return build_setup("vehicle_counting", "default", seed=0)


@pytest.fixture(scope="session")
def ir_setup():
    return build_setup("image_retrieval", "default", seed=0)


@pytest.fixture(scope="session")
def sweep_cache():
    """Cross-bench cache for deadline sweeps (fig6/7/8 -> table1)."""
    return {}


def save_result(name: str, text: str, payload=None) -> Path:
    """Persist a bench's formatted table (and raw JSON payload)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if payload is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, default=_jsonable)
        )
    return path


def _jsonable(value):
    try:
        return value.item()
    except AttributeError:
        return list(value)
