"""Fig. 4 — discrepancy-score analysis.

(a) Score distributions on the three datasets are heavily skewed toward
    zero (most queries are easy).
(b) Binning by score, every model combination is accurate on easy bins
    (>90%) while small combinations degrade sharply on hard bins.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.motivation import fig4a_score_distributions, fig4b_bin_accuracy
from repro.metrics.tables import format_table
from repro.scheduling.subsets import iter_masks, mask_size


def test_fig4a_score_distributions(benchmark):
    out = benchmark.pedantic(
        lambda: fig4a_score_distributions(preset="default"),
        rounds=1,
        iterations=1,
    )
    rows = [
        [task, f"{info['mean']:.3f}", f"{info['frac_below_0.1']:.3f}"]
        for task, info in out.items()
    ]
    text = format_table(
        ["dataset", "mean score", "fraction < 0.1"],
        rows,
        title="Fig 4a — discrepancy score distributions",
    )
    save_result("fig4a", text, {t: dict(mean=i["mean"], low=i["frac_below_0.1"]) for t, i in out.items()})
    print(text)

    # The paper's spike at exactly zero comes from real deep models
    # agreeing bit-for-bit on easy inputs; numpy MLPs always disagree a
    # little, so the mass shifts slightly right — but the distribution
    # must stay concentrated at the low end of [0, 1].
    for info in out.values():
        assert info["mean"] < 0.6


def test_fig4b_accuracy_per_bin(benchmark, tm_setup):
    out = benchmark.pedantic(
        lambda: fig4b_bin_accuracy(tm_setup), rounds=1, iterations=1
    )
    table = out["utilities"]
    n_bins = table.shape[0]
    masks = list(iter_masks(tm_setup.n_models))

    rows = []
    for b in range(n_bins):
        rows.append(
            [f"bin{b}"] + [f"{table[b, mask]:.2f}" for mask in masks]
        )
    text = format_table(
        ["bin (easy->hard)"] + [f"{mask:03b}" for mask in masks],
        rows,
        title="Fig 4b — accuracy of model combinations per discrepancy bin",
    )
    save_result("fig4b", text, {"utilities": table.tolist()})
    print(text)

    solo = [m for m in masks if mask_size(m) == 1]
    solo_by_bin = table[:, solo].mean(axis=1)
    # Paper: easy samples exceed 90% under all combinations; hard
    # samples show larger error with small model sets, monotonically
    # worsening as the discrepancy bin grows.
    assert solo_by_bin[0] > 0.85
    assert solo_by_bin[-1] < solo_by_bin[0] - 0.05
    trend = np.corrcoef(np.arange(table.shape[0]), solo_by_bin)[0, 1]
    assert trend < -0.3
    assert np.all(table[:, (1 << tm_setup.n_models) - 1] >= 0.99)
