"""Benchmark guard: fault injection is deterministic and null plans
are free.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_fault_determinism.py

Three checks on a diurnal-trace workload:

* **Determinism** — the same seed, workload and ``FaultPlan`` produce a
  byte-identical run report (and record-identical results) across two
  independent server instances. This is the property CI pins: fault
  experiments must be replayable from their config alone. The report's
  "real wall-clock" lines measure *host* time (``time.perf_counter``
  inside scheduler invocations) and are masked before comparison — they
  are the one part of the report that is not simulation state.
* **Null-plan identity** — a server configured with an all-zero
  ``FaultPlan`` produces exactly the same per-query records as one with
  no plan at all (same spirit as ``bench_obs_overhead.py``: the fault
  subsystem only acts when asked).
* **Fault-path identity** — a ``task_timeout`` no execution can hit
  engages the fault-mode event loop without changing any outcome; the
  records must still match the plain path.

Results go to ``benchmarks/results/BENCH_faults.json``.
"""

import json
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data.traces import diurnal_trace  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.obs import RecordingTracer, render_report  # noqa: E402
from repro.scheduling.dp import DPScheduler  # noqa: E402
from repro.serving.config import ServerConfig  # noqa: E402
from repro.serving.policies import BufferedSchedulingPolicy  # noqa: E402
from repro.serving.server import EnsembleServer  # noqa: E402
from repro.serving.workload import ServingWorkload  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_faults.json"

LATENCIES = [0.010, 0.022, 0.045]
DURATION = 60.0


def build_workload(base_rate, duration, seed, n_pool=512):
    trace = diurnal_trace(base_rate, duration, seed=seed)
    rng = np.random.default_rng(seed + 1)
    m = len(LATENCIES)
    quality = rng.uniform(0.3, 1.0, size=(n_pool, 1 << m))
    quality[:, 0] = 0.0
    return ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=np.full(len(trace), 0.08),
        sample_indices=rng.integers(n_pool, size=len(trace)),
        quality=quality,
    )


def make_policy(n_pool=512):
    # Utility grows with subset size so plans span several models and
    # a single failed task leaves a non-empty executed subset (the
    # degraded-answer case the determinism check must cover).
    m = len(LATENCIES)
    utilities = np.zeros((n_pool, 1 << m))
    for mask in range(1, 1 << m):
        utilities[:, mask] = 0.6 + 0.1 * bin(mask).count("1")
    return BufferedSchedulingPolicy(
        "schemble", DPScheduler(delta=0.05), utilities
    )


def run(config, workload, traced=False):
    tracer = RecordingTracer() if traced else None
    server = EnsembleServer.from_config(
        LATENCIES, make_policy(), config, tracer=tracer
    )
    return server.run(workload), tracer


def mask_wall_clock(report):
    """Drop host-time lines: real wall-clock is not simulation state."""
    return "\n".join(
        line for line in report.splitlines() if "wall-clock" not in line
    )


def check_determinism():
    """Same (seed, workload, plan) twice: byte-identical report."""
    workload = build_workload(base_rate=60.0, duration=DURATION, seed=11)
    plan = FaultPlan(
        seed=7, latency_jitter=0.1, straggler_prob=0.02,
        task_failure_rate=0.05,
    ).with_random_crashes(
        n_workers=len(LATENCIES), duration=DURATION,
        crash_rate=0.02, mean_downtime=1.0, seed=8,
    )
    config = ServerConfig(
        faults=plan, task_timeout=0.5, max_retries=1, retry_backoff=0.002
    )
    result_a, tracer_a = run(config, workload, traced=True)
    result_b, tracer_b = run(config, workload, traced=True)
    report_a = mask_wall_clock(render_report(result_a, tracer_a, duration=DURATION))
    report_b = mask_wall_clock(render_report(result_b, tracer_b, duration=DURATION))
    records_ok = result_a.records == result_b.records
    report_ok = report_a == report_b
    return {
        "queries": workload.n_queries,
        "degraded": result_a.n_degraded(),
        "retries": result_a.total_retries(),
        "records_identical": records_ok,
        "report_identical": report_ok,
    }, records_ok and report_ok


def check_null_plan_identity():
    """A null plan must leave serving output untouched."""
    workload = build_workload(base_rate=60.0, duration=DURATION, seed=13)
    plain, _ = run(ServerConfig(), workload)
    nulled, _ = run(ServerConfig(faults=FaultPlan()), workload)
    timed, _ = run(ServerConfig(task_timeout=1e6), workload)
    null_ok = plain.records == nulled.records
    timed_ok = plain.records == timed.records
    return {
        "queries": workload.n_queries,
        "null_plan_identical": null_ok,
        "fault_path_identical": timed_ok,
    }, null_ok and timed_ok


def main():
    determinism, det_ok = check_determinism()
    print(
        f"determinism: {determinism['queries']} queries, "
        f"{determinism['degraded']} degraded, "
        f"{determinism['retries']} retries, "
        f"records identical = {determinism['records_identical']}, "
        f"report identical = {determinism['report_identical']}"
    )
    identity, id_ok = check_null_plan_identity()
    print(
        f"identity: {identity['queries']} queries, "
        f"null plan identical = {identity['null_plan_identical']}, "
        f"fault path identical = {identity['fault_path_identical']}"
    )
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(
        {"determinism": determinism, "identity": identity}, indent=2
    ) + "\n")
    print(f"wrote {RESULTS_PATH}")
    if not (det_ok and id_ok):
        print("FAIL")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
