"""Table I — average accuracy and DMR across deadline constraints for
all six baselines on all three tasks.

Paper values (Acc / DMR):
                TM            VC            IR (mAP)
Original        60.4 / 39.6   57.0 / 43.0   47.3 / 52.7
Static          84.8 / 12.3   69.4 / 26.9   74.1 / 11.8
DES             66.2 / 30.7   56.4 / 39.6   55.7 / 35.2
Gating          85.3 /  8.0   60.5 / 23.0   58.1 / 32.8
Schemble(ea)    87.6 /  6.8   73.3 / 16.3   75.0 / 14.5
Schemble        91.2 /  6.1   80.4 / 15.4   78.4 / 14.3
"""


from benchmarks.conftest import save_result
from repro.experiments.overall import average_over_deadlines, run_deadline_sweep
from repro.metrics.tables import format_table

PAPER = {
    "text_matching": {
        "original": (60.4, 39.6), "static": (84.8, 12.3), "des": (66.2, 30.7),
        "gating": (85.3, 8.0), "schemble_ea": (87.6, 6.8), "schemble": (91.2, 6.1),
    },
    "vehicle_counting": {
        "original": (57.0, 43.0), "static": (69.4, 26.9), "des": (56.4, 39.6),
        "gating": (60.5, 23.0), "schemble_ea": (73.3, 16.3), "schemble": (80.4, 15.4),
    },
    "image_retrieval": {
        "original": (47.3, 52.7), "static": (74.1, 11.8), "des": (55.7, 35.2),
        "gating": (58.1, 32.8), "schemble_ea": (75.0, 14.5), "schemble": (78.4, 14.3),
    },
}


def test_table1_overall_comparison(
    benchmark, tm_setup, vc_setup, ir_setup, sweep_cache
):
    setups = {
        "text_matching": tm_setup,
        "vehicle_counting": vc_setup,
        "image_retrieval": ir_setup,
    }

    def compute():
        table = {}
        for task, setup in setups.items():
            sweep = sweep_cache.get(task)
            if sweep is None:
                sweep = run_deadline_sweep(setup, duration=25.0, seed=5)
                sweep_cache[task] = sweep
            table[task] = average_over_deadlines(sweep)
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name in ("original", "static", "des", "gating", "schemble_ea", "schemble"):
        row = [name]
        for task in setups:
            measured = table[task][name]
            paper_acc, paper_dmr = PAPER[task][name]
            row.append(
                f"{100*measured['accuracy']:.1f}/{100*measured['dmr']:.1f}"
                f" (paper {paper_acc}/{paper_dmr})"
            )
        rows.append(row)
    text = format_table(
        ["method"] + [f"{t} acc/dmr" for t in setups],
        rows,
        title="Table I — average accuracy & deadline miss rate",
    )
    save_result("table1", text, table)
    print(text)

    for task in setups:
        acc = {n: v["accuracy"] for n, v in table[task].items()}
        dmr = {n: v["dmr"] for n, v in table[task].items()}
        # Who wins: Schemble leads accuracy on every task (small slack
        # vs its own ea ablation), Original is worst everywhere.
        non_schemble_best = max(
            v for k, v in acc.items() if not k.startswith("schemble")
        )
        assert acc["schemble"] > non_schemble_best - 1e-9, task
        assert acc["schemble"] >= acc["schemble_ea"] - 0.03, task
        assert acc["original"] <= min(acc.values()) + 0.02, task
        # Factor-level DMR claim: large reduction vs the Original
        # pipeline (paper: ~5-6x on TM).
        assert dmr["schemble"] < 0.45 * dmr["original"], task
