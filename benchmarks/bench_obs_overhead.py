"""Benchmark guard: tracing must be free when disabled.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]

Three checks on a diurnal-trace workload:

* **Identity** — a run observed by a ``RecordingTracer`` (with an
  attached ``SLOMonitor``) produces exactly the same per-query records
  as an untraced run, and an explained run (``DecisionLog``) does too:
  observability only watches, never steers. The decision log's chosen
  masks are additionally checked against the served records. A
  *profiled* run (``RecordingTracer(profile=True)``) must also leave
  the records untouched and its span stream identical to the unprofiled
  one once the profile-only kinds (``sched_phase``/``queue_wait``) and
  the nondeterministic real-wall-clock ``wall_s`` attribute are set
  aside — the DP phase timers and queue-wait emitters only read clocks,
  never steer.
  A run with the *flight recorder* on (``RecordingTracer(live=...)``)
  must likewise leave the records untouched, and its span stream must
  equal the recorder-free stream once the live plane's own meta kinds
  (``snapshot``/``anomaly``/``incident``) are set aside — the live
  plane watches the stream, never steers it. With no live plane
  attached (``live=None``, the default) the emit path is the pre-live
  code path, so the recorder-disabled identity re-proves bit-identical
  behaviour to a recorder-free build.
* **Overhead** — the default ``NullTracer`` / explain-off path must
  stay within 5% wall-clock of the pre-observability event loop. The
  baseline is the real thing: the seed commit's ``serving/server.py``
  loaded from git history and validated record-for-record against the
  current server, so the comparison times identical work. The
  always-on flight recorder gets its own gate: a live-plane tracer
  must stay within ``MAX_LIVE_OVERHEAD`` (5%) of the plain
  ``RecordingTracer``.
* **Regression** — the measured overhead is compared against the
  committed ``benchmarks/results/BENCH_obs.json`` (read *before* it is
  overwritten, the ``BENCH_sched.json`` pattern): the run fails if the
  NullTracer overhead exceeds both an absolute noise floor and
  ``REGRESSION_FACTOR`` times the committed figure, or if the
  RecordingTracer or profiling-tracer slowdown doubles. CI's perf-smoke
  job enforces this on every push.

``--quick`` shrinks the timed workload and repeat count for CI.
Results go to ``benchmarks/results/BENCH_obs.json``.
"""

import json
import subprocess
import sys
import time
import types
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data.traces import diurnal_trace  # noqa: E402
from repro.obs.explain import DecisionLog  # noqa: E402
from repro.obs.live import META_KINDS, LiveConfig, LiveTelemetry  # noqa: E402
from repro.obs.slo import SLOMonitor  # noqa: E402
from repro.obs.tracer import RecordingTracer  # noqa: E402
from repro.scheduling.dp import DPScheduler  # noqa: E402
from repro.serving.policies import (  # noqa: E402
    BufferedSchedulingPolicy,
    ImmediateMaskPolicy,
)
from repro.serving.server import EnsembleServer  # noqa: E402
from repro.serving.workload import ServingWorkload  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_obs.json"

# The growth seed: last commit whose server had no tracer hooks.
BASELINE_COMMIT = "8c15a45"

LATENCIES = [0.010, 0.022, 0.045]
REPEATS = 5
# Quick mode still needs min-of-4: this gate compares two tracer
# variants ~2% apart, and min-of-2 leaves ±5% run-to-run jitter on a
# noisy CI machine.
REPEATS_QUICK = 4
OVERHEAD_DURATION = 120.0
OVERHEAD_DURATION_QUICK = 40.0
MAX_OVERHEAD = 0.05
# The flight recorder is always on once a live plane is attached, so
# its cost is gated against the plain RecordingTracer, not the bare
# baseline: ring append + snapshot windows must stay within 5%.
MAX_LIVE_OVERHEAD = 0.05
# Regression gate vs the committed BENCH_obs.json: fail only when the
# overhead is both above the absolute noise floor and more than
# REGRESSION_FACTOR times the committed figure. The floor matches the
# observed jitter of the null-tracer comparison on a contended CI
# machine: back-to-back interleaved min-of-4 runs still swing roughly
# -3%..+3%, so a 2.5% floor flakes on noise alone.
REGRESSION_FACTOR = 2.0
NOISE_FLOOR = 0.04


def load_baseline_server():
    """The seed commit's EnsembleServer, loaded straight from git."""
    source = subprocess.run(
        ["git", "show", f"{BASELINE_COMMIT}:src/repro/serving/server.py"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True,
    ).stdout
    module = types.ModuleType("baseline_server")
    sys.modules["baseline_server"] = module  # dataclass() resolves this
    exec(compile(source, "baseline_server", "exec"), module.__dict__)
    return module.EnsembleServer


def build_workload(base_rate, duration, seed, n_pool=512):
    trace = diurnal_trace(base_rate, duration, seed=seed)
    rng = np.random.default_rng(seed + 1)
    m = len(LATENCIES)
    quality = rng.uniform(0.3, 1.0, size=(n_pool, 1 << m))
    quality[:, 0] = 0.0
    return ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=np.full(len(trace), 0.08),
        sample_indices=rng.integers(n_pool, size=len(trace)),
        quality=quality,
    )


#: Span kinds only a profiling tracer emits.
PROFILE_KINDS = {"sched_phase", "queue_wait"}


def comparable_spans(spans):
    """Spans minus the profile-only kinds and the real-wall-clock
    ``wall_s`` attribute (inherently nondeterministic across runs)."""
    return [
        (
            s.kind, s.time, s.query_id,
            {k: v for k, v in s.attrs.items() if k != "wall_s"},
        )
        for s in spans
        if s.kind not in PROFILE_KINDS
    ]


def check_identity():
    """Traced/monitored/explained/profiled runs must agree
    record-for-record (and span-for-span modulo profiling extras)."""
    m = len(LATENCIES)
    utilities = np.ones((512, 1 << m))
    utilities[:, 0] = 0.0
    workload = build_workload(base_rate=60.0, duration=60.0, seed=11)

    def run(tracer, explain=None):
        policy = BufferedSchedulingPolicy(
            "schemble", DPScheduler(delta=0.05), utilities
        )
        server = EnsembleServer(
            LATENCIES, policy, tracer=tracer, explain=explain
        )
        return server.run(workload)

    plain = run(None)
    reference_tracer = RecordingTracer(slo=SLOMonitor())
    traced = run(reference_tracer)
    log = DecisionLog()
    explained = run(RecordingTracer(), explain=log)
    profiling_tracer = RecordingTracer(slo=SLOMonitor(), profile=True)
    profiled = run(profiling_tracer)
    live_tracer = RecordingTracer(
        slo=SLOMonitor(), live=LiveTelemetry(LiveConfig(cadence=1.0))
    )
    live = run(live_tracer)
    identical = (
        plain.records == traced.records
        and plain.records == explained.records
    )
    # The log must tell the truth: each served query's final decision
    # carries the mask the server actually committed.
    masks_match = all(
        (log.for_query(r.query_id)[-1].chosen_mask == r.scheduled_mask)
        for r in explained.records
        if log.for_query(r.query_id)
    )
    # Profiling must only add spans, never steer: same records, and the
    # non-profile spans match the unprofiled stream exactly (modulo the
    # real-wall-clock wall_s attribute).
    profile_spans = sum(
        s.kind in PROFILE_KINDS for s in profiling_tracer.spans
    )
    profile_identical = (
        plain.records == profiled.records
        and comparable_spans(profiling_tracer.spans)
        == comparable_spans(reference_tracer.spans)
        and profile_spans > 0
    )
    # The flight recorder must only watch: same records, and the span
    # stream minus the live plane's own meta kinds (snapshot/anomaly/
    # incident) matches the recorder-free stream exactly.
    meta_spans = sum(s.kind in META_KINDS for s in live_tracer.spans)
    live_identical = (
        plain.records == live.records
        and [
            s for s in comparable_spans(live_tracer.spans)
            if s[0] not in META_KINDS
        ]
        == comparable_spans(reference_tracer.spans)
        and meta_spans > 0
    )
    return {
        "queries": workload.n_queries,
        "records_identical": identical,
        "decisions": len(log),
        "decision_masks_match": masks_match,
        "profile_identical": profile_identical,
        "profile_spans": profile_spans,
        "live_identical": live_identical,
        "live_meta_spans": meta_spans,
        "live_snapshots": len(live_tracer.live.snapshots),
        "spans": "recorded",
    }, identical and masks_match and profile_identical and live_identical


def time_variants(runs, repeats=REPEATS):
    """Interleaved timing: one round runs every variant once, so slow
    machine phases hit all variants alike instead of biasing whichever
    block they land on; the starting variant rotates each round so no
    variant is pinned to one position (e.g. always last, right after
    the allocation-heaviest run). Min-of-N is the noise-robust
    statistic."""
    samples = {name: [] for name in runs}
    names = list(runs)
    for round_idx in range(repeats):
        offset = round_idx % len(names)
        for name in names[offset:] + names[:offset]:
            start = time.perf_counter()
            runs[name]()
            samples[name].append(time.perf_counter() - start)
    return {name: min(times) for name, times in samples.items()}, samples


def paired_ratio(samples, numer, denom):
    """Median of the per-round ``numer/denom`` ratios.

    The two variants run inside the same round (seconds apart, often
    back to back), so a slow machine phase inflates both timings of a
    pair alike and mostly cancels in the ratio — unlike
    ``min(numer)/min(denom)``, whose minima can land in different
    phases and carry the full phase delta. The median across rounds
    then discards pairs a phase boundary split. This is the statistic
    behind the tight (5%) overhead gates."""
    ratios = sorted(
        n / d for n, d in zip(samples[numer], samples[denom])
    )
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2.0


def check_overhead(quick=False):
    """NullTracer wall-clock vs the pre-observability server."""
    mask = 0b11
    duration = OVERHEAD_DURATION_QUICK if quick else OVERHEAD_DURATION
    repeats = REPEATS_QUICK if quick else REPEATS
    workload = build_workload(base_rate=400.0, duration=duration, seed=13)
    policy = ImmediateMaskPolicy("original", mask)
    BaselineServer = load_baseline_server()

    def run_baseline():
        return BaselineServer(LATENCIES, policy).run(workload)

    def run_server(tracer=None):
        server = EnsembleServer(LATENCIES, policy, tracer=tracer)
        return server.run(workload)

    # Validate the baseline before timing it: identical records mean
    # the two loops do identical work.
    assert run_server().records == run_baseline().records

    best, samples = time_variants({
        "baseline": run_baseline,
        "null_tracer": run_server,
        "recording_tracer": (
            lambda: run_server(RecordingTracer(keep_spans=False))
        ),
        "profiling_tracer": (
            lambda: run_server(
                RecordingTracer(keep_spans=False, profile=True)
            )
        ),
        # The flight-recorder gate pair, in the production config (the
        # CLI and fleet keep spans): with the tracer's span list kept,
        # the live plane runs span-backed — the ring is a view over the
        # list tail and a plain span costs only the boundary compare
        # plus one dict lookup.
        "recording_kept": lambda: run_server(RecordingTracer()),
        "live_tracer": (
            lambda: run_server(RecordingTracer(
                live=LiveTelemetry(LiveConfig(cadence=1.0)),
            ))
        ),
    }, repeats=repeats)
    overhead = paired_ratio(samples, "null_tracer", "baseline") - 1.0
    return {
        "queries": workload.n_queries,
        "repeats": repeats,
        "quick": quick,
        "baseline_s": best["baseline"],
        "null_tracer_s": best["null_tracer"],
        "recording_tracer_s": best["recording_tracer"],
        "profiling_tracer_s": best["profiling_tracer"],
        "recording_kept_s": best["recording_kept"],
        "live_tracer_s": best["live_tracer"],
        "null_tracer_overhead": overhead,
        "recording_tracer_ratio": paired_ratio(
            samples, "recording_tracer", "baseline"
        ),
        "profiling_tracer_ratio": paired_ratio(
            samples, "profiling_tracer", "baseline"
        ),
        "recording_kept_ratio": paired_ratio(
            samples, "recording_kept", "baseline"
        ),
        "live_tracer_ratio": paired_ratio(
            samples, "live_tracer", "baseline"
        ),
        # The flight-recorder gate: live plane cost relative to the
        # plain recording tracer it rides on (both keeping spans),
        # measured as the median of paired per-round ratios.
        "live_vs_recording_ratio": paired_ratio(
            samples, "live_tracer", "recording_kept"
        ),
        "max_allowed_overhead": MAX_OVERHEAD,
        "max_live_overhead": MAX_LIVE_OVERHEAD,
    }, overhead


def check_regression(stats, committed):
    """Overhead-regression gate vs the committed ``BENCH_obs.json``."""
    failures = []
    if not committed or "overhead" not in committed:
        return failures, True
    baseline = committed["overhead"]
    overhead = stats["null_tracer_overhead"]
    committed_overhead = baseline.get("null_tracer_overhead")
    if committed_overhead is not None:
        # Sub-noise-floor overheads never fail: with a committed figure
        # near zero, 2x of almost-nothing is still almost nothing.
        allowed = max(
            NOISE_FLOOR, REGRESSION_FACTOR * committed_overhead
        )
        if overhead > allowed:
            failures.append({
                "metric": "null_tracer_overhead",
                "value": overhead,
                "committed": committed_overhead,
                "allowed": allowed,
            })
    for metric in ("recording_tracer_ratio", "profiling_tracer_ratio",
                   "live_tracer_ratio"):
        ratio = stats.get(metric)
        committed_ratio = baseline.get(metric)
        if ratio is None or committed_ratio is None:
            continue
        allowed = REGRESSION_FACTOR * committed_ratio
        if ratio > allowed:
            failures.append({
                "metric": metric,
                "value": ratio,
                "committed": committed_ratio,
                "allowed": allowed,
            })
    return failures, not failures


def main(argv=None):
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    # The committed baseline must be read before this run overwrites it.
    committed = None
    if RESULTS_PATH.exists():
        committed = json.loads(RESULTS_PATH.read_text())

    identity, identical = check_identity()
    print(f"identity: {identity['queries']} queries, "
          f"records identical = {identity['records_identical']}, "
          f"{identity['decisions']} decisions, "
          f"masks match = {identity['decision_masks_match']}, "
          f"profiled identical = {identity['profile_identical']} "
          f"({identity['profile_spans']} profile spans), "
          f"live identical = {identity['live_identical']} "
          f"({identity['live_meta_spans']} meta spans, "
          f"{identity['live_snapshots']} snapshots)")
    overhead_stats, overhead = check_overhead(quick=quick)
    print(
        f"overhead: baseline {overhead_stats['baseline_s']:.3f}s, "
        f"null tracer {overhead_stats['null_tracer_s']:.3f}s "
        f"({100 * overhead:+.2f}%), recording tracer "
        f"{overhead_stats['recording_tracer_s']:.3f}s "
        f"({overhead_stats['recording_tracer_ratio']:.2f}x), "
        f"profiling tracer {overhead_stats['profiling_tracer_s']:.3f}s "
        f"({overhead_stats['profiling_tracer_ratio']:.2f}x), "
        f"live tracer {overhead_stats['live_tracer_s']:.3f}s "
        f"({overhead_stats['live_vs_recording_ratio']:.3f}x vs recording)"
    )
    regressions, regression_ok = check_regression(overhead_stats, committed)

    payload = {
        "identity": identity,
        "overhead": overhead_stats,
        "regressions": regressions,
        "regression_factor": REGRESSION_FACTOR,
        "noise_floor": NOISE_FLOOR,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    if not identical:
        print("FAIL: observability changed the serving records")
        return 1
    if overhead > MAX_OVERHEAD:
        print(f"FAIL: NullTracer overhead {100 * overhead:.2f}% "
              f"exceeds {100 * MAX_OVERHEAD:.0f}%")
        return 1
    live_overhead = overhead_stats["live_vs_recording_ratio"] - 1.0
    if live_overhead > MAX_LIVE_OVERHEAD:
        print(f"FAIL: flight-recorder overhead {100 * live_overhead:.2f}% "
              f"over RecordingTracer exceeds "
              f"{100 * MAX_LIVE_OVERHEAD:.0f}%")
        return 1
    for failure in regressions:
        print(f"FAIL: {failure['metric']} {failure['value']:.4f} exceeds "
              f"allowed {failure['allowed']:.4f} "
              f"(committed {failure['committed']:.4f})")
    if not regression_ok:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
