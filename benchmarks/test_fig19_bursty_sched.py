"""Fig. 19 — scheduler comparison during the bursty trace period.

On the heavy-traffic hours of the one-day trace, the DP scheduler's
advantage over greedy orders grows: with more queries in the queue, DP
can trade subsets across queries while greedy grabs maximal subsets.
"""


from benchmarks.conftest import save_result
from repro.experiments.runner import make_workload, run_policy, summarize
from repro.experiments.scheduler_ablation import scheduler_suite
from repro.experiments.trace_segments import make_day_trace
from repro.metrics.tables import format_table


def test_fig19_bursty_period_schedulers(benchmark, tm_setup):
    def compute():
        trace = make_day_trace(tm_setup, duration=120.0, seed=5)
        # The paper zooms into the 14-19h window: keep only arrivals in
        # the burst portion of the compressed day.
        low, high = 120.0 * 14 / 24, 120.0 * 19 / 24
        mask = (trace.arrivals >= low) & (trace.arrivals < high)
        from repro.data.traces import ArrivalTrace

        burst = ArrivalTrace(
            trace.arrivals[mask] - low, duration=high - low, name="burst"
        )
        workload = make_workload(tm_setup, burst, deadline=0.12, seed=6)
        out = {}
        for name, scheduler in scheduler_suite(deltas=(0.1, 0.01)).items():
            policy = tm_setup.schemble.policy(
                tm_setup.pool.features, name=name, scheduler=scheduler
            )
            stats = summarize(
                run_policy(tm_setup, policy, workload, policy_name=name),
                tm_setup,
            )
            out[name] = stats
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [name, f"{s['accuracy']:.3f}", f"{s['dmr']:.3f}"]
        for name, s in out.items()
    ]
    text = format_table(
        ["scheduler", "accuracy", "DMR"],
        rows,
        title="Fig 19 — schedulers on the 14-19h burst window",
    )
    save_result("fig19", text, out)
    print(text)

    greedy_best = max(
        s["accuracy"] for n, s in out.items() if n.startswith("greedy")
    )
    assert out["dp(d=0.01)"]["accuracy"] >= greedy_best - 0.01
