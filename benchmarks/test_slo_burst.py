"""SLO burst detection — online overload episodes (this repo).

Not a paper artefact: an engineering guard for the online SLO monitor.
A profiled arrival trace with a 10x burst in its middle third must be
overloading enough to blow the deadline-miss budget, and the monitor
watching the live span stream must localise it: exactly one overload
episode, opening within one alert window of the burst start and closing
within one window of its end.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.data.traces import diurnal_trace
from repro.metrics.tables import format_table
from repro.obs.slo import SLOConfig, SLOMonitor
from repro.obs.tracer import RecordingTracer
from repro.scheduling.dp import DPScheduler
from repro.serving.policies import BufferedSchedulingPolicy
from repro.serving.server import EnsembleServer
from repro.serving.workload import ServingWorkload

WINDOW = 5.0
DURATION = 60.0
BURST_START = DURATION / 3.0
BURST_END = 2.0 * DURATION / 3.0


def run_burst(seed=0):
    profile = [1.0, 1.0, 10.0, 10.0, 1.0, 1.0]
    trace = diurnal_trace(2.0, DURATION, profile=profile, seed=seed)
    rng = np.random.default_rng(seed + 1)
    n_pool = 16
    quality = np.ones((n_pool, 2))
    quality[:, 0] = 0.0
    workload = ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=np.full(len(trace), 0.4),
        sample_indices=rng.integers(n_pool, size=len(trace)),
        quality=quality,
    )
    utilities = np.ones((n_pool, 2))
    utilities[:, 0] = 0.0
    policy = BufferedSchedulingPolicy(
        "schemble", DPScheduler(delta=0.05), utilities
    )
    monitor = SLOMonitor(SLOConfig(
        miss_target=0.1,
        windows=(WINDOW, 15.0, DURATION),
        alert_window=WINDOW,
        min_events=10,
    ))
    tracer = RecordingTracer(slo=monitor)
    server = EnsembleServer([0.1], policy, tracer=tracer)
    result = server.run(workload)
    return result, tracer, monitor


def test_slo_burst_detection(benchmark):
    result, tracer, monitor = benchmark.pedantic(
        run_burst, rounds=1, iterations=1
    )

    rows = []
    for i, episode in enumerate(monitor.episodes):
        rows.append([
            f"#{i + 1}",
            f"{episode.start:.2f}s",
            "open" if episode.end is None else f"{episode.end:.2f}s",
            f"{episode.peak_burn:.2f}x",
        ])
    text = format_table(
        ["episode", "start", "end", "peak burn"],
        rows,
        title=(
            "SLO burst detection — 10x arrival burst over "
            f"t=[{BURST_START:.0f}s, {BURST_END:.0f}s], "
            f"{WINDOW:.0f}s alert window, 10% miss budget"
        ),
    )
    stats = monitor.window_stats()
    text += (
        f"\n\nqueries: {len(result)}  "
        f"overall DMR: {result.deadline_miss_rate():.3f}  "
        f"budget: {monitor.config.miss_target:.2f}"
    )
    for length in sorted(stats):
        text += (
            f"\nwindow {length:g}s at trace end: "
            f"burn {stats[length]['burn_rate']:.2f}x"
        )
    save_result("slo_burst", text, monitor.summary())
    print(text)

    # Shape assertions: the burst overloads the run, and the detector
    # localises it to one episode bracketing the burst.
    assert result.deadline_miss_rate() > monitor.config.miss_target
    assert len(monitor.episodes) == 1
    episode = monitor.episodes[0]
    assert BURST_START <= episode.start <= BURST_START + WINDOW
    assert episode.end is not None
    assert BURST_END <= episode.end <= BURST_END + WINDOW
    assert episode.peak_burn > monitor.config.breach_burn
    # Span stream and monitor agree.
    breaches = tracer.metrics.counter("slo.breaches").value
    assert breaches == len(monitor.episodes)
