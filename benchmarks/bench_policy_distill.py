"""Benchmark gate for the learned fast-path scheduler.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_policy_distill.py [--quick]

Four checks, matching the ISSUE's acceptance criteria:

* **Step-time speedup** — a 6-model policy distilled from DP solutions
  of small synthetic instances must beat the vectorized exact DP by
  ``MIN_STEP_SPEEDUP`` mean per-step at serving-scale buffers (64 and
  128 queries), with the regret gate disabled (``threshold=inf``) so
  the measurement is pure fast path.
* **End-to-end quality** — on the text_matching small preset, a policy
  distilled from a DP-scheduled run's decision log must serve the same
  trace (same seed) within ``MAX_QUALITY_GAP`` accuracy of the all-DP
  run, while falling back on fewer than ``MAX_FALLBACK_RATE`` of its
  scheduler invocations.
* **Bit-exact fallback** — the same learned scheduler with
  ``regret_threshold=0`` must reproduce the all-DP run exactly:
  identical per-query records and identical scheduler work units.
* **Regression** — current step-time speedups are compared against the
  committed ``benchmarks/results/BENCH_policy.json`` (read *before* it
  is overwritten): any grid point falling below ``1/REGRESSION_FACTOR``
  of its committed speedup fails the run.

``--quick`` shrinks the training set, timing grid and serving runs for
CI. Results go to ``benchmarks/results/BENCH_policy.json``; the
text_matching policy artifact trained by the end-to-end check is saved
next to it.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import RunSpec, run_spec  # noqa: E402
from repro.experiments.setups import build_setup  # noqa: E402
from repro.obs.explain import DecisionLog, DecisionRecord  # noqa: E402
from repro.scheduling.distill import distill_policy  # noqa: E402
from repro.scheduling.dp import DPScheduler  # noqa: E402
from repro.scheduling.policy_fast import LearnedScheduler  # noqa: E402
from repro.scheduling.problem import (  # noqa: E402
    QueryRequest,
    SchedulingInstance,
)

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_policy.json"
TABLE_PATH = Path(__file__).parent / "results" / "policy_distill.txt"
ARTIFACT_PATH = (
    Path(__file__).parent / "results" / "policy_text_matching.json"
)

TIMING_DELTA = 0.05
# Fixed 6-model deployment the synthetic policy is trained and timed
# on (spread of fast/slow members, like the real task deployments).
LATENCIES_6 = np.array([0.012, 0.025, 0.05, 0.08, 0.12, 0.18])
# Per-model solo quality: slower members are stronger, so the DP faces
# the real latency/quality trade-off instead of unlearnable noise.
QUALITY_6 = np.array([0.45, 0.55, 0.62, 0.7, 0.78, 0.85])
TRAIN_INSTANCES = 48
TRAIN_INSTANCES_QUICK = 24
# (n_queries, n_models) step-time grid; quick mode drops the largest.
STEP_GRID = ((64, 6), (128, 6))
STEP_GRID_QUICK = ((64, 6),)
STEP_INSTANCES = 2
STEP_INSTANCES_QUICK = 1
LEARNED_REPEATS = 5

MIN_STEP_SPEEDUP = 10.0
MAX_QUALITY_GAP = 0.01
MAX_QUALITY_GAP_QUICK = 0.05
MAX_FALLBACK_RATE = 0.5
REGRESSION_FACTOR = 3.0

E2E_DURATION = 30.0
E2E_DURATION_QUICK = 12.0


def synthetic_utilities(scores):
    """Deterministic ``scores -> (n, 64)`` utility rows for the 6-model
    deployment.

    Mirrors the real pipeline's property that rewards derive from the
    difficulty score alone: a mask's reward is its members' combined
    coverage (1 minus the chance every member misses) scaled by query
    difficulty, rounded to two decimals so quantised ties occur. This
    is the ``utilities_fn`` distillation uses to reconstruct logged
    instances exactly.
    """
    scores = np.asarray(scores, dtype=float)
    member = (
        (np.arange(64)[:, None] >> np.arange(6)[None, :]) & 1
    ).astype(bool)
    coverage = 1.0 - np.prod(
        np.where(member, 1.0 - QUALITY_6[None, :], 1.0), axis=1
    )
    rows = np.round(
        coverage[None, :] * (0.4 + 0.6 * scores[:, None]), 2
    )
    rows[:, 0] = 0.0
    return rows


def make_instance(rng, n_queries, n_models, latencies, now=0.0):
    """One randomized scheduling instance on the fixed 6-model
    deployment, with score-derived utility rows."""
    queries = []
    for qid in range(n_queries):
        score = float(rng.uniform(0.0, 1.0))
        queries.append(QueryRequest(
            query_id=qid,
            arrival=now,
            deadline=now + float(rng.uniform(0.1, 1.0)),
            utilities=synthetic_utilities([score])[0],
            score=score,
        ))
    return SchedulingInstance(
        queries=queries,
        latencies=latencies,
        busy_until=rng.uniform(0.0, 0.1, size=n_models),
        now=now,
    )


def synthesize_training_log(rng, n_instances, latencies):
    """A DecisionLog of DP-solved synthetic instances.

    Each instance is solved exactly and its plan written as one
    scheduling round, giving distillation the same oracle data an
    all-DP serving run's decision log would — without needing a
    6-model serving deployment.
    """
    n_models = latencies.shape[0]
    dp = DPScheduler(delta=TIMING_DELTA)
    log = DecisionLog()
    qid = 0
    for i in range(n_instances):
        now = 10.0 * (i + 1)
        n_queries = int(rng.integers(8, 13))
        instance = make_instance(
            rng, n_queries, n_models, latencies, now=now
        )
        instance = SchedulingInstance(
            queries=[
                QueryRequest(
                    query_id=qid + j,
                    arrival=q.arrival,
                    deadline=q.deadline,
                    utilities=q.utilities,
                    score=q.score,
                )
                for j, q in enumerate(instance.queries)
            ],
            latencies=instance.latencies,
            busy_until=instance.busy_until,
            now=instance.now,
        )
        qid += n_queries
        by_id = {q.query_id: q for q in instance.queries}
        for decision in dp.schedule(instance).decisions:
            query = by_id[decision.query_id]
            log.add(DecisionRecord(
                query_id=decision.query_id,
                decided_at=now,
                committed_at=now,
                action="dispatch" if decision.mask else "reject",
                chosen_mask=decision.mask,
                score=query.score,
                deadline=query.deadline,
                batch_size=n_queries,
                buffer_depth=0,
                busy_until=[float(b) for b in instance.busy_until],
            ))
    return log


def time_step_grid(model, grid, instances_per_point):
    """Mean per-step wall clock: learned fast path vs exact DP.

    The learned scheduler runs with ``regret_threshold=inf`` (the gate
    never fires), so this measures the O(buffer x models) path the
    headline claims. The DP is timed once per instance — at these sizes
    a single solve takes seconds, far above timer noise.
    """
    results = []
    for n_queries, n_models in grid:
        rng = np.random.default_rng(7 * n_queries + n_models)
        instances = [
            make_instance(rng, n_queries, n_models, LATENCIES_6)
            for _ in range(instances_per_point)
        ]
        learned = LearnedScheduler(
            model, regret_threshold=float("inf"),
        )
        dp = DPScheduler(delta=TIMING_DELTA)
        learned.schedule(instances[0])  # warm mask tables
        learned_s = []
        dp_s = []
        for instance in instances:
            best = float("inf")
            for _ in range(LEARNED_REPEATS):
                start = time.perf_counter()
                learned.schedule(instance)
                best = min(best, time.perf_counter() - start)
            learned_s.append(best)
            start = time.perf_counter()
            dp.schedule(instance)
            dp_s.append(time.perf_counter() - start)
        mean_learned = float(np.mean(learned_s))
        mean_dp = float(np.mean(dp_s))
        results.append({
            "n_queries": n_queries,
            "n_models": n_models,
            "delta": TIMING_DELTA,
            "instances": instances_per_point,
            "learned_step_s": mean_learned,
            "dp_step_s": mean_dp,
            "speedup": mean_dp / mean_learned,
        })
    return results


def run_e2e(quick):
    """Quality, fallback-rate and bit-exactness on text_matching small."""
    duration = E2E_DURATION_QUICK if quick else E2E_DURATION
    setup = build_setup("text_matching", "small", seed=0)
    log = DecisionLog()
    base_spec = RunSpec(
        policy="schemble", duration=duration, seed=5, scheduler="dp"
    )
    dp_result = run_spec(setup, base_spec, explain=log)

    model = distill_policy(
        log, setup.latencies, setup.schemble.utilities, seed=0
    )
    ARTIFACT_PATH.parent.mkdir(exist_ok=True)
    model.save(ARTIFACT_PATH)

    policy = setup.policies()["schemble"]
    exact = DPScheduler(delta=setup.schemble.delta)
    gated = LearnedScheduler(
        model, regret_threshold=0.5, fallback=exact
    )
    # Serve the identical workload (same trace/seed as the DP run) with
    # the learned scheduler swapped into the buffered policy directly.
    from repro.experiments.runner import make_workload, run_policy
    from repro.experiments.trace_segments import make_day_trace

    trace = make_day_trace(setup, duration=duration, seed=5)
    workload = make_workload(
        setup, trace, deadline=min(setup.deadline_grid), seed=6
    )
    learned_result = run_policy(
        setup, policy.with_scheduler(gated), workload,
        policy_name="schemble",
    )
    exact0 = DPScheduler(delta=setup.schemble.delta)
    bitexact = LearnedScheduler(
        model, regret_threshold=0.0, fallback=exact0
    )
    zero_result = run_policy(
        setup, policy.with_scheduler(bitexact), workload,
        policy_name="schemble",
    )

    def record_key(r):
        return (
            r.query_id, r.sample_index, r.scheduled_mask,
            r.executed_mask, r.completion, r.rejected,
        )

    dp_acc = dp_result.accuracy(setup.quality)
    learned_acc = learned_result.accuracy(setup.quality)
    bit_exact = (
        [record_key(r) for r in zero_result.records]
        == [record_key(r) for r in dp_result.records]
        and zero_result.scheduler_work_units
        == dp_result.scheduler_work_units
    )
    return {
        "duration": duration,
        "dp_accuracy": dp_acc,
        "learned_accuracy": learned_acc,
        "quality_gap": dp_acc - learned_acc,
        "fallback_rate": gated.fallback_rate,
        "invocations": gated.invocations,
        "fallbacks": gated.fallbacks,
        "threshold0_bit_exact": bool(bit_exact),
        "model_kind": model.kind,
        "val_accuracy": model.metadata["val_accuracy"],
        "artifact": str(ARTIFACT_PATH.relative_to(REPO_ROOT)),
    }


def check_regression(timing, committed):
    """Fail any grid point whose speedup collapsed vs the baseline."""
    if not committed:
        return [], True
    baseline = {
        (point["n_queries"], point["n_models"]): point["speedup"]
        for point in committed.get("step_timing", [])
    }
    failures = []
    for point in timing:
        key = (point["n_queries"], point["n_models"])
        if key not in baseline:
            continue
        floor = baseline[key] / REGRESSION_FACTOR
        if point["speedup"] < floor:
            failures.append({
                "n_queries": key[0],
                "n_models": key[1],
                "speedup": point["speedup"],
                "committed_speedup": baseline[key],
                "floor": floor,
            })
    return failures, not failures


def main(argv=None):
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    committed = None
    if RESULTS_PATH.exists():
        committed = json.loads(RESULTS_PATH.read_text())

    rng = np.random.default_rng(2026)
    n_train = TRAIN_INSTANCES_QUICK if quick else TRAIN_INSTANCES
    start = time.perf_counter()
    log = synthesize_training_log(rng, n_train, LATENCIES_6)
    solve_s = time.perf_counter() - start
    start = time.perf_counter()
    model6 = distill_policy(log, LATENCIES_6, synthetic_utilities, seed=0)
    distill_s = time.perf_counter() - start
    print(f"trained 6-model policy: {n_train} DP instances in "
          f"{solve_s:.1f}s, distilled in {distill_s:.1f}s "
          f"(kind={model6.kind}, "
          f"val acc={model6.metadata['val_accuracy']})")

    step_timing = time_step_grid(
        model6,
        STEP_GRID_QUICK if quick else STEP_GRID,
        STEP_INSTANCES_QUICK if quick else STEP_INSTANCES,
    )
    speedup_ok = True
    for point in step_timing:
        print(f"  n={point['n_queries']:3d} m={point['n_models']}: "
              f"learned {point['learned_step_s'] * 1e3:7.2f} ms/step, "
              f"DP {point['dp_step_s']:7.2f} s/step, "
              f"speedup {point['speedup']:.0f}x")
        if point["speedup"] < MIN_STEP_SPEEDUP:
            speedup_ok = False
            print(f"FAIL: step speedup {point['speedup']:.1f}x at "
                  f"n={point['n_queries']} m={point['n_models']} below "
                  f"required {MIN_STEP_SPEEDUP:.0f}x")

    e2e = run_e2e(quick)
    gap_limit = MAX_QUALITY_GAP_QUICK if quick else MAX_QUALITY_GAP
    print(f"e2e text_matching/small: dp acc {e2e['dp_accuracy']:.4f}, "
          f"learned acc {e2e['learned_accuracy']:.4f} "
          f"(gap {e2e['quality_gap']:+.4f}), fallback rate "
          f"{100 * e2e['fallback_rate']:.1f}% over "
          f"{e2e['invocations']} invocations, threshold-0 bit-exact: "
          f"{e2e['threshold0_bit_exact']}")
    quality_ok = e2e["quality_gap"] <= gap_limit
    if not quality_ok:
        print(f"FAIL: learned scheduler lost {e2e['quality_gap']:.4f} "
              f"accuracy vs all-DP (limit {gap_limit})")
    fallback_ok = e2e["fallback_rate"] < MAX_FALLBACK_RATE
    if not fallback_ok:
        print(f"FAIL: fallback rate {e2e['fallback_rate']:.2f} >= "
              f"{MAX_FALLBACK_RATE} — the fast path is not serving")
    bitexact_ok = e2e["threshold0_bit_exact"]
    if not bitexact_ok:
        print("FAIL: regret_threshold=0 did not reproduce the all-DP "
              "run bit-exactly")

    regressions, regression_ok = check_regression(step_timing, committed)
    for failure in regressions:
        print(f"FAIL: step speedup {failure['speedup']:.0f}x at "
              f"n={failure['n_queries']} m={failure['n_models']} fell "
              f"below 1/{REGRESSION_FACTOR:g} of the committed "
              f"{failure['committed_speedup']:.0f}x")

    payload = {
        "quick": quick,
        "train_instances": n_train,
        "train_solve_s": solve_s,
        "distill_s": distill_s,
        "model6_kind": model6.kind,
        "model6_val_accuracy": model6.metadata["val_accuracy"],
        "step_timing": step_timing,
        "e2e": e2e,
        "regressions": regressions,
        "min_step_speedup": MIN_STEP_SPEEDUP,
        "max_quality_gap": gap_limit,
        "max_fallback_rate": MAX_FALLBACK_RATE,
        "regression_factor": REGRESSION_FACTOR,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    lines = [
        "Learned fast-path scheduler — distilled policy vs exact "
        "vectorized DP",
        f"6-model policy: {model6.kind}, trained on {n_train} synthetic "
        f"DP instances",
        "buffer  models  learned/step  DP/step    speedup",
        "------  ------  ------------  ---------  -------",
    ]
    for point in step_timing:
        lines.append(
            f"{point['n_queries']:<6d}  {point['n_models']:<6d}  "
            f"{point['learned_step_s'] * 1e3:9.2f} ms  "
            f"{point['dp_step_s']:6.2f} s   "
            f"{point['speedup']:.0f}x"
        )
    lines += [
        "",
        f"e2e (text_matching/small, {e2e['duration']:g}s trace): "
        f"dp {e2e['dp_accuracy']:.4f} vs learned "
        f"{e2e['learned_accuracy']:.4f} accuracy, "
        f"{100 * e2e['fallback_rate']:.1f}% DP fallbacks, "
        f"threshold-0 bit-exact: {e2e['threshold0_bit_exact']}",
    ]
    TABLE_PATH.write_text("\n".join(lines) + "\n")

    if not (speedup_ok and quality_ok and fallback_ok and bitexact_ok
            and regression_ok):
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
