"""Weight initialisers."""

import numpy as np
import pytest

from repro.nn.initializers import he_init, xavier_init


class TestHeInit:
    def test_shape(self):
        assert he_init(10, 5, rng=0).shape == (10, 5)

    def test_variance_scales_with_fan_in(self):
        big = he_init(1000, 200, rng=0)
        assert big.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_seeded_reproducible(self):
        np.testing.assert_array_equal(he_init(4, 4, rng=7), he_init(4, 4, rng=7))


class TestXavierInit:
    def test_bounds(self):
        weights = xavier_init(30, 20, rng=1)
        limit = np.sqrt(6.0 / 50)
        assert np.all(np.abs(weights) <= limit)

    def test_spread_uses_full_range(self):
        weights = xavier_init(500, 500, rng=2)
        limit = np.sqrt(6.0 / 1000)
        assert weights.max() > 0.9 * limit
        assert weights.min() < -0.9 * limit
