"""Tests for layers: forward shapes and analytic-vs-numerical gradients."""

import numpy as np
import pytest

from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers import Dense, Dropout, Parameter


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones((2, 2)))
        p.grad += 5.0
        p.zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_size(self):
        assert Parameter(np.ones((3, 4))).size == 12


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(5, 3, rng=rng)
        out = layer.forward(rng.normal(size=(7, 5)))
        assert out.shape == (7, 3)

    def test_forward_is_affine(self, rng):
        layer = Dense(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_rejects_wrong_width(self, rng):
        layer = Dense(4, 2, rng=rng)
        with pytest.raises(ValueError, match="input width"):
            layer.forward(np.zeros((3, 5)))

    def test_rejects_1d_input(self, rng):
        layer = Dense(4, 2, rng=rng)
        with pytest.raises(ValueError, match="2-d input"):
            layer.forward(np.zeros(4))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError, match="positive"):
            Dense(0, 3)

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(4, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))

        def loss():
            return float((layer.forward(x, training=True) ** 2).sum())

        layer.forward(x, training=True)
        out = layer.forward(x, training=True)
        layer.weight.zero_grad()
        layer.bias.zero_grad()
        layer.backward(2 * out)
        num_w = numerical_gradient(loss, layer.weight.value)
        num_b = numerical_gradient(loss, layer.bias.value)
        np.testing.assert_allclose(layer.weight.grad, num_w, atol=1e-4)
        np.testing.assert_allclose(layer.bias.grad, num_b, atol=1e-4)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x, training=True)
        grad_in = layer.backward(2 * out)

        def loss():
            return float((layer.forward(x, training=True) ** 2).sum())

        np.testing.assert_allclose(
            grad_in, numerical_gradient(loss, x), atol=1e-4
        )

    def test_xavier_init_supported(self, rng):
        layer = Dense(4, 4, init="xavier", rng=rng)
        limit = np.sqrt(6.0 / 8.0)
        assert np.all(np.abs(layer.weight.value) <= limit)

    def test_unknown_init_rejected(self):
        with pytest.raises(ValueError, match="init"):
            Dense(2, 2, init="bogus")


@pytest.mark.parametrize(
    "layer_cls", [ReLU, Tanh, Sigmoid, LeakyReLU, Identity]
)
class TestActivationGradients:
    def test_gradient_matches_numerical(self, layer_cls, rng):
        layer = layer_cls()
        x = rng.normal(size=(4, 3)) + 0.1  # avoid ReLU kink at exactly 0
        out = layer.forward(x, training=True)
        grad_in = layer.backward(2 * out)

        def loss():
            return float((layer.forward(x, training=True) ** 2).sum())

        np.testing.assert_allclose(
            grad_in, numerical_gradient(loss, x), atol=1e-4
        )


class TestActivations:
    def test_relu_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1).forward(np.array([[-10.0, 10.0]]))
        np.testing.assert_allclose(out, [[-1.0, 10.0]])

    def test_leaky_relu_rejects_negative_slope(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.5)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 1)))


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(10, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_and_scales(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((2000, 1))
        out = layer.forward(x, training=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.35 < (out != 0).mean() < 0.65

    def test_backward_masks_gradient(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((50, 4))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal((grad != 0), (out != 0))

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
