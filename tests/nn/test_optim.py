"""Optimizer behaviour on analytic objectives."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_step(param):
    """Gradient of f(w) = ||w||^2 / 2."""
    param.grad = param.value.copy()


class TestSGD:
    def test_plain_sgd_descends_quadratic(self):
        param = Parameter(np.array([10.0, -6.0]))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_step(param)
            opt.step()
        np.testing.assert_allclose(param.value, 0.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([10.0]))
        moment = Parameter(np.array([10.0]))
        opt_plain = SGD([plain], lr=0.01)
        opt_mom = SGD([moment], lr=0.01, momentum=0.9)
        for _ in range(50):
            for opt, p in [(opt_plain, plain), (opt_mom, moment)]:
                opt.zero_grad()
                quadratic_step(p)
                opt.step()
        assert abs(moment.value[0]) < abs(plain.value[0])

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()  # zero task gradient; only decay acts
        opt.step()
        assert param.value[0] == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1, weight_decay=-1.0)

    def test_zero_grad_clears_all(self):
        params = [Parameter(np.ones(2)), Parameter(np.ones(3))]
        opt = SGD(params, lr=0.1)
        for p in params:
            p.grad += 1.0
        opt.zero_grad()
        for p in params:
            np.testing.assert_array_equal(p.grad, 0.0)


class TestAdam:
    def test_descends_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        opt = Adam([param], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_step(param)
            opt.step()
        np.testing.assert_allclose(param.value, 0.0, atol=1e-2)

    def test_handles_sparse_scale_differences(self):
        # Adam should make progress on both coordinates despite very
        # different gradient magnitudes.
        param = Parameter(np.array([1.0, 1.0]))
        scales = np.array([100.0, 0.01])
        opt = Adam([param], lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            param.grad = scales * param.value
            opt.step()
        np.testing.assert_allclose(param.value, 0.0, atol=0.05)

    def test_first_step_size_is_lr(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.1)
        param.grad = np.array([123.0])
        opt.step()
        # Bias correction makes the first step ~lr regardless of scale.
        assert param.value[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1, eps=0.0)
