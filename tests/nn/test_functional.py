"""Tests for repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.functional import log_softmax, one_hot, sigmoid, softmax

finite_rows = arrays(
    np.float64,
    (4, 5),
    elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_uniform_on_equal_logits(self):
        probs = softmax(np.zeros((1, 4)))
        np.testing.assert_allclose(probs, 0.25)

    def test_invariant_to_shift(self):
        logits = np.array([[1.0, 5.0, -2.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_extreme_logits_stable(self):
        probs = softmax(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs[0], [1.0, 0.0], atol=1e-12)

    @given(finite_rows)
    @settings(max_examples=25, deadline=None)
    def test_valid_distribution_property(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        logits = np.array([[0.5, -1.0, 2.0]])
        np.testing.assert_allclose(
            log_softmax(logits), np.log(softmax(logits)), atol=1e-12
        )

    def test_stable_for_large_values(self):
        out = log_softmax(np.array([[1e4, 0.0]]))
        assert np.all(np.isfinite(out))


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)

    def test_extremes_do_not_overflow(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


class TestOneHot:
    def test_basic_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="labels must be in"):
            one_hot(np.array([0, 3]), 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="labels must be in"):
            one_hot(np.array([-1]), 3)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty_input(self):
        assert one_hot(np.array([], dtype=int), 3).shape == (0, 3)
