"""Loss values and gradients."""

import numpy as np
import pytest

from repro.nn.functional import one_hot, softmax
from repro.nn.losses import (
    MeanSquaredError,
    SigmoidBinaryCrossEntropy,
    SoftmaxCrossEntropy,
)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_uniform_prediction_loss_is_log_k(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((3, 4)), np.array([0, 1, 2]))
        assert value == pytest.approx(np.log(4))

    def test_soft_targets_accepted(self):
        loss = SoftmaxCrossEntropy()
        target = np.array([[0.5, 0.5]])
        value = loss.forward(np.zeros((1, 2)), target)
        assert value == pytest.approx(np.log(2))

    def test_gradient_formula(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1.0, -2.0, 0.5]])
        labels = np.array([2])
        loss.forward(logits, labels)
        expected = (softmax(logits) - one_hot(labels, 3)) / 1
        np.testing.assert_allclose(loss.backward(), expected)

    def test_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])
        loss.forward(logits, labels)
        analytic = loss.backward()
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                logits[i, j] += eps
                up = loss.forward(logits.copy(), labels)
                logits[i, j] -= 2 * eps
                down = loss.forward(logits.copy(), labels)
                logits[i, j] += eps
                assert analytic[i, j] == pytest.approx(
                    (up - down) / (2 * eps), abs=1e-4
                )
        loss.forward(logits, labels)

    def test_shape_mismatch_rejected(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError, match="does not match"):
            loss.forward(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestMeanSquaredError:
    def test_zero_on_exact(self):
        loss = MeanSquaredError()
        assert loss.forward(np.ones((3, 2)), np.ones((3, 2))) == 0.0

    def test_value(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([[2.0]]), np.array([[0.0]])) == 4.0

    def test_gradient(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0, 3.0]])
        loss.forward(pred, np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(loss.backward(), [[1.0, 3.0]])

    def test_reshapes_flat_targets(self):
        loss = MeanSquaredError()
        value = loss.forward(np.zeros((3, 1)), np.array([1.0, 1.0, 1.0]))
        assert value == pytest.approx(1.0)


class TestSigmoidBCE:
    def test_confident_correct_low_loss(self):
        loss = SigmoidBinaryCrossEntropy()
        assert loss.forward(np.array([[50.0]]), np.array([[1.0]])) < 1e-6

    def test_uniform_is_log2(self):
        loss = SigmoidBinaryCrossEntropy()
        assert loss.forward(np.array([[0.0]]), np.array([[1.0]])) == pytest.approx(
            np.log(2)
        )

    def test_extreme_logits_finite(self):
        loss = SigmoidBinaryCrossEntropy()
        value = loss.forward(np.array([[1e4], [-1e4]]), np.array([[0.0], [1.0]]))
        assert np.isfinite(value)

    def test_gradient_sign(self):
        loss = SigmoidBinaryCrossEntropy()
        loss.forward(np.array([[0.0]]), np.array([[1.0]]))
        assert loss.backward()[0, 0] < 0  # pushing logit up reduces loss
