"""End-to-end training of the nn model wrappers."""

import numpy as np
import pytest

from repro.nn.models import MLPClassifier, MLPRegressor, MultiHeadMLP
from repro.nn.network import Sequential
from repro.nn.layers import Dense
from repro.nn.activations import ReLU


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(500, 6))
    y = (x[:, 0] - 0.5 * x[:, 1] > 0).astype(int)
    return x, y


class TestSequential:
    def test_parameters_collected_across_layers(self, rng):
        net = Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
        assert len(net.parameters()) == 4
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_add_returns_self(self, rng):
        net = Sequential()
        assert net.add(Dense(2, 2, rng=rng)) is net

    def test_rejects_non_layer(self):
        with pytest.raises(TypeError):
            Sequential(["not a layer"])

    def test_nested_sequential_backward(self, rng):
        inner = Sequential([Dense(3, 3, rng=rng), ReLU()])
        outer = Sequential([inner, Dense(3, 1, rng=rng)])
        x = rng.normal(size=(5, 3))
        out = outer.forward(x, training=True)
        grad = outer.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestMLPClassifier:
    def test_learns_linear_boundary(self, linear_data):
        x, y = linear_data
        clf = MLPClassifier(6, 2, hidden=(16,), epochs=25, seed=1).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.9

    def test_loss_history_decreases(self, linear_data):
        x, y = linear_data
        clf = MLPClassifier(6, 2, hidden=(16,), epochs=20, seed=1).fit(x, y)
        assert clf.history[-1] < clf.history[0]

    def test_predict_proba_valid(self, linear_data):
        x, y = linear_data
        clf = MLPClassifier(6, 2, epochs=3, seed=1).fit(x, y)
        probs = clf.predict_proba(x[:10])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_seeded_training_is_deterministic(self, linear_data):
        x, y = linear_data
        a = MLPClassifier(6, 2, epochs=3, seed=7).fit(x, y)
        b = MLPClassifier(6, 2, epochs=3, seed=7).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_sample_count_mismatch_rejected(self):
        clf = MLPClassifier(3, 2, epochs=1)
        with pytest.raises(ValueError, match="sample count"):
            clf.fit(np.zeros((4, 3)), np.zeros(5, dtype=int))

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            MLPClassifier(3, 1)


class TestMLPRegressor:
    def test_fits_linear_target(self, rng):
        x = rng.normal(size=(400, 4))
        y = 3.0 * x[:, :1] - x[:, 1:2]
        reg = MLPRegressor(4, 1, hidden=(16,), lr=3e-3, epochs=40, seed=1)
        reg.fit(x, y)
        mse = float(np.mean((reg.predict(x) - y) ** 2))
        assert mse < 0.5

    def test_multi_output(self, rng):
        x = rng.normal(size=(300, 4))
        y = np.c_[x[:, 0], -x[:, 1]]
        reg = MLPRegressor(4, 2, hidden=(16,), lr=3e-3, epochs=30, seed=1)
        reg.fit(x, y)
        assert reg.predict(x[:5]).shape == (5, 2)

    def test_rejects_target_width_mismatch(self, rng):
        reg = MLPRegressor(3, 2, epochs=1)
        with pytest.raises(ValueError, match="targets"):
            reg.fit(np.zeros((4, 3)), np.zeros((4, 3)))


class TestMultiHeadMLP:
    def test_learns_both_heads(self, rng):
        x = rng.normal(size=(600, 5))
        labels = (x[:, 0] > 0).astype(int)
        disc = np.abs(x[:, 1]) / 3.0
        net = MultiHeadMLP(5, 2, epochs=30, seed=2).fit(x, labels, disc)
        pred_disc = net.predict_discrepancy(x)
        assert np.corrcoef(pred_disc, disc)[0, 1] > 0.5
        task = net.predict_task(x)
        assert (task.argmax(axis=1) == labels).mean() > 0.8

    def test_discrepancy_clipped_non_negative(self, rng):
        x = rng.normal(size=(100, 5))
        net = MultiHeadMLP(5, 2, epochs=1, seed=2)
        net.fit(x, np.zeros(100, dtype=int), np.zeros(100))
        assert np.all(net.predict_discrepancy(x) >= 0)

    def test_regression_task_head(self, rng):
        x = rng.normal(size=(300, 5))
        targets = x[:, :3]
        disc = np.abs(x[:, 3])
        net = MultiHeadMLP(5, 3, task="regression", epochs=10, seed=3)
        net.fit(x, targets, disc)
        assert net.predict_task(x[:4]).shape == (4, 3)

    def test_lambda_zero_still_trains_task(self, rng):
        x = rng.normal(size=(200, 4))
        labels = (x[:, 0] > 0).astype(int)
        net = MultiHeadMLP(4, 2, lam=0.0, epochs=10, seed=4)
        net.fit(x, labels, np.zeros(200))
        assert net.history[-1]["task_loss"] < net.history[0]["task_loss"]

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiHeadMLP(4, 2, task="ranking")
        with pytest.raises(ValueError):
            MultiHeadMLP(4, 2, lam=-1.0)

    def test_mismatched_lengths_rejected(self, rng):
        net = MultiHeadMLP(4, 2, epochs=1)
        with pytest.raises(ValueError, match="sample count"):
            net.fit(np.zeros((5, 4)), np.zeros(5, dtype=int), np.zeros(4))


class TestStateDict:
    def test_roundtrip_preserves_outputs(self, rng):
        x = rng.normal(size=(20, 4))
        a = MLPClassifier(4, 2, hidden=(8,), epochs=2, seed=1)
        a.fit(x, (x[:, 0] > 0).astype(int))
        state = a.network.state_dict()

        b = MLPClassifier(4, 2, hidden=(8,), epochs=0, seed=99)
        b.network.load_state_dict(state)
        np.testing.assert_allclose(
            a.predict_proba(x), b.predict_proba(x), atol=1e-12
        )

    def test_state_dict_is_a_copy(self, rng):
        net = MLPClassifier(3, 2, hidden=(4,), epochs=0, seed=0).network
        state = net.state_dict()
        state["param_0"][:] = 123.0
        assert not np.allclose(net.parameters()[0].value, 123.0)

    def test_shape_mismatch_rejected(self, rng):
        net = MLPClassifier(3, 2, hidden=(4,), epochs=0, seed=0).network
        state = net.state_dict()
        state["param_0"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state)

    def test_missing_key_rejected(self):
        net = MLPClassifier(3, 2, hidden=(4,), epochs=0, seed=0).network
        state = net.state_dict()
        del state["param_0"]
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_count_mismatch_rejected(self):
        net = MLPClassifier(3, 2, hidden=(4,), epochs=0, seed=0).network
        state = net.state_dict()
        state.pop("param_0")
        with pytest.raises(ValueError, match="tensors"):
            net.load_state_dict(state)
