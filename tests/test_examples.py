"""Examples stay importable and well-formed.

Full example runs train models for minutes; these tests compile each
script and check its structure so a broken API change is caught without
paying the runtime (the quickstart path itself is executed end-to-end
by tests/test_integration.py).
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
class TestExampleScripts:
    def test_compiles(self, script):
        source = script.read_text()
        compile(source, str(script), "exec")

    def test_has_main_guard(self, script):
        tree = ast.parse(script.read_text())
        has_main = any(
            isinstance(node, ast.FunctionDef) and node.name == "main"
            for node in tree.body
        )
        has_guard = any(
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and getattr(node.test.left, "id", "") == "__name__"
            for node in tree.body
        )
        assert has_main and has_guard

    def test_has_module_docstring(self, script):
        assert ast.get_docstring(ast.parse(script.read_text()))

    def test_imports_resolve(self, script):
        """Every repro import the example uses must exist."""
        import importlib

        tree = ast.parse(script.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module.startswith("repro")
            ):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{node.module}.{alias.name} missing "
                        f"(used by {script.name})"
                    )


def test_expected_examples_present():
    names = {p.name for p in SCRIPTS}
    assert {"quickstart.py", "text_matching_day.py",
            "vehicle_counting_cameras.py",
            "image_retrieval_budget.py"}.issubset(names)
