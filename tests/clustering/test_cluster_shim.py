"""The deprecated ``repro.cluster`` shim: warns once, still works."""

import importlib
import sys
import warnings

import numpy as np


def _fresh_import(name):
    for mod in [m for m in sys.modules if m == name or m.startswith(name + ".")]:
        del sys.modules[mod]
    return importlib.import_module(name)


class TestClusterShim:
    def test_import_emits_deprecation_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _fresh_import("repro.cluster")
        messages = [
            str(w.message) for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert any("repro.clustering" in m for m in messages), messages

    def test_shim_reexports_the_same_kmeans(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cluster = _fresh_import("repro.cluster")
            from repro.cluster.kmeans import KMeans as deep_kmeans
        from repro.clustering import KMeans

        assert cluster.KMeans is KMeans
        assert deep_kmeans is KMeans

    def test_shimmed_class_is_usable(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cluster = _fresh_import("repro.cluster")
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        model = cluster.KMeans(n_clusters=2, seed=0).fit(points)
        labels = model.predict(points)
        assert labels[0] == labels[1] and labels[2] == labels[3]
        assert labels[0] != labels[2]
