"""Tests for the k-means substrate."""

import numpy as np
import pytest

from repro.clustering.kmeans import KMeans


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    labels = rng.integers(3, size=600)
    return centers[labels] + rng.normal(size=(600, 2)) * 0.5, labels, centers


class TestKMeans:
    def test_recovers_separated_blobs(self, blobs):
        x, _, centers = blobs
        model = KMeans(n_clusters=3, seed=1).fit(x)
        found = model.centers_[np.argsort(model.centers_[:, 0] + model.centers_[:, 1])]
        expected = centers[np.argsort(centers[:, 0] + centers[:, 1])]
        np.testing.assert_allclose(found, expected, atol=0.5)

    def test_predict_assigns_nearest_center(self, blobs):
        x, _, _ = blobs
        model = KMeans(n_clusters=3, seed=1).fit(x)
        point = np.array([[10.0, 0.2]])
        label = model.predict(point)[0]
        distances = ((model.centers_ - point) ** 2).sum(axis=1)
        assert label == np.argmin(distances)

    def test_predict_handles_1d_point(self, blobs):
        x, _, _ = blobs
        model = KMeans(n_clusters=3, seed=1).fit(x)
        assert model.predict(np.array([0.0, 0.0])).shape == (1,)

    def test_deterministic_under_seed(self, blobs):
        x, _, _ = blobs
        a = KMeans(n_clusters=3, seed=9).fit(x)
        b = KMeans(n_clusters=3, seed=9).fit(x)
        np.testing.assert_allclose(a.centers_, b.centers_)

    def test_inertia_decreases_with_more_clusters(self, blobs):
        x, _, _ = blobs
        few = KMeans(n_clusters=2, seed=1).fit(x)
        many = KMeans(n_clusters=6, seed=1).fit(x)
        assert many.inertia_ < few.inertia_

    def test_single_cluster_center_is_mean(self, blobs):
        x, _, _ = blobs
        model = KMeans(n_clusters=1, seed=0).fit(x)
        np.testing.assert_allclose(model.centers_[0], x.mean(axis=0), atol=1e-6)

    def test_duplicate_points_handled(self):
        x = np.ones((20, 2))
        model = KMeans(n_clusters=3, seed=0).fit(x)
        assert np.all(np.isfinite(model.centers_))

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, max_iter=0)
        with pytest.raises(ValueError, match="at least"):
            KMeans(n_clusters=10).fit(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="2-d"):
            KMeans(n_clusters=1).fit(np.zeros(5))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.zeros((1, 2)))
