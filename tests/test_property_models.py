"""Hypothesis property tests on the model substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.kmeans import KMeans
from repro.models.calibration import TemperatureScaling
from repro.trees.decision_tree import DecisionTreeRegressor
from repro.trees.gbdt import GradientBoostingClassifier


@st.composite
def small_dataset(draw, max_n=60, d=3):
    n = draw(st.integers(10, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    return x, rng


class TestTreeProperties:
    @given(small_dataset())
    @settings(max_examples=20, deadline=None)
    def test_predictions_within_target_range(self, data):
        """A regression tree predicts leaf means, so outputs lie inside
        the training-target range."""
        x, rng = data
        y = rng.uniform(-5, 5, size=x.shape[0])
        tree = DecisionTreeRegressor(max_depth=4, min_samples_leaf=2).fit(x, y)
        pred = tree.predict(x)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @given(small_dataset())
    @settings(max_examples=15, deadline=None)
    def test_gbdt_probabilities_valid(self, data):
        x, rng = data
        y = rng.integers(2, size=x.shape[0])
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        model = GradientBoostingClassifier(n_estimators=3, max_depth=2)
        model.fit(x, y)
        probs = model.predict_proba(x)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


class TestKMeansProperties:
    @given(small_dataset(), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_labels_in_range_and_centers_finite(self, data, k):
        x, _ = data
        if x.shape[0] < k:
            return
        model = KMeans(n_clusters=k, seed=0).fit(x)
        labels = model.predict(x)
        assert labels.min() >= 0
        assert labels.max() < k
        assert np.all(np.isfinite(model.centers_))

    @given(small_dataset())
    @settings(max_examples=10, deadline=None)
    def test_assignment_minimises_distance(self, data):
        x, _ = data
        model = KMeans(n_clusters=2, seed=0).fit(x)
        labels = model.predict(x)
        d = ((x[:, None, :] - model.centers_[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(labels, d.argmin(axis=1))


class TestCalibrationProperties:
    @given(st.integers(0, 2**31 - 1), st.floats(0.2, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_transform_never_breaks_simplex(self, seed, temperature):
        rng = np.random.default_rng(seed)
        raw = rng.random((50, 3)) + 1e-3
        probs = raw / raw.sum(axis=1, keepdims=True)
        labels = rng.integers(3, size=50)
        ts = TemperatureScaling(grid=np.array([temperature]))
        out = ts.fit(probs, labels).transform(probs)
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)
