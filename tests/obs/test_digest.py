"""Streaming quantile digest: accuracy, memory bound, mergeability.

The headline acceptance test runs the real buffered Schemble policy on a
>10k-query diurnal trace and checks the digest's report percentiles stay
within 1% relative error of exact quantiles while retaining >= 100x
fewer values than exact computation would.
"""

import json

import numpy as np
import pytest

from repro.data.traces import diurnal_trace
from repro.obs.digest import QuantileDigest
from repro.scheduling.dp import DPScheduler
from repro.serving.policies import BufferedSchedulingPolicy
from repro.serving.server import EnsembleServer
from repro.serving.workload import ServingWorkload

REPORT_QS = (0.5, 0.9, 0.95, 0.99)


def fill(values, compression=128):
    digest = QuantileDigest(compression=compression)
    for v in values:
        digest.add(v)
    return digest


def rel_error(digest, values, q):
    exact = float(np.quantile(values, q))
    denom = abs(exact) if abs(exact) > 1e-9 else 1.0
    return abs(digest.quantile(q) - exact) / denom


class TestBasics:
    def test_small_inputs_near_exact(self):
        digest = fill(range(10))
        assert digest.count == 10
        assert digest.mean == pytest.approx(4.5)
        assert digest.quantile(0.0) == 0.0
        assert digest.quantile(1.0) == 9.0
        assert digest.quantile(0.5) == pytest.approx(4.5)

    def test_single_value(self):
        digest = fill([3.25])
        assert digest.quantile(0.5) == 3.25
        assert digest.min == digest.max == 3.25

    def test_empty_quantile_is_nan(self):
        assert np.isnan(QuantileDigest().quantile(0.5))
        assert np.isnan(QuantileDigest().mean)

    def test_min_max_exact_on_long_streams(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 3, 25_000)
        digest = fill(values)
        assert digest.quantile(0.0) == values.min()
        assert digest.quantile(1.0) == values.max()
        assert digest.count == 25_000

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileDigest(compression=4)
        with pytest.raises(ValueError):
            QuantileDigest().quantile(1.5)
        with pytest.raises(ValueError):
            QuantileDigest().quantile(-0.1)


class TestAccuracySynthetic:
    """Distribution-level bounds at compression 128. The diurnal-trace
    acceptance test below locks the tighter 1% production claim; these
    guard against regressions across distribution shapes (heavy tails
    get a looser bound — interpolation across convex tail gaps is the
    known t-digest error mode)."""

    @pytest.mark.parametrize("gen,bound", [
        (lambda r: r.uniform(0, 1, 40_000), 0.01),
        (lambda r: r.normal(5, 1, 40_000), 0.01),
        (lambda r: r.exponential(1.0, 40_000), 0.015),
        (lambda r: r.lognormal(0, 1.5, 40_000), 0.025),
    ])
    def test_report_percentiles(self, gen, bound):
        values = gen(np.random.default_rng(7))
        digest = fill(values)
        for q in REPORT_QS:
            assert rel_error(digest, values, q) <= bound, f"q={q}"

    def test_memory_bound_independent_of_stream_length(self):
        rng = np.random.default_rng(1)
        digest = QuantileDigest(compression=128)
        sizes = []
        for _ in range(10):
            for v in rng.lognormal(0, 1, 10_000):
                digest.add(v)
            digest.quantile(0.5)  # forces a compress
            sizes.append(digest.n_centroids())
        assert digest.count == 100_000
        assert max(sizes) <= 2 * 128
        # Memory plateaus: the last pass holds no more than the first + slack.
        assert sizes[-1] <= sizes[0] + 32


class TestDeterminismAndMerge:
    def test_deterministic(self):
        def build():
            return fill(float(v % 97) * 1.5 for v in range(5000)).to_dict()

        assert build() == build()

    def test_merge_matches_single_digest_accuracy(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(0, 1, 30_000)
        parts = np.array_split(values, 7)
        merged = fill(parts[0])
        for part in parts[1:]:
            merged.merge(fill(part))
        assert merged.count == 30_000
        assert merged.quantile(0.0) == values.min()
        assert merged.quantile(1.0) == values.max()
        for q in REPORT_QS:
            assert rel_error(merged, values, q) <= 0.02, f"q={q}"

    def test_merge_empty_is_noop(self):
        digest = fill([1.0, 2.0])
        state = digest.to_dict()
        digest.merge(QuantileDigest())
        assert digest.to_dict() == state

    def test_merge_leaves_other_valid(self):
        a, b = fill([1.0, 2.0]), fill([3.0, 4.0])
        a.merge(b)
        assert b.count == 2
        assert b.quantile(1.0) == 4.0
        assert a.count == 4


class TestSerialization:
    def test_round_trip_through_json(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(2.0, 8_000)
        digest = fill(values)
        state = json.loads(json.dumps(digest.to_dict()))
        clone = QuantileDigest.from_dict(state)
        assert clone.count == digest.count
        assert clone.mean == pytest.approx(digest.mean)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert clone.quantile(q) == digest.quantile(q)

    def test_empty_round_trip(self):
        clone = QuantileDigest.from_dict(QuantileDigest().to_dict())
        assert clone.count == 0
        assert np.isnan(clone.quantile(0.5))


@pytest.fixture(scope="module")
def diurnal_run():
    """Buffered Schemble policy on a >10k-served-query diurnal trace."""
    latencies = [0.010, 0.022, 0.045]
    trace = diurnal_trace(18.0, 140.0, seed=11)
    rng = np.random.default_rng(12)
    n_pool, n_subsets = 512, 1 << len(latencies)
    quality = rng.uniform(0.3, 1.0, size=(n_pool, n_subsets))
    quality[:, 0] = 0.0
    workload = ServingWorkload(
        arrivals=trace.arrivals,
        deadlines=np.full(len(trace), 0.08),
        sample_indices=rng.integers(n_pool, size=len(trace)),
        quality=quality,
    )
    utilities = np.ones((n_pool, n_subsets))
    utilities[:, 0] = 0.0
    policy = BufferedSchedulingPolicy(
        "schemble", DPScheduler(delta=0.05), utilities
    )
    return EnsembleServer(latencies, policy).run(workload)


class TestDiurnalAcceptance:
    """ISSUE 5 acceptance: <= 1% relative error at the report
    percentiles on a 10k-sample diurnal run, holding >= 100x fewer
    values than exact quantile computation retains."""

    @pytest.mark.parametrize("series", ["latency", "slack"])
    def test_within_one_percent_of_exact(self, diurnal_run, series):
        values = (
            diurnal_run.latencies() if series == "latency"
            else diurnal_run.deadline_slack()
        )
        assert values.shape[0] >= 10_000
        digest = fill(values)
        digest.quantile(0.5)  # compress before measuring memory
        assert digest.n_centroids() * 100 <= values.shape[0]
        for q in REPORT_QS:
            assert rel_error(digest, values, q) <= 0.01, f"q={q}"
