"""Tracer behaviour: null default, span capture, streaming metrics."""

import pytest

from repro.obs import spans as sp
from repro.obs.tracer import NULL_TRACER, NullTracer, RecordingTracer


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.metrics is None
        # No-ops, no state, no errors.
        NULL_TRACER.emit(sp.ARRIVAL, 0.0, 1, deadline=1.0)
        NULL_TRACER.finalize(10.0)

    def test_fresh_instance_equivalent(self):
        assert not NullTracer().enabled


class TestRecordingTracer:
    def _traced(self):
        tr = RecordingTracer()
        tr.emit(sp.ARRIVAL, 0.0, 0, deadline=1.0)
        tr.emit(sp.ENTER_BUFFER, 0.0, 0, depth=1)
        tr.emit(sp.SCHEDULE, 0.0, batch=1, depth=0, work_units=4,
                overhead_sim_s=0.001, wall_s=0.0005)
        tr.emit(sp.COMMIT, 0.001, decisions=1)
        tr.emit(sp.DISPATCH, 0.001, 0, model=1, worker=1,
                start=0.001, finish=0.101)
        tr.emit(sp.PLAN, 0.001, 0, size=1)
        tr.emit(sp.TASK_DONE, 0.101, 0, model=1)
        tr.emit(sp.COMPLETE, 0.101, 0, latency=0.101, slack=0.899)
        tr.finalize(0.101)
        return tr

    def test_span_stream_recorded(self):
        tr = self._traced()
        assert [s.kind for s in tr.spans] == [
            sp.ARRIVAL, sp.ENTER_BUFFER, sp.SCHEDULE, sp.COMMIT,
            sp.DISPATCH, sp.PLAN, sp.TASK_DONE, sp.COMPLETE,
        ]
        assert sp.span_sequence(tr.spans, 0) == [
            sp.ARRIVAL, sp.ENTER_BUFFER, sp.DISPATCH, sp.PLAN,
            sp.TASK_DONE, sp.COMPLETE,
        ]

    def test_metrics_streamed(self):
        m = self._traced().metrics
        assert m.counter("queries.arrived").value == 1
        assert m.counter("queries.completed").value == 1
        assert m.counter("scheduler.invocations").value == 1
        assert m.counter("tasks.dispatched").value == 1
        assert m.histogram("scheduler.wall_s").mean == pytest.approx(5e-4)
        assert m.histogram("deadline.slack_s").mean == pytest.approx(0.899)
        assert m.histogram("plan.size").mean == 1.0
        assert m.gauge("buffer.depth").last == 0.0

    def test_worker_accounting(self):
        tr = self._traced()
        assert tr.worker_busy == {1: pytest.approx(0.1)}
        assert tr.worker_model == {1: 1}
        util = tr.utilization(1.0)
        assert util[1] == pytest.approx(0.1)
        # Default horizon = trace end (0.101s).
        assert tr.utilization()[1] == pytest.approx(0.1 / 0.101)

    def test_keep_spans_false_keeps_metrics_only(self):
        tr = RecordingTracer(keep_spans=False)
        tr.emit(sp.ARRIVAL, 0.0, 0)
        assert tr.spans == []
        assert tr.metrics.counter("queries.arrived").value == 1

    def test_reject_counts(self):
        tr = RecordingTracer()
        tr.emit(sp.REJECT, 1.0, 3, reason="unserved")
        assert tr.metrics.counter("queries.rejected").value == 1
        assert tr.spans[0].attrs["reason"] == "unserved"

    def test_finalize_keeps_latest_end(self):
        tr = RecordingTracer()
        tr.emit(sp.ARRIVAL, 5.0, 0)
        tr.finalize(2.0)  # earlier than last span: ignored
        assert tr.end_time == 5.0
